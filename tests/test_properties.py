"""Cross-cutting property-based tests (hypothesis).

These check invariants that span modules: the completion/metrics
contract, mask algebra, aggregation conservation, and eigenflow
decomposition identities — on randomized inputs rather than fixtures.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import HistoricalMean, LinearInterpolation, NaiveKNN
from repro.core.completion import CompressiveSensingCompleter
from repro.core.eigenflows import analyze_eigenflows
from repro.core.tcm import TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae, rmse
from tests.conftest import make_low_rank

slow_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

speed_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 12), st.integers(3, 10)),
    elements=st.floats(1.0, 100.0, allow_nan=False),
)


class TestMaskAlgebra:
    @slow_settings
    @given(speed_matrices, st.floats(0.1, 0.9), st.integers(0, 100))
    def test_with_mask_integrity_matches(self, values, integrity, seed):
        tcm = TrafficConditionMatrix(values)
        mask = random_integrity_mask(tcm.shape, integrity, seed=seed)
        masked = tcm.with_mask(mask)
        assert masked.integrity == pytest.approx(mask.mean())

    @slow_settings
    @given(speed_matrices, st.floats(0.2, 0.8), st.integers(0, 100))
    def test_observed_cells_survive_masking(self, values, integrity, seed):
        tcm = TrafficConditionMatrix(values)
        mask = random_integrity_mask(tcm.shape, integrity, seed=seed)
        masked = tcm.with_mask(mask)
        assert np.allclose(masked.values[mask], values[mask])
        assert np.all(masked.values[~mask] == 0.0)

    @slow_settings
    @given(speed_matrices, st.floats(0.2, 0.8), st.integers(0, 100))
    def test_road_slot_integrity_consistent(self, values, integrity, seed):
        tcm = TrafficConditionMatrix(values)
        masked = tcm.with_mask(random_integrity_mask(tcm.shape, integrity, seed=seed))
        # Means of the per-axis integrities both equal overall integrity.
        assert masked.road_integrity().mean() == pytest.approx(masked.integrity)
        assert masked.slot_integrity().mean() == pytest.approx(masked.integrity)


class TestBaselineContracts:
    """All completion algorithms share the same I/O contract."""

    ALGOS = [NaiveKNN(k=3), HistoricalMean(), LinearInterpolation()]

    @slow_settings
    @given(speed_matrices, st.floats(0.3, 0.9), st.integers(0, 50))
    def test_observed_passthrough_and_total_fill(self, values, integrity, seed):
        mask = random_integrity_mask(values.shape, integrity, seed=seed)
        if not mask.any():
            return
        measured = np.where(mask, values, 0.0)
        for algo in self.ALGOS:
            out = algo.complete(measured, mask)
            assert out.shape == values.shape
            assert np.all(np.isfinite(out))
            assert np.allclose(out[mask], measured[mask])

    @slow_settings
    @given(speed_matrices, st.floats(0.3, 0.9), st.integers(0, 50))
    def test_estimates_bounded_by_observations(self, values, integrity, seed):
        """Averaging baselines never extrapolate beyond observed range."""
        mask = random_integrity_mask(values.shape, integrity, seed=seed)
        if not mask.any():
            return
        measured = np.where(mask, values, 0.0)
        lo, hi = measured[mask].min(), measured[mask].max()
        for algo in (NaiveKNN(k=3), HistoricalMean(), LinearInterpolation()):
            out = algo.complete(measured, mask)
            assert out.min() >= lo - 1e-9
            assert out.max() <= hi + 1e-9


class TestCompletionMetricsContract:
    @slow_settings
    @given(st.integers(1, 3), st.integers(0, 50))
    def test_recovery_error_scales_with_rank_match(self, true_rank, seed):
        """Completion at the true rank recovers identifiable matrices."""
        x = make_low_rank(20, 15, true_rank, seed=seed)
        mask = random_integrity_mask(x.shape, 0.6, seed=seed + 1)
        # Identifiability margin: every row and column needs comfortably
        # more observations than the rank, otherwise its factor is
        # near-underdetermined and ALS recovery is not guaranteed.  At
        # exactly 2r observations ALS can still land in a bad local
        # minimum (all solvers agree on the wrong completion), so the
        # margin is strict.
        if (
            mask.sum(axis=1).min() <= 2 * true_rank
            or mask.sum(axis=0).min() <= 2 * true_rank
        ):
            return
        measured = np.where(mask, x, 0.0)
        # Multi-restart guards against ALS local minima on these tiny
        # randomized instances.
        good = CompressiveSensingCompleter(
            rank=true_rank, lam=1e-4, iterations=120, restarts=5, seed=0
        ).complete(measured, mask)
        assert nmae(x, good.estimate, ~mask) < 0.05

    @slow_settings
    @given(st.integers(0, 50))
    def test_nmae_zero_iff_exact_on_mask(self, seed):
        x = make_low_rank(10, 8, 2, seed=seed)
        mask = random_integrity_mask(x.shape, 0.5, seed=seed)
        if not mask.any() or mask.all():
            return
        assert nmae(x, x, mask) == 0.0
        perturbed = x.copy()
        cell = tuple(np.argwhere(mask)[0])
        perturbed[cell] += 1.0
        assert nmae(x, perturbed, mask) > 0.0

    @slow_settings
    @given(speed_matrices)
    def test_rmse_dominates_scaled_nmae(self, x):
        """RMSE >= mean absolute error = NMAE * mean|x|."""
        noisy = x * 1.07
        mae = nmae(x, noisy) * np.abs(x).mean()
        assert rmse(x, noisy) >= mae - 1e-9


class TestEigenflowIdentities:
    @slow_settings
    @given(speed_matrices)
    def test_full_reconstruction_identity(self, x):
        analysis = analyze_eigenflows(x)
        recon = analysis.reconstruct(range(analysis.num_flows))
        assert np.allclose(recon, x, atol=1e-6)

    @slow_settings
    @given(speed_matrices)
    def test_energy_matches_frobenius(self, x):
        analysis = analyze_eigenflows(x)
        assert np.sum(analysis.singular_values**2) == pytest.approx(
            np.sum(x**2), rel=1e-9
        )

    @slow_settings
    @given(speed_matrices, st.integers(1, 4))
    def test_partial_reconstruction_never_increases_error(self, x, k):
        """Adding components (in SVD order) never worsens the fit."""
        analysis = analyze_eigenflows(x)
        k = min(k, analysis.num_flows - 1)
        if k < 1:
            return
        smaller = analysis.reconstruct(range(k))
        larger = analysis.reconstruct(range(k + 1))
        assert np.linalg.norm(x - larger) <= np.linalg.norm(x - smaller) + 1e-9


class TestAggregationConservation:
    @slow_settings
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 899.0),   # time within slot 0
                st.integers(0, 2),        # segment
                st.floats(5.0, 80.0),     # speed
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_cell_average_is_report_mean(self, raw):
        from repro.core.tcm import TimeGrid
        from repro.probes.aggregation import aggregate_reports
        from repro.probes.report import ProbeReport, ReportBatch

        reports = [
            ProbeReport(i, t, 0.0, 0.0, speed, seg)
            for i, (t, seg, speed) in enumerate(raw)
        ]
        grid = TimeGrid(0.0, 900.0, 1)
        tcm = aggregate_reports(ReportBatch(reports), grid, [0, 1, 2])
        for seg in (0, 1, 2):
            speeds = [s for (t, sg, s) in raw if sg == seg]
            if speeds:
                assert tcm.values[0, seg] == pytest.approx(np.mean(speeds))
                assert tcm.mask[0, seg]
            else:
                assert not tcm.mask[0, seg]
