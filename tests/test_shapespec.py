"""Tests for the shared ``@shapes`` spec grammar (``repro.utils.shapespec``).

The grammar is owned by one parser used by both the runtime checker
(:mod:`repro.utils.contracts`) and the static verifier
(:mod:`repro.analysis.shapecheck`); these tests pin the round-trip
property that keeps the two in agreement.
"""

import numpy as np
import pytest

from repro.utils import contracts
from repro.utils.shapespec import DTYPE_FAMILIES, ShapeSpec, parse_shape_spec


class TestParse:
    def test_symbolic_dims(self):
        spec = parse_shape_spec("m n")
        assert spec.dims == ("m", "n")
        assert spec.rank == 2
        assert spec.family == ""
        assert spec.kinds == ""

    def test_exact_ints_and_wildcard(self):
        spec = parse_shape_spec("3 * k")
        assert spec.dims == (3, "*", "k")
        assert spec.rank == 3

    def test_zero_is_a_valid_exact_size(self):
        assert parse_shape_spec("0").dims == (0,)

    def test_family_suffixes(self):
        for family, kinds in DTYPE_FAMILIES.items():
            spec = parse_shape_spec(f"m n:{family}")
            assert spec.family == family
            assert spec.kinds == kinds

    def test_family_whitespace_tolerated(self):
        assert parse_shape_spec("m n: bool").family == "bool"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown dtype family"):
            parse_shape_spec("m n:complex")

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError, match="negative dim"):
            parse_shape_spec("m -3")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty shape spec"):
            parse_shape_spec(":float")

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError, match="bad dim token"):
            parse_shape_spec("m n?")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "raw",
        ["m", "m n", "m n:bool", "3 *", "* * k:float", "0 1 2:int", "batch seq d"],
    )
    def test_render_parses_back_identically(self, raw):
        spec = parse_shape_spec(raw)
        assert parse_shape_spec(spec.render()) == spec

    def test_canonical_form_is_stable(self):
        assert ShapeSpec(dims=("m", 3, "*"), family="float").render() == "m 3 *:float"


class TestRuntimeCheckerUsesSharedGrammar:
    """``contracts._ArraySpec`` must delegate to the shared parser."""

    def test_array_spec_carries_parsed_spec(self):
        spec = contracts._ArraySpec("m 3 *:float")
        assert spec.spec == parse_shape_spec("m 3 *:float")
        assert spec.dims == ["m", 3, "*"]
        assert spec.kinds == DTYPE_FAMILIES["float"]

    def test_runtime_check_still_enforces_the_grammar(self):
        @contracts.shapes("m n", "n:bool")
        def masked_rows(values, keep):
            return values[:, keep]

        contracts.set_enabled(True)
        try:
            values = np.zeros((2, 3))
            masked_rows(values, np.array([True, False, True]))
            with pytest.raises(contracts.ContractError):
                masked_rows(values, np.array([True, False]))  # n mismatch
            with pytest.raises(contracts.ContractError):
                masked_rows(values, np.array([0.5, 0.5, 0.5]))  # float mask
        finally:
            contracts.set_enabled(None)

    def test_bad_grammar_rejected_at_decoration_time(self):
        with pytest.raises(ValueError):
            contracts.shapes("m n:complex")(lambda values: values)
