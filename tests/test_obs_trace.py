"""Tests for repro.obs.trace: spans, nesting, and pool re-parenting."""

import threading

import pytest

from repro.obs import trace
from repro.utils.parallel import parallel_map


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


def _square(x):
    """Module-level so the process backend can pickle it."""
    with trace.span("work.body", x=x):
        return x * x


class TestSwitch:
    def test_disabled_by_default(self):
        assert not trace.enabled()

    def test_enable_disable_roundtrip(self):
        trace.enable()
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()

    def test_disabled_span_is_shared_noop(self):
        a = trace.span("anything")
        b = trace.span("else")
        assert a is b  # the no-op singleton: no allocation per call
        with a as s:
            assert s.set(k=1) is s
        assert len(trace.collector()) == 0

    def test_disabled_records_nothing(self):
        with trace.span("invisible"):
            pass
        assert trace.collector().snapshot() == []


class TestSpans:
    def test_records_name_timing_and_attrs(self):
        trace.enable()
        with trace.span("phase.alpha", size=7) as s:
            s.set(extra="yes")
        (recorded,) = trace.collector().snapshot()
        assert recorded.name == "phase.alpha"
        assert recorded.attrs == {"size": 7, "extra": "yes"}
        assert recorded.end_s >= recorded.start_s
        assert recorded.duration_s == recorded.end_s - recorded.start_s
        assert recorded.parent_id is None

    def test_nesting_sets_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        by_name = {s.name: s for s in trace.collector().snapshot()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_siblings_share_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        by_name = {s.name: s for s in trace.collector().snapshot()}
        assert by_name["first"].parent_id == by_name["outer"].span_id
        assert by_name["second"].parent_id == by_name["outer"].span_id

    def test_exception_marks_error_and_still_records(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        (recorded,) = trace.collector().snapshot()
        assert recorded.attrs["error"] == "RuntimeError"
        assert trace.current_span_id() is None  # stack unwound

    def test_threads_nest_independently(self):
        trace.enable()
        seen = {}

        def body():
            with trace.span("thread.root"):
                seen["inner_parent"] = trace.current_span_id()

        with trace.span("driver"):
            t = threading.Thread(target=body)
            t.start()
            t.join()
        by_name = {s.name: s for s in trace.collector().snapshot()}
        # A plain thread (no pool_task) has its own empty stack: root span.
        assert by_name["thread.root"].parent_id is None

    def test_payload_roundtrip(self):
        trace.enable()
        with trace.span("rt", k="v"):
            pass
        (s,) = trace.collector().snapshot()
        assert trace.Span.from_payload(s.to_payload()) == s


class TestTracedDecorator:
    def test_records_span_per_call(self):
        trace.enable()

        @trace.traced("deco.name")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f(2) == 3
        names = [s.name for s in trace.collector().snapshot()]
        assert names == ["deco.name", "deco.name"]

    def test_defaults_to_qualname_and_preserves_metadata(self):
        @trace.traced()
        def documented(x):
            """Docstring survives wrapping."""
            return x

        assert documented.__doc__ == "Docstring survives wrapping."
        trace.enable()
        documented(0)
        (s,) = trace.collector().snapshot()
        assert "documented" in s.name

    def test_disabled_fast_path_forwards(self):
        @trace.traced("never")
        def f(x):
            return x

        assert f(5) == 5
        assert len(trace.collector()) == 0


class TestPoolComposition:
    def test_serial_backend_records_job_spans(self):
        trace.enable()
        with trace.span("driver") as d:
            out = parallel_map(_square, [1, 2, 3], backend="serial",
                               span_name="job.sq")
        assert out == [1, 4, 9]
        spans = trace.collector().snapshot()
        jobs = [s for s in spans if s.name == "job.sq"]
        assert len(jobs) == 3
        assert all(j.parent_id == d.span_id for j in jobs)

    def test_thread_backend_reparents_under_dispatch_span(self):
        trace.enable()
        with trace.span("driver") as d:
            out = parallel_map(_square, list(range(4)), max_workers=2,
                               backend="thread", span_name="job.sq")
        assert out == [0, 1, 4, 9]
        spans = trace.collector().snapshot()
        jobs = [s for s in spans if s.name == "job.sq"]
        bodies = [s for s in spans if s.name == "work.body"]
        assert len(jobs) == len(bodies) == 4
        assert all(j.parent_id == d.span_id for j in jobs)
        job_ids = {j.span_id for j in jobs}
        assert all(b.parent_id in job_ids for b in bodies)

    def test_process_backend_ships_spans_home(self):
        import os

        trace.enable()
        with trace.span("driver") as d:
            out = parallel_map(_square, list(range(4)), max_workers=2,
                               backend="process", span_name="job.sq")
        assert out == [0, 1, 4, 9]
        spans = trace.collector().snapshot()
        jobs = [s for s in spans if s.name == "job.sq"]
        bodies = [s for s in spans if s.name == "work.body"]
        assert len(jobs) == len(bodies) == 4
        assert all(j.parent_id == d.span_id for j in jobs)
        # The job bodies really ran elsewhere yet landed in our trace.
        assert any(s.pid != os.getpid() for s in jobs)

    def test_disabled_pool_records_nothing(self):
        out = parallel_map(_square, [1, 2], max_workers=2, backend="thread")
        assert out == [1, 4]
        # _square's span call hit the no-op path inside the workers too.
        assert len(trace.collector()) == 0

    def test_span_attrs_do_not_change_results(self):
        baseline = parallel_map(_square, list(range(6)), max_workers=2)
        trace.enable()
        traced_run = parallel_map(_square, list(range(6)), max_workers=2)
        assert traced_run == baseline


class TestSpanTree:
    def test_roots_and_children(self):
        trace.enable()
        with trace.span("root"):
            with trace.span("child"):
                with trace.span("grandchild"):
                    pass
        roots, children = trace.span_tree(trace.collector().snapshot())
        assert [r.name for r in roots] == ["root"]
        (child,) = children[roots[0].span_id]
        assert child.name == "child"
        (grand,) = children[child.span_id]
        assert grand.name == "grandchild"

    def test_orphan_becomes_root(self):
        trace.enable()
        with trace.span("kept"):
            pass
        (s,) = trace.collector().snapshot()
        orphan = trace.Span(
            name="orphan", span_id=s.span_id + 1000, parent_id=999_999,
            start_s=0.0, end_s=1.0, thread="t", pid=0,
        )
        roots, _ = trace.span_tree([s, orphan])
        assert {r.name for r in roots} == {"kept", "orphan"}
