"""The persistent content-addressed artifact store.

Holds the incremental-fabric guarantees: keys are stable across
processes and sensitive to config and inputs, damaged entries rebuild
transparently, concurrent builders deduplicate, gc evicts by size, and
a warm ``run_all`` is bit-identical to a cold one with every step
served from disk.
"""

import subprocess
import sys
import threading

import pytest

from repro.experiments.runner import (
    CACHED_TIMING_MARKER,
    BatteryJob,
    _run_store_job,
    run_all,
)
from repro.experiments.scenario_cache import (
    GLOBAL_SCENARIO_CACHE,
    ScenarioCache,
    scenario_key,
)
from repro.experiments.store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    format_size,
    render_entries,
)
from repro.obs.manifest import jobs_from_spans
from repro.obs.trace import Span


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "store")


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
def test_step_key_stable_across_processes(store):
    config = {"name": "sweep", "days": 3.0, "seed": 0}
    local = store.step_key("job", config, inputs=("abc123",))
    script = (
        "from repro.experiments.store import ArtifactStore;"
        "print(ArtifactStore().step_key('job',"
        " {'name': 'sweep', 'days': 3.0, 'seed': 0}, inputs=('abc123',)))"
    )
    remote = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    assert remote == local


def test_step_key_changes_with_config_and_inputs(store):
    base = store.step_key("job", {"seed": 0})
    assert store.step_key("job", {"seed": 1}) != base
    assert store.step_key("other", {"seed": 0}) != base
    assert store.step_key("job", {"seed": 0}, inputs=("k",)) != base
    # The DAG property: a changed upstream key changes the downstream key.
    up_a = store.step_key("scenario", {"city": "shanghai"})
    up_b = store.step_key("scenario", {"city": "shenzhen"})
    assert store.step_key("job", {"seed": 0}, inputs=(up_a,)) != store.step_key(
        "job", {"seed": 0}, inputs=(up_b,)
    )


def test_step_key_rejects_empty_step(store):
    with pytest.raises(ValueError, match="non-empty"):
        store.step_key("", {})


# ----------------------------------------------------------------------
# Round trips and durability
# ----------------------------------------------------------------------
def test_put_get_round_trip(store):
    key = store.step_key("job", {"seed": 0})
    value = {"fig11": "rendered text", "n": 3}
    store.put(key, value, step="job.sweep")
    hit, loaded = store.get(key)
    assert hit and loaded == value
    stats = store.stats
    assert stats["hits"] == 1 and stats["misses"] == 0
    assert stats["bytes_written"] > 0 and stats["bytes_read"] > 0


def test_missing_key_is_a_plain_miss(store):
    hit, value = store.get(store.step_key("job", {"seed": 99}))
    assert not hit and value is None
    assert store.stats["misses"] == 1 and store.stats["corrupt"] == 0


def test_corrupted_payload_evicts_and_misses(store):
    key = store.step_key("job", {"seed": 0})
    path = store.put(key, {"a": 1}, step="job.x")
    raw = bytearray(path.read_bytes())
    raw[0] ^= 0xFF
    path.write_bytes(bytes(raw))
    hit, value = store.get(key)
    assert not hit and value is None
    assert store.stats["corrupt"] == 1
    assert not path.exists()
    assert not path.with_suffix(".json").exists()
    # The next build-through rewrites the entry cleanly.
    result = store.get_or_build("job", {"seed": 0}, lambda: {"a": 1})
    assert not result.hit and result.value == {"a": 1}
    assert store.get(key) == (True, {"a": 1})


def test_torn_write_payload_without_sidecar_evicts(store):
    key = store.step_key("job", {"seed": 0})
    path = store.put(key, {"a": 1})
    path.with_suffix(".json").unlink()
    hit, _ = store.get(key)
    assert not hit
    assert store.stats["corrupt"] == 1
    assert not path.exists()


def test_get_or_build_builds_exactly_once_under_threads(store):
    calls = []

    def builder():
        calls.append(1)
        return {"built": True}

    results = []

    def worker():
        results.append(store.get_or_build("job", {"seed": 0}, builder))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1
    assert sum(1 for r in results if not r.hit) == 1
    assert all(r.value == {"built": True} for r in results)


def test_racing_writers_from_separate_stores_agree(store, tmp_path):
    # Two store instances on the same root (two processes, in effect):
    # both write the same deterministic bytes; the entry stays intact.
    other = ArtifactStore(root=store.root)
    key = store.step_key("job", {"seed": 0})
    store.put(key, {"a": 1})
    other.put(key, {"a": 1})
    assert store.get(key) == (True, {"a": 1})
    assert other.get(key) == (True, {"a": 1})


# ----------------------------------------------------------------------
# Inventory, gc, clear
# ----------------------------------------------------------------------
def test_entries_and_render(store):
    store.put(store.step_key("a", {"i": 1}), list(range(100)), step="a")
    store.put(store.step_key("b", {"i": 2}), list(range(200)), step="b")
    entries = store.entries()
    assert len(entries) == 2
    assert {e.step for e in entries} == {"a", "b"}
    assert store.total_bytes() == sum(e.size_bytes for e in entries)
    text = render_entries(entries)
    assert "total: 2 entries" in text


def test_gc_evicts_oldest_first_until_under_cap(store):
    import os
    import time

    keys = [store.step_key("a", {"i": i}) for i in range(3)]
    paths = [store.put(key, b"x" * 1000, step=f"a{i}") for i, key in enumerate(keys)]
    # Pin distinct mtimes so LRU order is deterministic.
    now = time.time()
    for i, path in enumerate(paths):
        os.utime(path, (now + i, now + i))
    total = store.total_bytes()
    per_entry = total // 3
    evicted = store.gc(max_bytes=total - per_entry)
    assert [e.key for e in evicted] == [keys[0]]
    assert not paths[0].exists() and paths[1].exists() and paths[2].exists()
    assert store.gc(max_bytes=0) and store.total_bytes() == 0
    with pytest.raises(ValueError, match="max_bytes"):
        store.gc(max_bytes=-1)


def test_clear_removes_only_current_schema(store):
    store.put(store.step_key("a", {"i": 1}), 1)
    foreign = store.root / "README"
    foreign.write_text("not an entry")
    old = store.root / f"v{STORE_SCHEMA_VERSION - 1}" / "aa"
    old.mkdir(parents=True)
    (old / "old.pkl").write_bytes(b"stale")
    assert store.clear() == 2  # payload + sidecar
    assert foreign.exists() and (old / "old.pkl").exists()
    assert not store.version_dir.exists()


def test_format_size():
    assert format_size(512) == "512 B"
    assert format_size(2048) == "2.0 KB"
    assert format_size(3 * 1024 * 1024) == "3.0 MB"


# ----------------------------------------------------------------------
# Scenario-cache persistence
# ----------------------------------------------------------------------
def test_scenario_cache_persists_through_store(store):
    cache = ScenarioCache()
    cache.set_persistent_store(store)
    fields = {"kind": "demo", "seed": 0}
    builds = []

    def builder():
        builds.append(1)
        return {"world": 42}

    assert cache.get_or_build(fields, builder) == {"world": 42}
    assert len(builds) == 1
    # A fresh cache (fresh process, in effect) hits the store, not the builder.
    cold = ScenarioCache()
    cold.set_persistent_store(store)
    assert cold.get_or_build(fields, builder) == {"world": 42}
    assert len(builds) == 1
    assert cold.stats == (0, 0)  # store hit is neither a memory hit nor a build


# ----------------------------------------------------------------------
# Store-backed battery jobs
# ----------------------------------------------------------------------
def test_run_store_job_rejects_undeclared_scenario_reads(store):
    cache = ScenarioCache()
    fields = {"kind": "city_truth", "city": "atlantis", "days": 1.0, "seed": 0}

    def sneaky():
        cache.get_or_build(fields, lambda: "world")
        return {"fig": "text"}

    job = BatteryJob(name="sneaky", config={"seed": 0}, run=sneaky)
    with pytest.raises(RuntimeError, match="does not declare"):
        _run_store_job("sneaky", job, store)
    # Declaring the input makes the same job legal.
    declared = BatteryJob(
        name="sneaky", config={"seed": 0}, run=sneaky, scenarios=(fields,)
    )
    assert _run_store_job("sneaky", declared, store) == {"fig": "text"}


def test_battery_job_scenario_keys():
    fields = {"kind": "city_truth", "city": "shanghai", "days": 0.5, "seed": 0}
    job = BatteryJob(
        name="j", config={"seed": 0}, run=lambda: {}, scenarios=(fields,)
    )
    assert job.scenario_keys() == (scenario_key(fields),)
    assert job() == {}


def test_wall_clock_job_hit_is_annotated_as_cached(store):
    job = BatteryJob(
        name="runtimes",
        config={"seed": 0},
        run=lambda: {"table2": "algo a: 1.23s"},
        wall_clock=True,
    )
    cold = _run_store_job("runtimes", job, store)
    assert cold == {"table2": "algo a: 1.23s"}  # fresh measurement, bare
    warm = _run_store_job("runtimes", job, store)
    note, _, rest = warm["table2"].partition("\n")
    assert note.startswith(CACHED_TIMING_MARKER)
    assert "recorded" in note and "--no-store" in note
    assert rest == "algo a: 1.23s"  # the cached block itself, intact
    # Deterministic cells are served bare — no annotation.
    det = BatteryJob(name="det", config={"seed": 0}, run=lambda: {"fig": "x"})
    _run_store_job("det", det, store)
    assert _run_store_job("det", det, store) == {"fig": "x"}


def test_meta_returns_sidecar_and_none_when_absent(store):
    key = store.step_key("job", {"seed": 0})
    assert store.meta(key) is None
    store.put(key, {"a": 1}, step="job.x")
    meta = store.meta(key)
    assert meta["step"] == "job.x" and meta["created_utc"]


def test_entries_skips_entry_whose_payload_vanished(store):
    keep = store.step_key("a", {"i": 1})
    store.put(keep, 1, step="a")
    gone = store.step_key("b", {"i": 2})
    store.put(gone, 2, step="b")
    # A concurrent gc/clear deleting the payload mid-listing, in effect.
    store._payload_path(gone).unlink()
    assert [e.key for e in store.entries()] == [keep]


def test_warm_run_all_is_bit_identical_and_all_hits(tmp_path):
    only = ("sweep_shanghai", "cdf_shanghai")
    GLOBAL_SCENARIO_CACHE.clear()
    cold_store = ArtifactStore(root=tmp_path / "store")
    cold = run_all(profile="smoke", seed=0, only=only, store=cold_store)
    assert cold_store.stats["misses"] > 0  # everything was built
    # Fresh process, in effect: empty memory cache, fresh store handle.
    GLOBAL_SCENARIO_CACHE.clear()
    warm_store = ArtifactStore(root=tmp_path / "store")
    warm = run_all(profile="smoke", seed=0, only=only, store=warm_store)
    stats = warm_store.stats
    assert stats["misses"] == 0, "warm run rebuilt steps it should have loaded"
    assert stats["hits"] == len(only)
    assert warm == cold  # bit-identical rendered blocks
    # The store must detach from the scenario cache after the run.
    assert GLOBAL_SCENARIO_CACHE.persistent_store is None


def test_config_change_invalidates_only_affected_jobs(tmp_path):
    only = ("sweep_shanghai",)
    GLOBAL_SCENARIO_CACHE.clear()
    store = ArtifactStore(root=tmp_path / "store")
    run_all(profile="smoke", seed=0, only=only, store=store)
    GLOBAL_SCENARIO_CACHE.clear()
    reseeded = ArtifactStore(root=tmp_path / "store")
    run_all(profile="smoke", seed=1, only=only, store=reseeded)
    assert reseeded.stats["misses"] > 0  # new seed, new keys, fresh builds


def test_manifest_jobs_carry_store_detail():
    def span(name, attrs):
        return Span(
            name=name,
            span_id=1,
            parent_id=None,
            start_s=0.0,
            end_s=1.0,
            thread="t",
            pid=1,
            attrs=attrs,
        )

    jobs = jobs_from_spans(
        [
            span("job.sweep", {"store": "hit"}),
            span("job.cdf", {"store": "miss"}),
            span("job.plain", {}),
        ]
    )
    details = {j["name"]: j.get("detail") for j in jobs}
    assert details == {
        "sweep": "store=hit",
        "cdf": "store=miss",
        "plain": None,
    }
