"""Tests for the solver-backend registry (repro.core.backends).

Three layers:

* registry units — names, lookup errors, availability hints, dtype
  resolution;
* numerical equivalence — every backend must reproduce the default
  numpy estimate (float64 within the bench tolerance, float32 within
  ``FLOAT32_RTOL`` relative to the reference's magnitude);
* integration — completer/streaming dtype plumbing, the map-matching
  jit method, and the ``repro backends`` CLI verb.

The numba and CuPy tests are guarded with ``pytest.importorskip`` so
the default tier-1 run stays green without the optional extras; CI's
jit-extra leg installs numba and runs them for real.
"""

import importlib.util

import numpy as np
import pytest

from repro.cli import main
from repro.core.backends import (
    FLOAT32_RTOL,
    BackendUnavailable,
    SolverBackend,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.completion import CompressiveSensingCompleter
from repro.core.streaming import StreamingEstimator
from repro.probes.mapmatch import MapMatcher, jit_match_available
from repro.probes.report import ProbeReport, ReportBatch

HAVE_NUMBA = importlib.util.find_spec("numba") is not None
HAVE_CUPY = importlib.util.find_spec("cupy") is not None


def toy_problem(seed=0, shape=(40, 24), density=0.45):
    rng = np.random.default_rng(seed)
    m, n = shape
    left = rng.uniform(0.5, 1.5, size=(m, 2))
    right = rng.uniform(0.5, 1.5, size=(n, 2))
    values = left @ right.T * 25.0 + rng.normal(0.0, 0.4, size=(m, n))
    mask = rng.random((m, n)) < density
    mask[0, :] = True
    mask[:, 0] = True
    return values, mask


def complete_with(backend, dtype=None, lam=10.0, rank=2, **overrides):
    values, mask = toy_problem()
    params = dict(
        rank=rank,
        lam=lam,
        iterations=30,
        restarts=2,
        seed=7,
        backend=backend,
        dtype=dtype,
    )
    params.update(overrides)
    completer = CompressiveSensingCompleter(**params)
    return completer.complete(values, mask)


@pytest.fixture(scope="module")
def reference_estimate():
    """The default numpy/float64 estimate all backends must reproduce."""
    return complete_with("numpy").estimate


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registration_order_and_names(self):
        assert backend_names() == ("numpy", "numpy-ws", "numba", "cupy")

    def test_builtin_backends_always_available(self):
        names = available_backend_names()
        assert "numpy" in names and "numpy-ws" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            get_backend("fortran")

    def test_register_requires_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(SolverBackend())

    def test_availability_matches_find_spec(self):
        assert get_backend("numba").is_available() == HAVE_NUMBA
        assert get_backend("cupy").is_available() == HAVE_CUPY

    def test_availability_hint_names_extra(self):
        assert get_backend("numpy").availability_hint() == "built in"
        hint = get_backend("numba").availability_hint()
        assert "numba" in hint and "repro[jit]" in hint
        hint = get_backend("cupy").availability_hint()
        assert "cupy" in hint and "repro[gpu]" in hint

    def test_resolve_dtype_explicit_wins(self):
        backend = get_backend("numpy-ws")
        resolved = backend.resolve_dtype(np.dtype(np.float32), np.dtype(np.float64))
        assert resolved == np.dtype(np.float32)

    def test_resolve_dtype_honors_float32_input(self):
        backend = get_backend("numpy-ws")
        assert backend.resolve_dtype(None, np.dtype(np.float32)) == np.dtype(
            np.float32
        )

    def test_resolve_dtype_defaults_to_float64(self):
        backend = get_backend("numpy-ws")
        for input_dtype in (np.float64, np.int64, np.float16):
            assert backend.resolve_dtype(None, np.dtype(input_dtype)) == np.dtype(
                np.float64
            )

    def test_resolve_dtype_rejects_unsupported(self):
        backend = get_backend("numpy-ws")
        with pytest.raises(ValueError, match="does not support dtype"):
            backend.resolve_dtype(np.dtype(np.float16), np.dtype(np.float64))


# ----------------------------------------------------------------------
# Completer validation
# ----------------------------------------------------------------------
class TestCompleterValidation:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            CompressiveSensingCompleter(rank=2, lam=1.0, backend="fortran")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed; cannot test gating")
    def test_missing_numba_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailable, match="repro\\[jit\\]"):
            CompressiveSensingCompleter(rank=2, lam=1.0, backend="numba")

    @pytest.mark.skipif(HAVE_CUPY, reason="cupy installed; cannot test gating")
    def test_missing_cupy_raises_backend_unavailable(self):
        with pytest.raises(BackendUnavailable, match="repro\\[gpu\\]"):
            CompressiveSensingCompleter(rank=2, lam=1.0, backend="cupy")

    def test_mask_unaware_requires_numpy_backend(self):
        with pytest.raises(ValueError, match="mask_aware"):
            CompressiveSensingCompleter(
                rank=2, lam=1.0, backend="numpy-ws", mask_aware=False
            )

    def test_solver_choice_requires_numpy_backend(self):
        with pytest.raises(ValueError, match="inner solver"):
            CompressiveSensingCompleter(
                rank=2, lam=1.0, backend="numpy-ws", solver="grouped"
            )

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="does not support dtype"):
            CompressiveSensingCompleter(
                rank=2, lam=1.0, backend="numpy-ws", dtype="float16"
            )


# ----------------------------------------------------------------------
# Numerical equivalence
# ----------------------------------------------------------------------
def assert_float32_close(estimate, reference):
    scale = max(1.0, float(np.abs(reference).max()))
    diff = float(np.abs(estimate.astype(np.float64) - reference).max())
    assert diff <= FLOAT32_RTOL * scale


class TestWorkspaceEquivalence:
    def test_float64_matches_numpy(self, reference_estimate):
        estimate = complete_with("numpy-ws").estimate
        assert estimate.dtype == np.float64
        assert float(np.abs(estimate - reference_estimate).max()) <= 1e-8

    def test_float32_within_documented_tolerance(self, reference_estimate):
        estimate = complete_with("numpy-ws", dtype="float32").estimate
        assert estimate.dtype == np.float32
        assert_float32_close(estimate, reference_estimate)

    def test_float32_input_honored_without_explicit_dtype(self):
        values, mask = toy_problem()
        completer = CompressiveSensingCompleter(
            rank=2, lam=10.0, iterations=20, seed=7, backend="numpy-ws"
        )
        result = completer.complete(values.astype(np.float32), mask)
        assert result.estimate.dtype == np.float32

    def test_rank_one_closed_form(self, reference_estimate):
        a = complete_with("numpy", rank=1).estimate
        b = complete_with("numpy-ws", rank=1).estimate
        assert float(np.abs(a - b).max()) <= 1e-8

    def test_rank_above_two_gesv_fallback(self):
        a = complete_with("numpy", rank=3).estimate
        b = complete_with("numpy-ws", rank=3).estimate
        assert float(np.abs(a - b).max()) <= 1e-8

    def test_lam_zero_all_unobserved_column(self):
        values, mask = toy_problem()
        mask[:, 5] = False  # singular column when lam == 0
        for backend in ("numpy", "numpy-ws"):
            completer = CompressiveSensingCompleter(
                rank=2, lam=0.0, iterations=10, seed=3, backend=backend
            )
            result = completer.complete(values, mask)
            assert np.isfinite(result.estimate).all()
        # Both kernels zero the excluded column's factor rows.
        a = CompressiveSensingCompleter(
            rank=2, lam=0.0, iterations=10, seed=3, backend="numpy"
        ).complete(values, mask)
        b = CompressiveSensingCompleter(
            rank=2, lam=0.0, iterations=10, seed=3, backend="numpy-ws"
        ).complete(values, mask)
        assert float(np.abs(a.estimate - b.estimate).max()) <= 1e-8

    def test_repeat_runs_bit_identical(self):
        # Workspace buffers are reused across sweeps; two fresh runs
        # must still agree to the last bit.
        a = complete_with("numpy-ws").estimate
        b = complete_with("numpy-ws").estimate
        assert a.tobytes() == b.tobytes()

    def test_numpy_backend_supports_float32(self, reference_estimate):
        estimate = complete_with("numpy", dtype="float32").estimate
        assert estimate.dtype == np.float32
        assert_float32_close(estimate, reference_estimate)


class TestOptionalBackends:
    def test_numba_equivalence(self, reference_estimate):
        pytest.importorskip("numba")
        estimate = complete_with("numba").estimate
        assert float(np.abs(estimate - reference_estimate).max()) <= 1e-8
        est32 = complete_with("numba", dtype="float32").estimate
        assert est32.dtype == np.float32
        assert_float32_close(est32, reference_estimate)

    def test_cupy_equivalence(self, reference_estimate):
        pytest.importorskip("cupy")
        estimate = complete_with("cupy").estimate
        assert float(np.abs(estimate - reference_estimate).max()) <= 1e-8

    @pytest.mark.skipif(not HAVE_CUPY, reason="cupy not installed")
    def test_cupy_requires_positive_lam(self):
        with pytest.raises(ValueError, match="lam > 0"):
            complete_with("cupy", lam=0.0)


# ----------------------------------------------------------------------
# Streaming warm-start dtype retention
# ----------------------------------------------------------------------
def _probe(t, seg, speed):
    return ProbeReport(
        vehicle_id=0, time_s=t, x=0.0, y=0.0, speed_kmh=speed, segment_id=seg
    )


class TestStreamingDtype:
    def test_warm_factor_stays_float32_across_windows(self):
        est = StreamingEstimator(
            segment_ids=[0, 1, 2],
            slot_s=60.0,
            window_slots=4,
            rank=1,
            lam=1.0,
            cold_iterations=10,
            warm_iterations=4,
            backend="numpy-ws",
            dtype="float32",
            seed=0,
        )
        for k in range(6):
            t = k * 60.0
            est.ingest(_probe(t + 5, 0, 30.0))
            est.ingest(_probe(t + 10, 1, 30.0))
        est.flush()
        warm_left = est._window._warm_left
        assert warm_left is not None
        assert warm_left.dtype == np.float32
        assert est.estimates and np.isfinite(est.estimates[-1].speeds_kmh).all()

    def test_bad_backend_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            StreamingEstimator(segment_ids=[0], slot_s=60.0, backend="fortran")


# ----------------------------------------------------------------------
# Map-matching jit method
# ----------------------------------------------------------------------
class TestMapmatchJit:
    def test_jit_method_matches_vectorized(self, small_network):
        # Without numba the jit method falls back to the vectorized
        # path, so this must pass either way; under the CI jit-extra
        # leg it exercises the compiled kernel for real.
        rng = np.random.default_rng(11)
        xs = rng.uniform(-50.0, 650.0, size=128)
        ys = rng.uniform(-50.0, 650.0, size=128)
        headings = rng.uniform(0.0, 360.0, size=128)
        batch = ReportBatch(
            [
                ProbeReport(
                    vehicle_id=i % 5,
                    time_s=float(i),
                    x=float(xs[i]),
                    y=float(ys[i]),
                    speed_kmh=30.0,
                    segment_id=-1,
                    heading_deg=float(headings[i]),
                )
                for i in range(128)
            ]
        )
        matcher = MapMatcher(small_network, max_distance_m=60.0)
        ref = matcher.match_batch(batch, method="vectorized")
        jit = matcher.match_batch(batch, method="jit")
        np.testing.assert_array_equal(jit.segment_ids, ref.segment_ids)

    def test_jit_availability_probe(self):
        assert jit_match_available() == HAVE_NUMBA


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestBackendsCli:
    def test_backends_verb_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "numpy-ws", "numba", "cupy"):
            assert name in out
        assert "available" in out

    def test_backends_verbose_shows_hint(self, capsys):
        assert main(["backends", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "repro[jit]" in out or HAVE_NUMBA
