"""Tests for repro.metrics.stats."""

import numpy as np
import pytest

from repro.metrics.stats import cdf_points, quantiles, summarize


class TestCdfPoints:
    def test_basic(self):
        out = cdf_points([1, 2, 3, 4], [2.5])
        assert list(out) == [0.5]

    def test_empty(self):
        assert list(cdf_points([], [1.0, 2.0])) == [0.0, 0.0]

    def test_monotone_over_grid(self):
        samples = np.random.default_rng(0).uniform(0, 1, 100)
        grid = np.linspace(0, 1, 11)
        out = cdf_points(samples, grid)
        assert np.all(np.diff(out) >= 0)


class TestQuantiles:
    def test_median(self):
        q = quantiles([1.0, 2.0, 3.0], (0.5,))
        assert q[0.5] == 2.0

    def test_empty(self):
        q = quantiles([], (0.5, 0.9))
        assert all(np.isnan(v) for v in q.values())

    def test_default_keys(self):
        q = quantiles(np.arange(100.0))
        assert set(q) == {0.5, 0.8, 0.9, 0.95}


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["median"] == 2.0
        assert s["std"] == pytest.approx(np.std([1, 2, 3]))

    def test_empty(self):
        s = summarize([])
        assert all(np.isnan(v) for v in s.values())
