"""Tests for repro.core.weighted (confidence-weighted completion)."""

import numpy as np
import pytest

from repro.core.completion import CompressiveSensingCompleter
from repro.core.weighted import ConfidenceWeightedCompleter, weights_from_counts
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae
from tests.conftest import make_low_rank


class TestWeightsFromCounts:
    def test_sqrt_scaling(self):
        w = weights_from_counts(np.array([0, 1, 4, 9]))
        assert list(w) == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_cap(self):
        w = weights_from_counts(np.array([100.0]), cap=5.0)
        assert w[0] == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            weights_from_counts(np.array([-1.0]))
        with pytest.raises(ValueError):
            weights_from_counts(np.array([1.0]), cap=0.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"rank": 0}, {"lam": -1.0}, {"iterations": 0}, {"clip_min": 2.0, "clip_max": 1.0}],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            ConfidenceWeightedCompleter(**kwargs)

    def test_shape_checked(self):
        completer = ConfidenceWeightedCompleter()
        with pytest.raises(ValueError, match="shape"):
            completer.complete(np.ones((3, 3)), np.ones((2, 2)))

    def test_negative_weights_rejected(self):
        completer = ConfidenceWeightedCompleter()
        with pytest.raises(ValueError, match="non-negative"):
            completer.complete(np.ones((2, 2)), -np.ones((2, 2)))

    def test_all_zero_weights_rejected(self):
        completer = ConfidenceWeightedCompleter()
        with pytest.raises(ValueError, match="positive weight"):
            completer.complete(np.ones((2, 2)), np.zeros((2, 2)))


class TestCompletion:
    def test_uniform_weights_match_unweighted(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=1)
        measured = np.where(mask, low_rank_matrix, 0.0)
        weights = mask.astype(float)
        weighted = ConfidenceWeightedCompleter(
            rank=2, lam=0.1, iterations=60, seed=0
        ).complete(measured, weights)
        plain = CompressiveSensingCompleter(
            rank=2, lam=0.1, iterations=60, seed=0
        ).complete(measured, mask)
        assert nmae(low_rank_matrix, weighted.estimate, ~mask) == pytest.approx(
            nmae(low_rank_matrix, plain.estimate, ~mask), abs=0.02
        )

    def test_exact_recovery(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=1)
        measured = np.where(mask, low_rank_matrix, 0.0)
        result = ConfidenceWeightedCompleter(
            rank=2, lam=1e-6, iterations=200, seed=0
        ).complete(measured, mask.astype(float))
        assert nmae(low_rank_matrix, result.estimate, ~mask) < 0.01

    def test_downweights_noisy_cells(self):
        """Weighted completion resists single-report noisy cells."""
        x = make_low_rank(40, 30, 2, seed=3)
        rng = np.random.default_rng(0)
        mask = random_integrity_mask(x.shape, 0.5, seed=4)
        # Half the observed cells are single-report (noisy), half are
        # 16-report averages (clean).
        noisy_cells = mask & (rng.random(x.shape) < 0.5)
        clean_cells = mask & ~noisy_cells
        noise = rng.normal(0.0, x[mask].std() * 1.0, size=x.shape)
        measured = np.where(noisy_cells, x + noise, np.where(clean_cells, x, 0.0))

        counts = np.where(noisy_cells, 1.0, np.where(clean_cells, 16.0, 0.0))
        weights = weights_from_counts(counts)
        weighted = ConfidenceWeightedCompleter(
            rank=2, lam=1.0, iterations=60, seed=0
        ).complete(measured, weights)
        unweighted = CompressiveSensingCompleter(
            rank=2, lam=1.0, iterations=60, seed=0
        ).complete(measured, mask)
        err_w = nmae(x, weighted.estimate, ~mask)
        err_u = nmae(x, unweighted.estimate, ~mask)
        assert err_w < err_u

    def test_center_option(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.4, seed=5)
        measured = np.where(mask, low_rank_matrix, 0.0)
        result = ConfidenceWeightedCompleter(
            rank=2, lam=100.0, iterations=30, center=True, seed=0
        ).complete(measured, mask.astype(float))
        # With centering, heavy regularization shrinks toward the mean,
        # not toward zero.
        assert abs(result.estimate.mean() - low_rank_matrix[mask].mean()) < 0.3 * abs(
            low_rank_matrix[mask].mean()
        )

    def test_clipping(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.4, seed=6)
        result = ConfidenceWeightedCompleter(
            rank=2, lam=0.1, iterations=10, clip_min=0.0, clip_max=5.0, seed=0
        ).complete(np.where(mask, low_rank_matrix, 0.0), mask.astype(float))
        assert result.estimate.min() >= 0.0
        assert result.estimate.max() <= 5.0

    def test_deterministic(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=7)
        measured = np.where(mask, low_rank_matrix, 0.0)
        a = ConfidenceWeightedCompleter(rank=2, iterations=15, seed=3).complete(
            measured, mask.astype(float)
        )
        b = ConfidenceWeightedCompleter(rank=2, iterations=15, seed=3).complete(
            measured, mask.astype(float)
        )
        assert np.allclose(a.estimate, b.estimate)
