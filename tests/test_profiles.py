"""Tests for repro.traffic.profiles."""

import numpy as np
import pytest

from repro.traffic.profiles import (
    DAY_S,
    WEEK_S,
    business_hours_profile,
    commuter_profile,
    night_activity_profile,
    profile_matrix,
    standard_modes,
)


class TestCommuterProfile:
    def test_rush_hour_peaks(self):
        p = commuter_profile()
        # Monday 08:00 and 18:00 beat Monday 03:00.
        assert p.intensity(8 * 3600) > p.intensity(3 * 3600)
        assert p.intensity(18 * 3600) > p.intensity(3 * 3600)

    def test_weekend_weaker(self):
        p = commuter_profile()
        monday_8am = p.intensity(8 * 3600)
        saturday_8am = p.intensity(5 * DAY_S + 8 * 3600)
        assert saturday_8am < monday_8am

    def test_weekly_periodicity(self):
        p = commuter_profile()
        t = 2 * DAY_S + 7.5 * 3600
        assert p.intensity(t) == pytest.approx(p.intensity(t + WEEK_S))

    def test_range(self):
        p = commuter_profile()
        samples = p.sample(np.linspace(0, WEEK_S, 500))
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 1.0)


class TestBusinessHoursProfile:
    def test_midday_plateau(self):
        p = business_hours_profile()
        assert p.intensity(12 * 3600) == pytest.approx(p.intensity(14 * 3600))

    def test_night_low(self):
        p = business_hours_profile()
        assert p.intensity(2 * 3600) < 0.2


class TestNightActivityProfile:
    def test_evening_peak(self):
        p = night_activity_profile()
        assert p.intensity(5 * DAY_S + 21.5 * 3600) > p.intensity(
            5 * DAY_S + 10 * 3600
        )

    def test_weekend_stronger(self):
        p = night_activity_profile()
        friday_night = p.intensity(4 * DAY_S + 21.5 * 3600)
        saturday_night = p.intensity(5 * DAY_S + 21.5 * 3600)
        assert saturday_night > friday_night


class TestStandardModes:
    def test_three_modes(self):
        modes = standard_modes()
        assert len(modes) == 3
        assert len({m.name for m in modes}) == 3


class TestProfileMatrix:
    def test_shape(self):
        times = np.linspace(0, DAY_S, 24)
        matrix = profile_matrix(standard_modes(), times)
        assert matrix.shape == (24, 3)

    def test_values_in_range(self):
        times = np.linspace(0, WEEK_S, 200)
        matrix = profile_matrix(standard_modes(), times)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0
