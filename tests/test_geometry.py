"""Tests for repro.roadnet.geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.roadnet.geometry import (
    Point,
    haversine_m,
    heading_deg,
    interpolate,
    local_projection,
    point_segment_distance,
    project_to_segment,
)

coords = st.floats(
    min_value=-10_000, max_value=10_000, allow_nan=False, allow_infinity=False
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(-3, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translate(self):
        p = Point(1, 1).translated(2, -1)
        assert (p.x, p.y) == (3, 0)

    @given(coords, coords)
    def test_distance_to_self_zero(self, x, y):
        assert Point(x, y).distance_to(Point(x, y)) == 0.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(121.47, 31.23, 121.47, 31.23) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_symmetric(self):
        d1 = haversine_m(121.4, 31.2, 121.5, 31.3)
        d2 = haversine_m(121.5, 31.3, 121.4, 31.2)
        assert d1 == pytest.approx(d2)


class TestLocalProjection:
    def test_center_maps_to_origin(self):
        proj = local_projection(121.47, 31.23)
        p = proj.to_xy(121.47, 31.23)
        assert (p.x, p.y) == pytest.approx((0.0, 0.0))

    def test_round_trip(self):
        proj = local_projection(121.47, 31.23)
        lon, lat = proj.to_lonlat(proj.to_xy(121.52, 31.30))
        assert lon == pytest.approx(121.52, abs=1e-9)
        assert lat == pytest.approx(31.30, abs=1e-9)

    def test_consistent_with_haversine(self):
        proj = local_projection(121.47, 31.23)
        p = proj.to_xy(121.50, 31.25)
        d_proj = p.distance_to(Point(0, 0))
        d_hav = haversine_m(121.47, 31.23, 121.50, 31.25)
        assert d_proj == pytest.approx(d_hav, rel=0.002)

    def test_rejects_bad_center(self):
        with pytest.raises(ValueError):
            local_projection(190.0, 0.0)
        with pytest.raises(ValueError):
            local_projection(0.0, 95.0)


class TestSegmentProjection:
    def test_projects_to_interior(self):
        closest, s = project_to_segment(Point(5, 3), Point(0, 0), Point(10, 0))
        assert (closest.x, closest.y) == pytest.approx((5, 0))
        assert s == pytest.approx(0.5)

    def test_clamps_before_start(self):
        closest, s = project_to_segment(Point(-5, 1), Point(0, 0), Point(10, 0))
        assert s == 0.0
        assert (closest.x, closest.y) == (0, 0)

    def test_clamps_after_end(self):
        _, s = project_to_segment(Point(15, 1), Point(0, 0), Point(10, 0))
        assert s == 1.0

    def test_degenerate_segment(self):
        closest, s = project_to_segment(Point(1, 1), Point(2, 2), Point(2, 2))
        assert s == 0.0
        assert (closest.x, closest.y) == (2, 2)

    def test_distance(self):
        d = point_segment_distance(Point(5, 3), Point(0, 0), Point(10, 0))
        assert d == pytest.approx(3.0)

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_never_exceeds_endpoint_distance(self, px, py, ax, ay, bx, by):
        p, a, b = Point(px, py), Point(ax, ay), Point(bx, by)
        d = point_segment_distance(p, a, b)
        assert d <= p.distance_to(a) + 1e-6
        assert d <= p.distance_to(b) + 1e-6


class TestInterpolate:
    def test_midpoint(self):
        p = interpolate(Point(0, 0), Point(10, 20), 0.5)
        assert (p.x, p.y) == pytest.approx((5, 10))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interpolate(Point(0, 0), Point(1, 1), 1.5)


class TestHeading:
    def test_north(self):
        assert heading_deg(Point(0, 0), Point(0, 1)) == pytest.approx(0.0)

    def test_east(self):
        assert heading_deg(Point(0, 0), Point(1, 0)) == pytest.approx(90.0)

    def test_range(self):
        h = heading_deg(Point(0, 0), Point(-1, -1))
        assert 0.0 <= h < 360.0
