"""Tests for repro.apps.trip_planner."""

import numpy as np
import pytest

from repro.apps.trip_planner import TripPlannerService
from repro.core.tcm import TimeGrid, TrafficConditionMatrix


def uniform_tcm(network, speed=36.0, num_slots=8, slot_s=1800.0):
    grid = TimeGrid(start_s=0.0, slot_s=slot_s, num_slots=num_slots)
    values = np.full((num_slots, network.num_segments), speed)
    return TrafficConditionMatrix(values, grid=grid, segment_ids=network.segment_ids)


class TestPlan:
    def test_same_node_trivial(self, small_network):
        planner = TripPlannerService(small_network, uniform_tcm(small_network))
        plan = planner.plan(3, 3, depart_s=0.0)
        assert plan.travel_time_s == 0.0
        assert plan.segment_ids == []

    def test_route_is_connected(self, small_network):
        planner = TripPlannerService(small_network, uniform_tcm(small_network))
        plan = planner.plan(0, 15, depart_s=0.0)
        assert plan is not None
        first = small_network.segment(plan.segment_ids[0])
        last = small_network.segment(plan.segment_ids[-1])
        assert first.start == 0
        assert last.end == 15
        for a, b in zip(plan.segment_ids[:-1], plan.segment_ids[1:]):
            assert small_network.segment(a).end == small_network.segment(b).start

    def test_uniform_speed_matches_shortest_path(self, small_network):
        """With uniform speeds, the fastest route is the shortest route."""
        planner = TripPlannerService(small_network, uniform_tcm(small_network))
        plan = planner.plan(0, 15, depart_s=0.0)
        shortest = small_network.shortest_path_segments(0, 15)
        plan_len = sum(small_network.segment(s).length_m for s in plan.segment_ids)
        shortest_len = sum(s.length_m for s in shortest)
        assert plan_len == pytest.approx(shortest_len, rel=1e-6)

    def test_avoids_congested_corridor(self, small_network):
        """Congestion on one corridor diverts the fastest route."""
        tcm_vals = np.full((8, small_network.num_segments), 36.0)
        # Jam every segment leaving node 0's straight-line corridor: pick
        # the direct segment from 0 and make it crawl.
        direct = small_network.outgoing_segments(0)[0]
        col = small_network.segment_ids.index(direct.segment_id)
        tcm_vals[:, col] = 3.0
        grid = TimeGrid(start_s=0.0, slot_s=1800.0, num_slots=8)
        tcm = TrafficConditionMatrix(
            tcm_vals, grid=grid, segment_ids=small_network.segment_ids
        )
        planner = TripPlannerService(small_network, tcm)
        plan = planner.plan(0, direct.end, depart_s=0.0)
        # Going around (3 links at 36 km/h) beats the direct crawl.
        assert plan.segment_ids != [direct.segment_id]

    def test_arrival_consistent_with_travel_time(self, small_network):
        planner = TripPlannerService(small_network, uniform_tcm(small_network))
        plan = planner.plan(0, 12, depart_s=500.0)
        assert plan.arrive_s == pytest.approx(500.0 + plan.travel_time_s)

    def test_uncovered_segments_unusable(self, small_network):
        # TCM covering only one segment: most destinations unreachable.
        sid = small_network.segment_ids[0]
        tcm = TrafficConditionMatrix(
            np.full((4, 1), 30.0),
            grid=TimeGrid(0.0, 1800.0, 4),
            segment_ids=[sid],
        )
        planner = TripPlannerService(small_network, tcm)
        seg = small_network.segment(sid)
        plan = planner.plan(seg.start, seg.end, depart_s=0.0)
        assert plan is not None
        far = [n.node_id for n in small_network.intersections() if n.node_id not in (seg.start, seg.end)][0]
        assert planner.plan(seg.start, far, depart_s=0.0) is None


class TestCompareDepartures:
    def test_plans_for_each_time(self, small_network):
        planner = TripPlannerService(small_network, uniform_tcm(small_network))
        plans = planner.compare_departures(0, 15, [0.0, 1800.0, 3600.0])
        assert len(plans) == 3
        assert [p.depart_s for p in plans] == [0.0, 1800.0, 3600.0]

    def test_on_estimated_traffic(self, small_network, truth_tcm):
        """Planning works on a realistic (synthesized) TCM."""
        planner = TripPlannerService(small_network, truth_tcm)
        plans = planner.compare_departures(0, 15, [3 * 3600.0, 8 * 3600.0 + 1800.0])
        assert len(plans) == 2
        assert all(p.travel_time_s > 0 for p in plans)
