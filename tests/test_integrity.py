"""Tests for repro.probes.integrity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.tcm import TrafficConditionMatrix
from repro.probes.integrity import (
    IntegrityReport,
    cdf_at,
    empirical_cdf,
    integrity_summary,
)


class TestEmpiricalCdf:
    def test_basic(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, f = empirical_cdf([])
        assert x.size == 0 and f.size == 0

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_monotone_and_bounded(self, samples):
        _, f = empirical_cdf(samples)
        assert np.all(np.diff(f) >= 0)
        assert f[-1] == pytest.approx(1.0)


class TestCdfAt:
    def test_thresholds(self):
        out = cdf_at([1.0, 2.0, 3.0, 4.0], [0.0, 2.5, 10.0])
        assert list(out) == pytest.approx([0.0, 0.5, 1.0])

    def test_empty_samples(self):
        assert list(cdf_at([], [1.0])) == [0.0]


class TestIntegritySummary:
    @pytest.fixture()
    def report(self):
        mask = np.array(
            [
                [True, False, False],
                [True, True, False],
            ]
        )
        tcm = TrafficConditionMatrix(np.ones((2, 3)), mask)
        return integrity_summary(tcm)

    def test_overall(self, report):
        assert report.overall == pytest.approx(3 / 6)

    def test_road_integrity(self, report):
        assert list(report.road_integrity) == pytest.approx([1.0, 0.5, 0.0])

    def test_slot_integrity(self, report):
        assert list(report.slot_integrity) == pytest.approx([1 / 3, 2 / 3])

    def test_roads_below(self, report):
        assert report.roads_below(0.5) == pytest.approx(2 / 3)
        assert report.roads_below(1.0) == 1.0

    def test_slots_below(self, report):
        assert report.slots_below(0.4) == pytest.approx(0.5)

    def test_roads_near_zero(self, report):
        assert report.roads_near_zero() == pytest.approx(1 / 3)

    def test_cdfs(self, report):
        x, f = report.road_cdf()
        assert x.size == 3
        x, f = report.slot_cdf()
        assert x.size == 2

    def test_empty_edge_cases(self):
        empty = IntegrityReport(0.0, np.array([]), np.array([]))
        assert empty.roads_below(0.5) == 0.0
        assert empty.slots_below(0.5) == 0.0


class TestOnSimulatedData:
    def test_more_vehicles_higher_integrity(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator
        from repro.probes.aggregation import aggregate_reports

        def integrity(n):
            batch = FleetSimulator(
                ground_truth, FleetConfig(num_vehicles=n), seed=0
            ).run(0.0, 6 * 3600.0)
            tcm = aggregate_reports(
                batch, ground_truth.grid, ground_truth.network.segment_ids
            )
            return tcm.integrity

        assert integrity(30) > integrity(5)
