"""Tests for repro.experiments.streaming_study."""

import numpy as np
import pytest

from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    run_streaming_study,
)


@pytest.fixture(scope="module")
def result():
    return run_streaming_study(
        StreamingStudyConfig(
            days=0.25,
            num_vehicles=60,
            grid_rows=4,
            grid_cols=4,
            window_slots=8,
            seed=0,
        )
    )


class TestStreamingStudy:
    def test_all_slots_estimated(self, result):
        assert result.num_slots == 24  # 0.25 days at 15 min

    def test_accuracies_finite(self, result):
        assert np.isfinite(result.streaming_nmae)
        assert np.isfinite(result.batch_nmae)

    def test_live_estimates_reasonable(self, result):
        # Live (past-only) estimates are worse than batch but usable.
        assert result.streaming_nmae < 0.8
        assert result.batch_nmae <= result.streaming_nmae * 1.5

    def test_warm_start_cheaper(self, result):
        assert result.warm_seconds < result.cold_seconds

    def test_renders(self, result):
        text = result.render()
        assert "Streaming extension study" in text
        assert "speedup" in text
