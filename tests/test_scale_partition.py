"""Tests for repro.scale.partition (spatial shard decomposition)."""

import numpy as np
import pytest

from repro.roadnet.generators import grid_city
from repro.scale import (
    PARTITIONERS,
    ContiguousPartitioner,
    GridPartitioner,
    Shard,
    SinglePartitioner,
    contiguous_shards,
    make_partitioner,
    validate_shards,
)


@pytest.fixture(scope="module")
def network():
    return grid_city(5, 5, seed=0)


class TestShard:
    def test_sorts_ids(self):
        shard = Shard(shard_id=0, core_ids=(3, 1, 2), halo_ids=(9, 7))
        assert shard.core_ids == (1, 2, 3)
        assert shard.halo_ids == (7, 9)
        assert shard.all_ids == (1, 2, 3, 7, 9)
        assert shard.num_columns == 5

    def test_empty_core_rejected(self):
        with pytest.raises(ValueError, match="empty core"):
            Shard(shard_id=0, core_ids=())

    def test_halo_core_overlap_rejected(self):
        with pytest.raises(ValueError, match="halo overlaps"):
            Shard(shard_id=0, core_ids=(1, 2), halo_ids=(2, 3))


class TestValidateShards:
    def test_exact_partition_passes(self):
        shards = [
            Shard(0, core_ids=(0, 1), halo_ids=(2,)),
            Shard(1, core_ids=(2, 3)),
        ]
        validate_shards(shards, [0, 1, 2, 3])

    def test_duplicate_core_rejected(self):
        shards = [Shard(0, core_ids=(0, 1)), Shard(1, core_ids=(1, 2))]
        with pytest.raises(ValueError, match="more than one core"):
            validate_shards(shards, [0, 1, 2])

    def test_missing_segment_rejected(self):
        with pytest.raises(ValueError, match="do not partition"):
            validate_shards([Shard(0, core_ids=(0, 1))], [0, 1, 2])

    def test_unknown_halo_rejected(self):
        shards = [Shard(0, core_ids=(0, 1), halo_ids=(9,))]
        with pytest.raises(ValueError, match="unknown segments"):
            validate_shards(shards, [0, 1])

    def test_no_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_shards([], [0])


class TestContiguousShards:
    def test_covers_all_ids_without_halo(self):
        ids = list(range(17))
        shards = contiguous_shards(ids, 4)
        validate_shards(shards, ids)
        assert all(not s.halo_ids for s in shards)
        sizes = [len(s.core_ids) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_clamps_to_segment_count(self):
        shards = contiguous_shards([5, 6], 8)
        assert len(shards) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="num_shards"):
            contiguous_shards([0, 1], 0)


class TestSinglePartitioner:
    def test_one_shard_everything(self, network):
        shards = SinglePartitioner().partition(network)
        assert len(shards) == 1
        assert shards[0].core_ids == tuple(sorted(network.segment_ids))
        assert shards[0].halo_ids == ()
        validate_shards(shards, network.segment_ids)


class TestContiguousPartitioner:
    def test_partitions_network(self, network):
        shards = ContiguousPartitioner(3).partition(network)
        validate_shards(shards, network.segment_ids)
        assert len(shards) == 3

    def test_rejects_halo(self):
        with pytest.raises(ValueError, match="halo"):
            ContiguousPartitioner(3, halo=1)


class TestGridPartitioner:
    def test_cores_partition_exactly(self, network):
        shards = GridPartitioner(4, halo=1).partition(network)
        validate_shards(shards, network.segment_ids)
        assert 1 <= len(shards) <= 4
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_halo_zero_means_disjoint(self, network):
        shards = GridPartitioner(4, halo=0).partition(network)
        assert all(not s.halo_ids for s in shards)

    def test_halo_segments_touch_the_core(self, network):
        """Every 1-hop halo segment shares an intersection with the core."""
        shards = GridPartitioner(4, halo=1).partition(network)
        assert any(s.halo_ids for s in shards)  # grid tiles do abut
        for shard in shards:
            core_nodes = set()
            for sid in shard.core_ids:
                seg = network.segment(sid)
                core_nodes.update((seg.start, seg.end))
            for sid in shard.halo_ids:
                seg = network.segment(sid)
                assert {seg.start, seg.end} & core_nodes

    def test_deeper_halo_is_superset(self, network):
        one = GridPartitioner(4, halo=1).partition(network)
        two = GridPartitioner(4, halo=2).partition(network)
        for a, b in zip(one, two):
            assert a.core_ids == b.core_ids
            assert set(a.halo_ids) <= set(b.halo_ids)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            GridPartitioner(0)
        with pytest.raises(ValueError):
            GridPartitioner(4, halo=-1)


class TestMakePartitioner:
    def test_registry_names(self):
        assert set(PARTITIONERS) == {"grid", "single", "contiguous"}
        assert isinstance(make_partitioner("grid", 4), GridPartitioner)
        assert isinstance(make_partitioner("single", 1), SinglePartitioner)
        assert isinstance(
            make_partitioner("contiguous", 3), ContiguousPartitioner
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown partitioner"):
            make_partitioner("voronoi", 4)
