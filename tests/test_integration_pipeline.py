"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro import quickstart_estimate
from repro.core import TrafficEstimator
from repro.core.streaming import StreamingEstimator
from repro.datasets.masks import random_integrity_mask
from repro.datasets.synthetic import SyntheticDatasetConfig, build_probe_dataset
from repro.metrics.errors import estimate_error, nmae
from repro.probes.mapmatch import MapMatcher
from repro.probes.report import ReportBatch
from repro.roadnet.generators import grid_city


class TestQuickstart:
    def test_runs(self):
        output = quickstart_estimate(seed=0)
        assert output.estimate.is_complete
        assert 0 < output.measurements.integrity < 1


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        network = grid_city(5, 5, seed=0)
        config = SyntheticDatasetConfig(days=1.0, num_vehicles=120, slot_s=1800.0)
        return build_probe_dataset(network, config, seed=0)

    def test_estimation_beats_historical_mean(self, dataset):
        from repro.baselines import HistoricalMean

        measured = dataset.measurements
        output = TrafficEstimator(iterations=60, seed=0).estimate(measured)
        cs_err = estimate_error(
            dataset.truth_tcm.values, output.estimate.values, measured.mask
        )
        hm = HistoricalMean().complete(measured.values, measured.mask)
        hm_err = estimate_error(dataset.truth_tcm.values, hm, measured.mask)
        assert cs_err < hm_err

    def test_masked_down_estimation_recovers(self, dataset):
        """The paper's Section 4 protocol: thin the matrix, estimate, score."""
        truth = dataset.truth_tcm
        mask = random_integrity_mask(truth.shape, 0.2, seed=1)
        masked = truth.with_mask(mask)
        output = TrafficEstimator(iterations=60, seed=0).estimate(masked)
        err = estimate_error(truth.values, output.estimate.values, mask)
        assert err < 0.35

    def test_map_matching_round_trip(self, dataset):
        """Noisy positions map-match to roughly the right segments."""
        driving = ReportBatch([r for r in dataset.reports if r.segment_id >= 0][:300])
        matcher = MapMatcher(dataset.network, max_distance_m=40.0)
        matched = matcher.match_batch(driving)
        assert np.mean(matched.segment_ids >= 0) > 0.9

    def test_streaming_matches_batch_scale(self, dataset):
        """Online estimates land in the same range as offline ones."""
        grid = dataset.ground_truth.grid
        streamer = StreamingEstimator(
            segment_ids=dataset.network.segment_ids,
            slot_s=grid.slot_s,
            window_slots=12,
            rank=2,
            lam=10.0,
            seed=0,
        )
        streamer.ingest_many(list(dataset.reports))
        streamer.flush()
        assert len(streamer.estimates) >= grid.num_slots - 1
        final = streamer.estimates[-1].speeds_kmh
        truth_final = dataset.truth_tcm.values[len(streamer.estimates) - 1]
        # Same physical range, not wildly off.
        assert nmae(truth_final[None], final[None]) < 0.6


class TestSeedIsolation:
    def test_independent_stages_reproducible(self):
        network = grid_city(4, 4, seed=0)
        config = SyntheticDatasetConfig(days=0.25, num_vehicles=20, slot_s=900.0)
        a = build_probe_dataset(network, config, seed=42)
        b = build_probe_dataset(network, config, seed=42)
        est_a = TrafficEstimator(iterations=20, seed=7).estimate(a.measurements)
        est_b = TrafficEstimator(iterations=20, seed=7).estimate(b.measurements)
        assert np.allclose(est_a.estimate.values, est_b.estimate.values)
