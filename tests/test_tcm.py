"""Tests for repro.core.tcm."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.tcm import TimeGrid, TrafficConditionMatrix


class TestTimeGrid:
    def test_end_and_duration(self):
        grid = TimeGrid(start_s=100.0, slot_s=60.0, num_slots=10)
        assert grid.end_s == 700.0
        assert grid.duration_s == 600.0

    def test_slot_of(self):
        grid = TimeGrid(start_s=0.0, slot_s=60.0, num_slots=3)
        assert grid.slot_of(0.0) == 0
        assert grid.slot_of(59.999) == 0
        assert grid.slot_of(60.0) == 1
        assert grid.slot_of(179.9) == 2

    def test_slot_of_outside(self):
        grid = TimeGrid(start_s=0.0, slot_s=60.0, num_slots=3)
        assert grid.slot_of(-0.1) is None
        assert grid.slot_of(180.0) is None

    def test_slot_start(self):
        grid = TimeGrid(start_s=10.0, slot_s=5.0, num_slots=4)
        assert grid.slot_start(2) == 20.0
        with pytest.raises(IndexError):
            grid.slot_start(4)

    def test_slot_centers(self):
        grid = TimeGrid(start_s=0.0, slot_s=10.0, num_slots=2)
        assert np.allclose(grid.slot_centers(), [5.0, 15.0])

    def test_over_days(self):
        grid = TimeGrid.over_days(1.0, 900.0)
        assert grid.num_slots == 96

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TimeGrid(0.0, 0.0, 10)
        with pytest.raises(ValueError):
            TimeGrid(0.0, 60.0, 0)

    @given(st.floats(1.0, 1e5), st.integers(1, 500))
    def test_slot_of_consistent(self, slot_s, num_slots):
        grid = TimeGrid(start_s=0.0, slot_s=slot_s, num_slots=num_slots)
        for frac in (0.0, 0.5, 0.999):
            t = grid.duration_s * frac
            slot = grid.slot_of(t)
            assert slot is not None
            # Tolerances absorb float rounding at slot boundaries.
            eps = grid.duration_s * 1e-12 + 1e-9
            assert grid.slot_start(slot) <= t + eps
            assert t < grid.slot_start(slot) + slot_s + eps


def make_tcm(values=None, mask=None):
    if values is None:
        values = np.arange(12, dtype=float).reshape(3, 4) + 1.0
    return TrafficConditionMatrix(values, mask)


class TestTrafficConditionMatrix:
    def test_shape_properties(self):
        tcm = make_tcm()
        assert tcm.shape == (3, 4)
        assert tcm.num_slots == 3
        assert tcm.num_segments == 4

    def test_full_mask_by_default(self):
        assert make_tcm().is_complete

    def test_unobserved_cells_zeroed(self):
        values = np.full((2, 2), 9.0)
        mask = np.array([[True, False], [False, True]])
        tcm = TrafficConditionMatrix(values, mask)
        assert tcm.values[0, 1] == 0.0
        assert tcm.values[0, 0] == 9.0

    def test_integrity(self):
        mask = np.array([[True, False], [False, True]])
        tcm = TrafficConditionMatrix(np.ones((2, 2)), mask)
        assert tcm.integrity == pytest.approx(0.5)

    def test_road_and_slot_integrity(self):
        mask = np.array([[True, False], [True, True]])
        tcm = TrafficConditionMatrix(np.ones((2, 2)), mask)
        assert np.allclose(tcm.road_integrity(), [1.0, 0.5])
        assert np.allclose(tcm.slot_integrity(), [0.5, 1.0])

    def test_grid_length_checked(self):
        grid = TimeGrid(0.0, 60.0, 5)
        with pytest.raises(ValueError, match="slots"):
            TrafficConditionMatrix(np.ones((3, 4)), grid=grid)

    def test_segment_ids_checked(self):
        with pytest.raises(ValueError):
            TrafficConditionMatrix(np.ones((2, 3)), segment_ids=[1, 2])
        with pytest.raises(ValueError, match="unique"):
            TrafficConditionMatrix(np.ones((2, 3)), segment_ids=[1, 1, 2])

    def test_column_of(self):
        tcm = TrafficConditionMatrix(np.ones((2, 3)), segment_ids=[10, 20, 30])
        assert tcm.column_of(20) == 1
        with pytest.raises(KeyError):
            tcm.column_of(99)

    def test_series_nans_unobserved(self):
        mask = np.array([[True], [False], [True]])
        tcm = TrafficConditionMatrix(np.full((3, 1), 5.0), mask, segment_ids=[7])
        series = tcm.series(7)
        assert series[0] == 5.0
        assert np.isnan(series[1])

    def test_with_mask_from_complete(self):
        tcm = make_tcm()
        sub = tcm.with_mask(np.zeros((3, 4), dtype=bool))
        assert sub.integrity == 0.0

    def test_with_mask_rejects_superset(self):
        mask = np.zeros((3, 4), dtype=bool)
        mask[0, 0] = True
        partial = make_tcm(mask=mask)
        bigger = np.ones((3, 4), dtype=bool)
        with pytest.raises(ValueError, match="missing"):
            partial.with_mask(bigger)

    def test_with_mask_shape_checked(self):
        with pytest.raises(ValueError):
            make_tcm().with_mask(np.ones((2, 2), dtype=bool))

    def test_select_segments(self):
        tcm = TrafficConditionMatrix(
            np.arange(6, dtype=float).reshape(2, 3), segment_ids=[5, 6, 7]
        )
        sub = tcm.select_segments([7, 5])
        assert sub.segment_ids == [7, 5]
        assert np.allclose(sub.values[:, 0], tcm.values[:, 2])

    def test_select_slots(self):
        tcm = make_tcm()
        sub = tcm.select_slots(1, 3)
        assert sub.num_slots == 2
        assert sub.grid.start_s == tcm.grid.slot_start(1)
        assert np.allclose(sub.values, tcm.values[1:3])

    def test_select_slots_bounds(self):
        with pytest.raises(ValueError):
            make_tcm().select_slots(2, 2)
        with pytest.raises(ValueError):
            make_tcm().select_slots(0, 99)

    def test_observed_values(self):
        mask = np.array([[True, False], [False, True]])
        tcm = TrafficConditionMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]), mask)
        assert sorted(tcm.observed_values()) == [1.0, 4.0]

    def test_values_are_copies(self):
        tcm = make_tcm()
        tcm.values[0, 0] = -99
        assert tcm.values[0, 0] != -99
