"""Rendering coverage: every result object's render output is well formed.

The benchmark harness prints these; a formatting regression should fail
a fast unit test rather than a ten-minute bench run.
"""

import numpy as np
import pytest

from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    ErrorVsIntegrityResult,
)
from repro.experiments.matrix_selection_study import MatrixSelectionResult
from repro.experiments.robustness import RobustnessConfig, RobustnessResult
from repro.experiments.runtimes import RuntimeStudyConfig, RuntimeStudyResult
from repro.experiments.sampling_study import (
    SamplingPoint,
    SamplingStudyConfig,
    SamplingStudyResult,
)
from repro.experiments.seed_sensitivity import (
    SeedSensitivityConfig,
    SeedSensitivityResult,
)
from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    StreamingStudyResult,
)


class TestErrorVsIntegrityRender:
    def test_table_and_chart_present(self):
        config = ErrorVsIntegrityConfig(
            granularities_s=(1800.0,), integrities=(0.1, 0.5)
        )
        result = ErrorVsIntegrityResult(
            errors={
                (1800.0, 0.1): {"compressive": 0.15, "naive-knn": 0.25},
                (1800.0, 0.5): {"compressive": 0.10, "naive-knn": 0.20},
            },
            config=config,
        )
        text = result.render()
        assert "Figure 11" in text
        assert "integrity" in text
        assert "o=compressive" in text  # the ASCII chart legend

    def test_series_extraction(self):
        config = ErrorVsIntegrityConfig(
            granularities_s=(900.0,), integrities=(0.2, 0.4)
        )
        result = ErrorVsIntegrityResult(
            errors={
                (900.0, 0.2): {"compressive": 0.3},
                (900.0, 0.4): {"compressive": 0.2},
            },
            config=config,
        )
        assert result.series_for(900.0) == {"compressive": [0.3, 0.2]}
        assert result.algorithm_names() == ["compressive"]


class TestRuntimeRender:
    def test_scientific_notation(self):
        config = RuntimeStudyConfig(granularities_s=(900.0,))
        result = RuntimeStudyResult(
            seconds={"Naive KNN": {900.0: 0.0123}, "MSSA": {900.0: 45.6}},
            config=config,
        )
        text = result.render()
        assert "1.23e-02" in text
        assert "4.56e+01" in text


class TestSamplingRender:
    def test_rows(self):
        config = SamplingStudyConfig(fleet_sizes=(10,), reporting_intervals_s=(60.0,))
        result = SamplingStudyResult(
            points=[SamplingPoint(10, 60.0, 0.25, 0.1, 0.2)],
            config=config,
        )
        text = result.render()
        assert "0.250" in text and "0.1000" in text


class TestRobustnessRender:
    def test_conditions_listed(self):
        result = RobustnessResult(
            errors={"uniform mask": {"compressive": 0.1, "naive-knn": 0.2}},
            config=RobustnessConfig(),
        )
        text = result.render()
        assert "uniform mask" in text
        assert "compressive" in text


class TestSeedSensitivityRender:
    def test_stats_and_verdict(self):
        result = SeedSensitivityResult(
            errors={
                "compressive": [0.10, 0.11],
                "naive-knn": [0.20, 0.21],
            },
            config=SeedSensitivityConfig(num_seeds=2),
        )
        text = result.render()
        assert "mean NMAE" in text
        assert "CS wins in 100%" in text
        assert result.cs_win_fraction() == 1.0

    def test_partial_wins(self):
        result = SeedSensitivityResult(
            errors={
                "compressive": [0.10, 0.30],
                "naive-knn": [0.20, 0.21]},
            config=SeedSensitivityConfig(num_seeds=2),
        )
        assert result.cs_win_fraction() == 0.5


class TestStreamingStudyRender:
    def test_speedup_reported(self):
        result = StreamingStudyResult(
            streaming_nmae=0.2,
            batch_nmae=0.15,
            warm_seconds=1.0,
            cold_seconds=8.0,
            num_slots=96,
            config=StreamingStudyConfig(),
        )
        text = result.render()
        assert "8.0x" in text
        assert "96 slots" in text

    def test_zero_warm_time_infinite_speedup(self):
        result = StreamingStudyResult(
            streaming_nmae=0.2,
            batch_nmae=0.15,
            warm_seconds=0.0,
            cold_seconds=8.0,
            num_slots=1,
            config=StreamingStudyConfig(),
        )
        assert result.speedup == float("inf")


class TestMatrixSelectionRender:
    def test_figure_title_by_integrity(self):
        from repro.core.matrix_selection import SegmentSet
        from repro.experiments.matrix_selection_study import MatrixSelectionConfig

        sets = [SegmentSet("set1-connected", 0, [0, 1])]
        low = MatrixSelectionResult(
            errors={"set1-connected": {"compressive": 0.2}},
            sets=sets,
            anchor=0,
            config=MatrixSelectionConfig(integrity=0.2),
        )
        high = MatrixSelectionResult(
            errors={"set1-connected": {"compressive": 0.1}},
            sets=sets,
            anchor=0,
            config=MatrixSelectionConfig(integrity=0.4),
        )
        assert "Figure 17" in low.render()
        assert "Figure 18" in high.render()
