"""Tests for repro.traffic.dynamics (ground-truth TCM synthesis)."""

import numpy as np
import pytest

from repro.core.svd_analysis import singular_value_spectrum
from repro.core.tcm import TimeGrid
from repro.traffic.congestion import CongestionIncident
from repro.traffic.dynamics import (
    TrafficDynamicsConfig,
    mode_sensitivities,
    synthesize_tcm,
)


@pytest.fixture(scope="module")
def grid():
    return TimeGrid.over_days(2.0, 1800.0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_congestion": 1.5},
            {"sensitivity_smoothing_rounds": -1},
            {"noise_sigma": -0.1},
            {"noise_spatial_rounds": -1},
            {"day_variability": -0.1},
            {"temporal_roughness": -0.1},
            {"min_speed_kmh": 0.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficDynamicsConfig(**kwargs)

    def test_default_modes_resolved(self):
        assert len(TrafficDynamicsConfig().resolved_modes()) == 3


class TestSynthesizeTcm:
    def test_shape_and_completeness(self, small_network, grid):
        tcm = synthesize_tcm(small_network, grid, seed=0)
        assert tcm.shape == (grid.num_slots, small_network.num_segments)
        assert tcm.is_complete
        assert tcm.segment_ids == small_network.segment_ids

    def test_speeds_physical(self, small_network, grid):
        config = TrafficDynamicsConfig()
        tcm = synthesize_tcm(small_network, grid, config=config, seed=0)
        values = tcm.values
        assert values.min() >= config.min_speed_kmh
        max_free_flow = max(s.free_flow_kmh for s in small_network.segments())
        # Lognormal noise can push above free flow, but not absurdly.
        assert values.max() < max_free_flow * 2.5

    def test_deterministic_by_seed(self, small_network, grid):
        a = synthesize_tcm(small_network, grid, seed=9)
        b = synthesize_tcm(small_network, grid, seed=9)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_differ(self, small_network, grid):
        a = synthesize_tcm(small_network, grid, seed=1)
        b = synthesize_tcm(small_network, grid, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_rush_hour_slower_than_night(self, small_network):
        grid = TimeGrid.over_days(1.0, 900.0)  # Monday
        config = TrafficDynamicsConfig(
            noise_sigma=0.0, temporal_roughness=0.0, incident_rate_per_day=0.0
        )
        tcm = synthesize_tcm(small_network, grid, config=config, seed=0)
        values = tcm.values
        night = values[4 * 3 : 4 * 4].mean()  # 03:00-04:00
        rush = values[4 * 18 : 4 * 19].mean()  # 18:00-19:00
        assert rush < night

    def test_low_effective_rank_without_noise(self, small_network, grid):
        config = TrafficDynamicsConfig(
            noise_sigma=0.0, incident_rate_per_day=0.0
        )
        tcm = synthesize_tcm(small_network, grid, config=config, seed=0)
        spec = singular_value_spectrum(tcm.values)
        # 3 modes + baseline: the top 5 components hold nearly all energy.
        assert spec.energy_captured(5) > 0.99

    def test_sharp_knee_with_noise(self, small_network, grid):
        tcm = synthesize_tcm(small_network, grid, seed=0)
        spec = singular_value_spectrum(tcm.values)
        assert spec.energy_captured(5) > 0.9

    def test_explicit_incidents_respected(self, small_network, grid):
        incident = CongestionIncident(
            start_s=0.0,
            duration_s=grid.duration_s,
            core_segment=0,
            affected={0: 0.9},
        )
        quiet = TrafficDynamicsConfig(
            noise_sigma=0.0, temporal_roughness=0.0, incident_rate_per_day=0.0
        )
        base = synthesize_tcm(small_network, grid, config=quiet, seed=0, incidents=[])
        hit = synthesize_tcm(
            small_network, grid, config=quiet, seed=0, incidents=[incident]
        )
        col = 0
        assert hit.values[:, col].mean() < 0.5 * base.values[:, col].mean()
        # Other segments unaffected.
        assert np.allclose(hit.values[:, 5], base.values[:, 5])

    def test_no_noise_is_deterministic_structure(self, small_network, grid):
        config = TrafficDynamicsConfig(
            noise_sigma=0.0,
            temporal_roughness=0.0,
            day_variability=0.0,
            incident_rate_per_day=0.0,
        )
        tcm = synthesize_tcm(small_network, grid, config=config, seed=0)
        # Two Mondays... grid is 2 days; day 0 vs day 1 are weekdays with
        # identical profiles absent day variability.
        day = grid.num_slots // 2
        assert np.allclose(tcm.values[:day], tcm.values[day:], rtol=1e-9)


class TestModeSensitivities:
    def test_shape_and_range(self, small_network, rng):
        sens = mode_sensitivities(small_network, 3, rounds=2, rng=rng)
        assert sens.shape == (small_network.num_segments, 3)
        assert sens.min() >= 0.0
        assert sens.max() <= 1.0

    def test_smoothing_reduces_neighbour_variance(self, small_network):
        gen = np.random.default_rng(0)
        rough = mode_sensitivities(small_network, 1, rounds=0, rng=np.random.default_rng(0))
        smooth = mode_sensitivities(small_network, 1, rounds=4, rng=np.random.default_rng(0))

        def neighbour_gap(sens):
            gaps = []
            for sid in small_network.segment_ids:
                i = sid  # ids are dense
                for n in small_network.adjacent_segments(sid):
                    gaps.append(abs(sens[i, 0] - sens[n, 0]))
            return np.mean(gaps)

        assert neighbour_gap(smooth) < neighbour_gap(rough)
