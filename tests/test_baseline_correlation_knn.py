"""Tests for repro.baselines.correlation_knn."""

import numpy as np
import pytest

from repro.baselines.correlation_knn import CorrelationKNN
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs", [{"k": 1}, {"axis": "diagonal"}, {"min_overlap": 1}]
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CorrelationKNN(**kwargs)


class TestComplete:
    def test_observed_cells_pass_through(self, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.5, seed=0)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = CorrelationKNN(k=4).complete(measured, mask)
        assert np.allclose(out[mask], measured[mask])

    def test_everything_filled(self, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.2, seed=1)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = CorrelationKNN(k=4).complete(measured, mask)
        assert np.all(np.isfinite(out))
        # Almost all cells should be positive speeds (fallback included).
        assert (out > 0).mean() > 0.99

    def test_correlated_rows_weighted(self):
        # Row 1 is missing a value; row 0 is perfectly correlated with
        # row 1, row 2 is anti-structured noise: estimate should lean on
        # adjacent rows via correlation weights and land near truth.
        base = np.linspace(1, 10, 8)
        values = np.vstack([base, base * 2, np.ones(8) * 5])
        mask = np.ones_like(values, dtype=bool)
        mask[1, 4] = False
        measured = np.where(mask, values, 0.0)
        out = CorrelationKNN(k=2).complete(measured, mask)
        assert np.all(np.isfinite(out))

    def test_column_axis(self, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.3, seed=2)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = CorrelationKNN(k=4, axis="columns").complete(measured, mask)
        assert np.all(np.isfinite(out))
        assert np.allclose(out[mask], measured[mask])

    def test_better_than_naive_on_temporal_data(self, truth_tcm):
        from repro.baselines.knn import NaiveKNN

        mask = random_integrity_mask(truth_tcm.shape, 0.3, seed=3)
        measured = np.where(mask, truth_tcm.values, 0.0)
        corr_err = nmae(
            truth_tcm.values,
            CorrelationKNN(k=4).complete(measured, mask),
            ~mask,
        )
        naive_err = nmae(
            truth_tcm.values, NaiveKNN(k=4).complete(measured, mask), ~mask
        )
        # The paper finds correlation KNN better than naive KNN; on this
        # deliberately tiny fixture the two are close, so only require
        # rough parity here (the metropolitan-scale ordering is asserted
        # by the experiment-level tests).
        assert corr_err < naive_err * 1.15

    def test_sparse_column_falls_back(self):
        values = np.zeros((6, 2))
        values[:, 0] = np.arange(6) + 1.0
        mask = np.zeros_like(values, dtype=bool)
        mask[:, 0] = True
        out = CorrelationKNN(k=4).complete(values, mask)
        assert np.all(np.isfinite(out[:, 1]))


class TestMethodEquivalence:
    @pytest.mark.parametrize("axis", ["rows", "columns"])
    @pytest.mark.parametrize("integrity", [0.2, 0.5])
    def test_vectorized_matches_scalar(self, truth_tcm, axis, integrity):
        mask = random_integrity_mask(truth_tcm.shape, integrity, seed=2)
        measured = np.where(mask, truth_tcm.values, 0.0)
        fast = CorrelationKNN(k=4, axis=axis).complete(measured, mask)
        slow = CorrelationKNN(k=4, axis=axis, method="scalar").complete(
            measured, mask
        )
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_sparse_input_matches_scalar(self):
        # Columns with almost no overlap exercise the neutral-weight and
        # fallback paths in both implementations.
        rng = np.random.default_rng(4)
        values = rng.uniform(10.0, 60.0, (12, 9))
        mask = rng.random((12, 9)) < 0.15
        measured = np.where(mask, values, 0.0)
        fast = CorrelationKNN(k=4).complete(measured, mask)
        slow = CorrelationKNN(k=4, method="scalar").complete(measured, mask)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            CorrelationKNN(method="nope")
