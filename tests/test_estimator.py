"""Tests for repro.core.estimator (TrafficEstimator facade)."""

import numpy as np
import pytest

from repro.core.estimator import EstimationOutput, TrafficEstimator
from repro.core.tuning import GeneticTuner
from repro.metrics.errors import estimate_error


class TestEstimate:
    def test_output_structure(self, masked_tcm):
        output = TrafficEstimator(iterations=20, seed=0).estimate(masked_tcm)
        assert isinstance(output, EstimationOutput)
        assert output.estimate.shape == masked_tcm.shape
        assert output.estimate.is_complete
        assert output.measurements is masked_tcm
        assert output.tuning is None

    def test_estimate_preserves_grid_and_ids(self, masked_tcm):
        output = TrafficEstimator(iterations=20, seed=0).estimate(masked_tcm)
        assert output.estimate.grid == masked_tcm.grid
        assert output.estimate.segment_ids == masked_tcm.segment_ids

    def test_speeds_clipped_physical(self, masked_tcm):
        output = TrafficEstimator(iterations=20, seed=0).estimate(masked_tcm)
        values = output.estimate.values
        assert values.min() >= 0.0
        assert values.max() <= 150.0

    def test_estimate_beats_zero_baseline(self, truth_tcm, masked_tcm):
        output = TrafficEstimator(iterations=40, seed=0).estimate(masked_tcm)
        err = estimate_error(
            truth_tcm.values, output.estimate.values, masked_tcm.mask
        )
        zero_err = estimate_error(
            truth_tcm.values, np.zeros(truth_tcm.shape), masked_tcm.mask
        )
        assert err < 0.5 * zero_err

    def test_auto_tune_records_result(self, masked_tcm):
        tuner = GeneticTuner(
            rank_bounds=(1, 4),
            population_size=4,
            generations=2,
            completer_iterations=8,
            seed=0,
        )
        estimator = TrafficEstimator(iterations=15, tuner=tuner, seed=0)
        output = estimator.estimate(masked_tcm)
        assert output.tuning is not None
        assert estimator.last_tuning is output.tuning
        assert output.completion.rank_bound <= 4

    def test_no_clip_option(self, masked_tcm):
        output = TrafficEstimator(
            iterations=10, clip_speeds=False, seed=0
        ).estimate(masked_tcm)
        assert output.estimate.shape == masked_tcm.shape


class TestFromReports:
    def test_full_pipeline(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=30), seed=3)
        reports = sim.run()
        estimator = TrafficEstimator(iterations=25, seed=0)
        output = estimator.estimate_from_reports(
            reports, ground_truth.grid, ground_truth.network.segment_ids
        )
        assert output.measurements.integrity > 0
        assert output.estimate.is_complete

    def test_aggregate_only(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=10), seed=4)
        reports = sim.run()
        estimator = TrafficEstimator(seed=0)
        tcm = estimator.aggregate(
            reports, ground_truth.grid, ground_truth.network.segment_ids
        )
        assert tcm.shape == ground_truth.tcm.shape
