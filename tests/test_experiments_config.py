"""Tests for repro.experiments.config and reporting."""

import numpy as np
import pytest

from repro.experiments.config import (
    AlgorithmSpec,
    default_algorithms,
    make_completer,
)
from repro.experiments.reporting import format_series, format_table


class TestAlgorithmSpec:
    def test_complete_normalizes_cs_result(self, masked_tcm):
        spec = AlgorithmSpec("cs", lambda: make_completer(seed=0, iterations=10))
        out = spec.complete(masked_tcm.values, masked_tcm.mask)
        assert isinstance(out, np.ndarray)
        assert out.shape == masked_tcm.shape

    def test_plain_algorithm_passthrough(self, masked_tcm):
        from repro.baselines import NaiveKNN

        spec = AlgorithmSpec("knn", lambda: NaiveKNN(k=2))
        out = spec.complete(masked_tcm.values, masked_tcm.mask)
        assert out.shape == masked_tcm.shape


class TestDefaultAlgorithms:
    def test_four_with_mssa(self):
        roster = default_algorithms()
        assert [s.name for s in roster] == [
            "compressive",
            "naive-knn",
            "correlation-knn",
            "mssa",
        ]

    def test_three_without_mssa(self):
        roster = default_algorithms(include_mssa=False)
        assert "mssa" not in [s.name for s in roster]

    def test_factories_fresh_instances(self):
        spec = default_algorithms()[1]
        assert spec.factory() is not spec.factory()


class TestMakeCompleter:
    def test_defaults(self):
        c = make_completer()
        assert c.rank == 2
        assert c.clip_min == 0.0

    def test_overrides(self):
        c = make_completer(rank=5, lam=7.0)
        assert c.rank == 5
        assert c.lam == 7.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.34567]], precision=2)
        lines = text.splitlines()
        assert "a" in lines[0] and "bbbb" in lines[0]
        assert "2.35" in lines[2]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_columns(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert "0.3000" in text

    def test_length_checked(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [0.1]})
