"""Tests for repro.experiments.scenario_cache."""

import threading
from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.scenario_cache import (
    GLOBAL_SCENARIO_CACHE,
    ScenarioCache,
    canonical_fields,
    record_scenario_accesses,
    scenario_key,
)


@dataclass
class _Cfg:
    city: str = "shanghai"
    days: float = 1.0
    seed: int = 0


class TestCanonicalFields:
    def test_dataclass_becomes_sorted_dict(self):
        fields = canonical_fields(_Cfg())
        assert fields == {"city": "shanghai", "days": 1.0, "seed": 0}

    def test_numpy_scalars_become_python(self):
        fields = canonical_fields(
            {"a": np.int64(3), "b": np.float64(1.5), "c": np.bool_(True)}
        )
        assert fields == {"a": 3, "b": 1.5, "c": True}
        assert type(fields["a"]) is int

    def test_tuples_and_lists_normalize_identically(self):
        assert canonical_fields({"g": (900.0, 1800.0)}) == canonical_fields(
            {"g": [900.0, 1800.0]}
        )

    def test_unhashable_payload_rejected(self):
        with pytest.raises(TypeError):
            canonical_fields({"x": object()})


class TestScenarioKey:
    def test_stable_across_dict_order(self):
        a = scenario_key({"city": "shanghai", "days": 1.0, "seed": 0})
        b = scenario_key({"seed": 0, "days": 1.0, "city": "shanghai"})
        assert a == b

    def test_changes_with_every_field(self):
        base = {"kind": "city_truth", "city": "shanghai", "days": 1.0, "seed": 0}
        key = scenario_key(base)
        for field, other in [
            ("kind", "city_graph"),
            ("city", "shenzhen"),
            ("days", 2.0),
            ("seed", 1),
        ]:
            assert scenario_key({**base, field: other}) != key

    def test_dataclass_and_dict_agree(self):
        assert scenario_key(_Cfg()) == scenario_key(
            {"city": "shanghai", "days": 1.0, "seed": 0}
        )


class TestScenarioCache:
    def test_hit_returns_same_object(self):
        cache = ScenarioCache()
        built = []

        def builder():
            built.append(1)
            return np.arange(4)

        first = cache.get_or_build({"k": 1}, builder)
        second = cache.get_or_build({"k": 1}, builder)
        assert first is second
        assert built == [1]
        assert cache.stats == (1, 1)

    def test_distinct_keys_build_separately(self):
        cache = ScenarioCache()
        a = cache.get_or_build({"k": 1}, lambda: "a")
        b = cache.get_or_build({"k": 2}, lambda: "b")
        assert (a, b) == ("a", "b")
        assert len(cache) == 2

    def test_clear_forces_rebuild(self):
        cache = ScenarioCache()
        cache.get_or_build({"k": 1}, lambda: "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get_or_build({"k": 1}, lambda: "b") == "b"

    def test_concurrent_requests_build_once(self):
        cache = ScenarioCache()
        built = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            cache.get_or_build({"k": "shared"}, lambda: built.append(1) or "x")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert built == [1]


class TestAccessRecorder:
    def test_nested_recorders_both_see_inner_accesses(self):
        cache = ScenarioCache()
        with record_scenario_accesses() as outer:
            with record_scenario_accesses() as inner:
                cache.get_or_build({"k": "a"}, lambda: "x")
            assert len(inner) == 1
            # Exiting the inner recorder must deregister *it*, not the
            # equal-comparing outer one: accesses made after the inner
            # exit still land on the outer recorder and not the inner.
            cache.get_or_build({"k": "b"}, lambda: "y")
        assert [a["fields"]["k"] for a in outer] == ["a", "b"]
        assert len(inner) == 1

    def test_accesses_record_hits_and_misses_alike(self):
        cache = ScenarioCache()
        cache.get_or_build({"k": "warm"}, lambda: "x")
        with record_scenario_accesses() as accesses:
            cache.get_or_build({"k": "warm"}, lambda: "x")  # memory hit
        assert [a["key"] for a in accesses] == [scenario_key({"k": "warm"})]


class TestCityTruthCaching:
    def test_cached_truth_bit_identical_to_cold_build(self):
        GLOBAL_SCENARIO_CACHE.clear()
        cached = build_city_truth("shanghai", 0.5, seed=0)
        again = build_city_truth("shanghai", 0.5, seed=0)
        assert again is cached  # served from the cache
        cold = build_city_truth("shanghai", 0.5, seed=0, use_cache=False)
        assert cold is not cached
        np.testing.assert_array_equal(cold.tcm.values, cached.tcm.values)

    def test_unknown_city_rejected_before_cache(self):
        with pytest.raises(ValueError, match="city"):
            build_city_truth("gotham", 0.5)
