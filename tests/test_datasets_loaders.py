"""Tests for repro.datasets.loaders."""

import numpy as np
import pytest

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets.loaders import load_tcm, save_tcm


@pytest.fixture()
def tcm():
    values = np.random.default_rng(0).uniform(5, 60, (6, 4))
    mask = np.random.default_rng(1).random((6, 4)) > 0.3
    grid = TimeGrid(start_s=100.0, slot_s=900.0, num_slots=6)
    return TrafficConditionMatrix(values, mask, grid=grid, segment_ids=[3, 1, 4, 7])


class TestRoundTrip:
    def test_values_and_mask(self, tcm, tmp_path):
        path = tmp_path / "tcm.npz"
        save_tcm(tcm, path)
        back = load_tcm(path)
        assert np.allclose(back.values, tcm.values)
        assert np.array_equal(back.mask, tcm.mask)

    def test_grid(self, tcm, tmp_path):
        path = tmp_path / "tcm.npz"
        save_tcm(tcm, path)
        back = load_tcm(path)
        assert back.grid == tcm.grid

    def test_segment_ids(self, tcm, tmp_path):
        path = tmp_path / "tcm.npz"
        save_tcm(tcm, path)
        assert load_tcm(path).segment_ids == [3, 1, 4, 7]

    def test_integrity_preserved(self, tcm, tmp_path):
        path = tmp_path / "tcm.npz"
        save_tcm(tcm, path)
        assert load_tcm(path).integrity == tcm.integrity
