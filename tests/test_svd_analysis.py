"""Tests for repro.core.svd_analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.svd_analysis import (
    effective_rank,
    principal_components,
    rank_r_approximation,
    singular_value_spectrum,
)
from tests.conftest import make_low_rank


class TestSpectrum:
    def test_descending(self):
        spec = singular_value_spectrum(make_low_rank(20, 15, 3))
        s = spec.singular_values
        assert np.all(np.diff(s) <= 1e-9)

    def test_magnitudes_normalized(self):
        spec = singular_value_spectrum(make_low_rank(20, 15, 3))
        assert spec.magnitudes[0] == pytest.approx(1.0)
        assert np.all(spec.magnitudes <= 1.0 + 1e-12)

    def test_energies_sum_to_one(self):
        spec = singular_value_spectrum(np.random.default_rng(0).normal(size=(10, 8)))
        assert spec.energies.sum() == pytest.approx(1.0)

    def test_energy_captured_of_exact_rank(self):
        spec = singular_value_spectrum(make_low_rank(30, 20, 2))
        assert spec.energy_captured(2) == pytest.approx(1.0)

    def test_rank_for_energy(self):
        spec = singular_value_spectrum(make_low_rank(30, 20, 3))
        assert spec.rank_for_energy(0.999) <= 3

    def test_rank_for_energy_rejects_bad_fraction(self):
        spec = singular_value_spectrum(np.eye(3))
        with pytest.raises(ValueError):
            spec.rank_for_energy(1.5)

    def test_knee_sharpness_low_rank(self):
        spec = singular_value_spectrum(make_low_rank(40, 30, 2))
        assert spec.knee_sharpness(5) > 0.99

    def test_zero_matrix(self):
        spec = singular_value_spectrum(np.zeros((4, 4)))
        assert np.all(spec.magnitudes == 0)
        assert np.all(spec.energies == 0)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            singular_value_spectrum(np.array([[1.0, np.nan]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            singular_value_spectrum(np.ones(5))


class TestRankRApproximation:
    def test_exact_recovery_at_true_rank(self):
        x = make_low_rank(25, 18, 2)
        approx = rank_r_approximation(x, 2)
        assert np.allclose(approx, x, atol=1e-8)

    def test_full_rank_request_is_identity(self):
        x = np.random.default_rng(1).normal(size=(6, 5))
        assert np.allclose(rank_r_approximation(x, 10), x, atol=1e-10)

    def test_rank_bound_respected(self):
        x = np.random.default_rng(2).normal(size=(12, 10))
        approx = rank_r_approximation(x, 3)
        assert np.linalg.matrix_rank(approx, tol=1e-8) <= 3

    def test_rejects_rank_zero(self):
        with pytest.raises(ValueError):
            rank_r_approximation(np.eye(3), 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6))
    def test_eckart_young_optimality(self, rank):
        # The truncated SVD must beat a random same-rank factorization.
        gen = np.random.default_rng(rank)
        x = gen.normal(size=(15, 12))
        best = rank_r_approximation(x, rank)
        rival = (
            gen.normal(size=(15, rank)) @ gen.normal(size=(rank, 12))
        )
        assert np.linalg.norm(x - best) <= np.linalg.norm(x - rival) + 1e-9

    def test_error_decreases_with_rank(self):
        x = np.random.default_rng(3).normal(size=(20, 16))
        errors = [
            np.linalg.norm(x - rank_r_approximation(x, r)) for r in (1, 3, 6, 12)
        ]
        assert errors == sorted(errors, reverse=True)


class TestEffectiveRank:
    def test_exact_low_rank(self):
        assert effective_rank(make_low_rank(30, 25, 2), 0.99) <= 2

    def test_noise_increases_rank(self):
        x = make_low_rank(40, 30, 2)
        noisy = x + np.random.default_rng(0).normal(scale=0.5, size=x.shape)
        assert effective_rank(noisy, 0.9999) > effective_rank(x, 0.9999)


class TestPrincipalComponents:
    def test_reconstruction(self):
        x = make_low_rank(10, 8, 3)
        u, s, vt = principal_components(x)
        assert np.allclose((u * s) @ vt, x, atol=1e-9)

    def test_orthonormal_columns(self):
        x = np.random.default_rng(4).normal(size=(12, 9))
        u, _, vt = principal_components(x)
        assert np.allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-9)
        assert np.allclose(vt @ vt.T, np.eye(vt.shape[0]), atol=1e-9)
