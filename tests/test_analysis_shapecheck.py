"""Tests for the static shape & dtype verifier (``repro.analysis.shapecheck``).

Covers the seeded-bug fixture classes from the issue — a transposed
Gram operand, a mask passed as float, a float64 literal leaking into a
``@hot_path`` float32 chain — plus the soundness properties that keep
the verifier quiet on correct code: symbolic dims are universally
quantified, ⊤ always passes, and only provable conflicts report.
"""

import json

import pytest

from repro.analysis.rules import get_rules
from repro.analysis.runner import lint_source, lint_sources
from repro.analysis.sarif import to_sarif
from repro.cli import main

SHAPE_RULES = [
    "shape-mismatch",
    "rank-mismatch",
    "static-contract-violation",
    "dtype-policy-violation",
]


def shape_lint(source, path="fixture.py"):
    return lint_source(source, path=path, rules=get_rules(SHAPE_RULES))


TRANSPOSED_GRAM = '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m r", "m n", "m n:bool")
def warm_solve(left, matrix, mask):
    gram = left @ left.T      # should be left.T @ left: (r, r)
    rhs = left.T @ matrix
    return np.linalg.solve(gram, rhs)
'''

MASK_AS_FLOAT = '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n", "m n:bool")
def masked_mean(values, mask):
    return (values * mask).sum() / mask.sum()


def caller(x):
    mask = np.ones((4, 5))    # float64, not a boolean mask
    return masked_mean(x, mask)
'''

HOT_F64_LITERAL = '''
import numpy as np
from repro.utils.contracts import hot_path, shapes


@hot_path
@shapes("m n:float")
def hot_kernel(x):
    w = x.astype(np.float32)
    bias = np.zeros(x.shape[1])   # float64 leaks into the f32 chain
    return w + bias
'''


class TestTransposedGram:
    def test_reports_shape_mismatch(self):
        report = shape_lint(TRANSPOSED_GRAM)
        assert [f.rule for f in report.findings] == ["shape-mismatch"]
        finding = report.findings[0]
        assert finding.severity == "error"
        assert "solve" in finding.message

    def test_explain_chain_has_at_least_two_frames(self):
        finding = shape_lint(TRANSPOSED_GRAM).findings[0]
        assert len(finding.trace) >= 2
        rendered = finding.render(explain=True)
        # The witness chain carries the inferred shapes end to end.
        assert "@shapes" in rendered
        assert "(m, m)" in rendered and "(r, n)" in rendered

    def test_sarif_code_flow(self):
        report = shape_lint(TRANSPOSED_GRAM)
        log = to_sarif(report, rules=get_rules(SHAPE_RULES))
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["shape-mismatch"]
        flows = results[0]["codeFlows"]
        locations = flows[0]["threadFlows"][0]["locations"]
        assert len(locations) >= 2

    def test_fixed_operand_is_clean(self):
        fixed = TRANSPOSED_GRAM.replace("left @ left.T", "left.T @ left")
        assert shape_lint(fixed).ok


class TestMaskPassedAsFloat:
    def test_reports_contract_violation_at_call_site(self):
        report = shape_lint(MASK_AS_FLOAT)
        assert [f.rule for f in report.findings] == ["static-contract-violation"]
        finding = report.findings[0]
        assert "float64" in finding.message and "bool" in finding.message
        assert finding.line == MASK_AS_FLOAT.splitlines().index(
            "    return masked_mean(x, mask)"
        ) + 1

    def test_trace_spans_producer_and_contract(self):
        finding = shape_lint(MASK_AS_FLOAT).findings[0]
        assert len(finding.trace) >= 2
        notes = " | ".join(frame.note for frame in finding.trace)
        assert "@shapes" in notes          # the contract being violated
        assert "np.ones" in notes          # the offending producer
        assert "passes 'mask'" in notes    # the call site

    def test_boolean_mask_is_clean(self):
        fixed = MASK_AS_FLOAT.replace(
            "np.ones((4, 5))", "np.ones((4, 5), dtype=bool)"
        )
        assert shape_lint(fixed).ok


class TestHotPathFloat64Leak:
    def test_reports_semantic_dtype_policy_violation(self):
        report = shape_lint(HOT_F64_LITERAL)
        rules = [f.rule for f in report.findings]
        assert rules == ["dtype-policy-violation"]
        finding = report.findings[0]
        assert finding.severity == "warning"
        assert len(finding.trace) >= 2

    SAME_LINE = '''
import numpy as np
from repro.utils.contracts import hot_path, shapes


@hot_path
@shapes("m n:float")
def hot_kernel(x):
    w = x.astype(np.float32)
    return w + np.zeros(x.shape[1])
'''

    def test_supersedes_syntactic_dtype_pack_on_same_line(self):
        syntactic_rules = get_rules(
            ["dtype-upcast-in-hot-path", "implicit-float64-literal", "dtype-dropping-op"]
        )
        # Alone, the syntactic heuristic flags the bare allocation.
        heuristic = lint_source(self.SAME_LINE, path="f.py", rules=syntactic_rules)
        assert [f.rule for f in heuristic.findings] == ["dtype-upcast-in-hot-path"]
        # With the whole-program proof on the same line, the heuristic
        # finding is superseded: only the semantic one survives.
        report = lint_source(self.SAME_LINE, path="f.py")
        rules = [f.rule for f in report.findings]
        assert "dtype-policy-violation" in rules
        assert "dtype-upcast-in-hot-path" not in rules
        semantic_lines = {
            f.line for f in report.findings if f.rule == "dtype-policy-violation"
        }
        assert {f.line for f in heuristic.findings} <= semantic_lines

    def test_working_dtype_allocation_is_clean(self):
        fixed = HOT_F64_LITERAL.replace(
            "np.zeros(x.shape[1])", "np.zeros(x.shape[1], dtype=w.dtype)"
        )
        assert shape_lint(fixed).ok


class TestRankAndExactDims:
    def test_rank_mismatch_at_call_site(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n")
def frob(matrix):
    return np.sqrt((matrix * matrix).sum())


@shapes("m n")
def caller(x):
    return frob(x.sum(axis=0))   # (n,) into a 2-D contract
'''
        )
        assert [f.rule for f in report.findings] == ["rank-mismatch"]
        assert "1-D" in report.findings[0].message

    def test_exact_size_violation(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("3 n")
def rgb_mix(channels):
    return channels.sum(axis=0)


def caller():
    return rgb_mix(np.zeros((4, 5)))
'''
        )
        assert [f.rule for f in report.findings] == ["static-contract-violation"]
        assert "size 3" in report.findings[0].message

    def test_symbolic_binding_conflict_across_arguments(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n", "m n:bool")
def masked(values, mask):
    return values * mask


@shapes("m n", "n m:bool")
def caller(values, mask_t):
    return masked(values, mask_t)   # transposed mask
'''
        )
        rules = {f.rule for f in report.findings}
        assert rules == {"static-contract-violation"}


class TestSummaryPropagation:
    def test_return_summaries_flow_through_calls(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n")
def flip(matrix):
    return matrix.T


@shapes("m n", "m k")
def project(matrix, basis):
    return flip(matrix) @ basis   # (n, m) @ (m, k): fine
'''
        )
        assert report.ok

    def test_bad_orientation_caught_through_helper(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n")
def flip(matrix):
    return matrix.T


@shapes("m n", "n k")
def project(matrix, basis):
    return flip(matrix) @ basis   # (n, m) @ (n, k): inner m vs n
'''
        )
        assert [f.rule for f in report.findings] == ["shape-mismatch"]
        notes = " | ".join(f.note for f in report.findings[0].trace)
        assert "flip" in notes  # interprocedural witness

    def test_summary_instantiates_caller_dims(self):
        report = shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("a b")
def gram(x):
    return x.T @ x


@shapes("m n", "m n:bool")
def complete(values, mask):
    g = gram(values)              # (n, n)
    return np.linalg.solve(g, values)   # rows n vs m: conflict
'''
        )
        assert [f.rule for f in report.findings] == ["shape-mismatch"]
        assert "solve" in report.findings[0].message


class TestSoundness:
    """Unknowns and universally-valid code must stay silent."""

    def test_broadcasting_with_ones_and_unknowns(self):
        assert shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n", "n")
def scale(matrix, weights):
    out = matrix * weights              # (m, n) * (n,)
    out = out + matrix.mean(axis=1, keepdims=True)
    col = matrix[:, 0]
    row = matrix[0]
    outer = col[:, None] * row[None, :]
    stacked = np.stack([matrix, out])
    return stacked.sum(axis=0) + outer
'''
        ).ok

    def test_untracked_values_never_report(self):
        assert shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


def opaque(x):
    return x


@shapes("m n")
def launder(matrix):
    other = opaque(matrix)     # unknown shape
    return matrix @ other      # could be (n, anything): no proof
'''
        ).ok

    def test_same_symbol_matmul_is_provably_fine(self):
        assert shape_lint(
            '''
from repro.utils.contracts import shapes


@shapes("m n", "n k")
def product(a, b):
    return a @ b
'''
        ).ok

    def test_conditional_reassignment_joins(self):
        assert shape_lint(
            '''
import numpy as np
from repro.utils.contracts import shapes


@shapes("m n", "m n:bool")
def center(values, mask):
    work = values
    if mask.any():
        work = values - values[mask].mean()
    return work * mask
'''
        ).ok

    def test_verifier_is_clean_on_its_own_package(self):
        # The acceptance bar: zero shape findings over src/repro (the
        # self-lint in test_analysis_lint covers the full registry; this
        # pins the four new rules specifically).
        from pathlib import Path

        from repro.analysis.runner import lint_paths

        src_root = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = lint_paths([src_root], rules=get_rules(SHAPE_RULES))
        assert report.ok, report.render(explain=True)


class TestSuppressionAndBaselinePlumbing:
    def test_inline_suppression_silences_shape_finding(self):
        suppressed = TRANSPOSED_GRAM.replace(
            "    return np.linalg.solve(gram, rhs)",
            "    return np.linalg.solve(gram, rhs)  "
            "# repro-lint: disable=shape-mismatch",
        )
        report = shape_lint(suppressed)
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["shape-mismatch"]

    def test_parse_error_in_reported_file_still_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", path="bad.py", rules=get_rules(SHAPE_RULES))


class TestCliIntegration:
    def test_exit_code_and_explain_output(self, tmp_path, capsys):
        fixture = tmp_path / "gram.py"
        fixture.write_text(TRANSPOSED_GRAM)
        rc = main(["lint", str(fixture), "--rules", ",".join(SHAPE_RULES), "--explain"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "shape-mismatch" in out
        assert "matmul of (m, r) @ (r, m)" in out  # witness chain printed

    def test_sarif_format_includes_new_rules(self, tmp_path, capsys):
        fixture = tmp_path / "gram.py"
        fixture.write_text(TRANSPOSED_GRAM)
        rc = main(["lint", str(fixture), "--rules", ",".join(SHAPE_RULES), "--format", "sarif"])
        out = capsys.readouterr().out
        assert rc == 1
        log = json.loads(out)
        rule_ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert set(SHAPE_RULES) <= rule_ids

    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        fixture = tmp_path / "ok.py"
        fixture.write_text(
            TRANSPOSED_GRAM.replace("left @ left.T", "left.T @ left")
        )
        rc = main(["lint", str(fixture), "--rules", ",".join(SHAPE_RULES)])
        capsys.readouterr()
        assert rc == 0


class TestSingleParse:
    def test_each_source_parsed_exactly_once(self, monkeypatch):
        import repro.analysis.runner as runner_mod

        counts = {}
        real = runner_mod._parse_module

        def counting(path, source):
            counts[path] = counts.get(path, 0) + 1
            return real(path, source)

        monkeypatch.setattr(runner_mod, "_parse_module", counting)
        files = [
            ("a.py", "import numpy as np\n\n\ndef f(x):\n    return np.abs(x)\n"),
            ("b.py", "from a import f\n\n\ndef g(x):\n    return f(x)\n"),
        ]
        report = lint_sources(files)  # full registry: per-file + program + audit
        assert report is not None
        assert counts == {"a.py": 1, "b.py": 1}
