"""Shared fixtures for the test suite.

Everything here is deliberately small: a 4x4 grid city, a two-day
ground truth at 30-minute granularity, and a pre-masked measurement
matrix — enough structure for the algorithms to exercise their logic
while keeping the whole suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.roadnet.generators import grid_city
from repro.traffic.dynamics import TrafficDynamicsConfig
from repro.traffic.groundtruth import GroundTruthTraffic


@pytest.fixture(scope="session")
def small_network():
    """A 4x4 grid city (48 directed segments)."""
    return grid_city(4, 4, block_m=200.0, seed=0, name="test-grid")


@pytest.fixture(scope="session")
def ground_truth(small_network):
    """Two days of ground-truth traffic at 30-minute slots."""
    grid = TimeGrid.over_days(2.0, 1800.0)
    return GroundTruthTraffic.synthesize(small_network, grid, seed=1)


@pytest.fixture(scope="session")
def truth_tcm(ground_truth):
    """The complete ground-truth TCM (96 x 48)."""
    return ground_truth.tcm


@pytest.fixture()
def masked_tcm(truth_tcm):
    """A 30 %-integrity measurement TCM derived from the ground truth."""
    mask = random_integrity_mask(truth_tcm.shape, 0.3, seed=2)
    return truth_tcm.with_mask(mask)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)


def make_low_rank(m: int, n: int, rank: int, seed: int = 0, scale: float = 10.0):
    """An exactly rank-``rank`` positive-ish matrix for solver tests."""
    gen = np.random.default_rng(seed)
    left = gen.uniform(0.5, 1.5, size=(m, rank)) * scale / rank
    right = gen.uniform(0.5, 1.5, size=(n, rank))
    return left @ right.T


@pytest.fixture()
def low_rank_matrix():
    """A 40x30 exactly-rank-2 matrix."""
    return make_low_rank(40, 30, rank=2, seed=7)
