"""Tests for repro.core.diagnostics."""

import numpy as np
import pytest

from repro.core.completion import CompletionResult, CompressiveSensingCompleter
from repro.core.diagnostics import (
    convergence_diagnostics,
    coverage_error_profile,
    fit_diagnostics,
)
from repro.core.tcm import TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask


@pytest.fixture()
def completed(truth_tcm, masked_tcm):
    completer = CompressiveSensingCompleter(rank=2, lam=10.0, iterations=40, seed=0)
    return completer.complete(masked_tcm)


class TestConvergence:
    def test_converged_run(self, completed):
        diag = convergence_diagnostics(completed)
        assert diag.converged
        assert diag.best_objective <= diag.final_objective * (1 + 1e-3)
        assert diag.iterations_run == completed.iterations_run
        assert 0.0 <= diag.relative_drop <= 1.0

    def test_unconverged_detected(self):
        result = CompletionResult(
            estimate=np.zeros((2, 2)),
            left=np.zeros((2, 1)),
            right=np.zeros((2, 1)),
            objective=1.0,
            objective_history=[5.0, 1.0, 4.0],  # bounced after the best
            iterations_run=3,
        )
        assert not convergence_diagnostics(result).converged

    def test_empty_history_rejected(self):
        result = CompletionResult(
            estimate=np.zeros((2, 2)),
            left=np.zeros((2, 1)),
            right=np.zeros((2, 1)),
            objective=np.inf,
            objective_history=[],
            iterations_run=0,
        )
        with pytest.raises(ValueError):
            convergence_diagnostics(result)


class TestFitDiagnostics:
    def test_overall_fields(self, masked_tcm, completed):
        diag = fit_diagnostics(masked_tcm, completed.estimate)
        assert np.isfinite(diag.observed_nmae)
        assert diag.observed_nmae < 0.5
        assert np.isfinite(diag.residual_std_kmh)

    def test_per_segment_complete(self, masked_tcm, completed):
        diag = fit_diagnostics(masked_tcm, completed.estimate)
        assert set(diag.per_segment_nmae) == set(masked_tcm.segment_ids)

    def test_worst_sorted(self, masked_tcm, completed):
        diag = fit_diagnostics(masked_tcm, completed.estimate, top_k=5)
        errs = [diag.per_segment_nmae[s] for s in diag.worst_segments]
        assert errs == sorted(errs, reverse=True)
        assert len(diag.worst_segments) <= 5

    def test_unobserved_segment_nan(self):
        values = np.ones((4, 2)) * 30
        mask = np.zeros((4, 2), dtype=bool)
        mask[:, 0] = True
        tcm = TrafficConditionMatrix(values, mask, segment_ids=[7, 8])
        diag = fit_diagnostics(tcm, np.ones((4, 2)) * 30)
        assert np.isnan(diag.per_segment_nmae[8])
        assert diag.per_segment_nmae[7] == 0.0

    def test_shape_checked(self, masked_tcm):
        with pytest.raises(ValueError):
            fit_diagnostics(masked_tcm, np.zeros((2, 2)))

    def test_top_k_checked(self, masked_tcm, completed):
        with pytest.raises(ValueError):
            fit_diagnostics(masked_tcm, completed.estimate, top_k=0)


class TestCoverageErrorProfile:
    def test_profile_rows(self, truth_tcm, masked_tcm, completed):
        rows = coverage_error_profile(
            truth_tcm.values, completed.estimate, masked_tcm.mask
        )
        assert len(rows) == 4
        total_segments = sum(r[3] for r in rows)
        assert total_segments == truth_tcm.num_segments

    def test_bins_validated(self, truth_tcm, masked_tcm, completed):
        with pytest.raises(ValueError):
            coverage_error_profile(
                truth_tcm.values, completed.estimate, masked_tcm.mask, bins=(0.5,)
            )
        with pytest.raises(ValueError):
            coverage_error_profile(
                truth_tcm.values,
                completed.estimate,
                masked_tcm.mask,
                bins=(1.0, 0.0),
            )

    def test_empty_bin_nan(self, truth_tcm, masked_tcm, completed):
        rows = coverage_error_profile(
            truth_tcm.values,
            completed.estimate,
            masked_tcm.mask,
            bins=(0.99, 1.0),  # 30%-integrity mask: no fully covered columns
        )
        assert rows[0][3] == 0
        assert np.isnan(rows[0][2])

    def test_better_coverage_not_worse(self, truth_tcm):
        """Structured coverage: well-observed segments estimate better."""
        from repro.datasets.masks import structured_missing_mask

        mask = structured_missing_mask(truth_tcm.shape, 0.3, seed=3)
        masked = truth_tcm.with_mask(mask)
        completer = CompressiveSensingCompleter(rank=2, lam=10.0, iterations=60, seed=0)
        estimate = completer.complete(masked).estimate
        rows = coverage_error_profile(
            truth_tcm.values, estimate, mask, bins=(0.0, 0.15, 1.0)
        )
        low_cov, high_cov = rows[0], rows[1]
        if low_cov[3] > 0 and high_cov[3] > 0:
            assert high_cov[2] <= low_cov[2] * 1.2
