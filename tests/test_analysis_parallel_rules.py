"""Tests for repro.analysis.parallel_rules (positive + suppressed each)."""

import textwrap

from repro.analysis import lint_source


def rules_fired(source, path="fixture.py"):
    report = lint_source(textwrap.dedent(source), path=path)
    return sorted({f.rule for f in report.findings})


def lint(source, path="fixture.py"):
    return lint_source(textwrap.dedent(source), path=path)


def suppress(source, needle, rule):
    """Insert a disable-next-line comment above the first ``needle`` line."""
    lines = textwrap.dedent(source).splitlines()
    out = []
    done = False
    for line in lines:
        if not done and needle in line:
            indent = line[: len(line) - len(line.lstrip())]
            out.append(f"{indent}# repro-lint: disable-next-line={rule}")
            done = True
        out.append(line)
    assert done, f"needle {needle!r} not found"
    return "\n".join(out) + "\n"


class TestWorkerSharedState:
    POSITIVE = """
        from repro.utils.parallel import parallel_map

        TOTALS = {}

        def work(item):
            TOTALS[item] = item * 2
            return item

        def run(items):
            return parallel_map(work, items, max_workers=4)
    """

    def test_fires_on_global_mutation(self):
        assert "worker-shared-state" in rules_fired(self.POSITIVE)

    def test_fires_on_closure_mutation(self):
        src = """
            from repro.utils.parallel import parallel_map

            def run(items):
                acc = []

                def work(item):
                    acc.append(item)

                return parallel_map(work, items, max_workers=4)
        """
        assert "worker-shared-state" in rules_fired(src)

    def test_fires_on_mutable_default(self):
        src = """
            from repro.utils.parallel import parallel_map

            def work(item, cache={}):
                cache[item] = True
                return item

            def run(items):
                return parallel_map(work, items, max_workers=4)
        """
        assert "worker-shared-state" in rules_fired(src)

    def test_clean_worker_passes(self):
        src = """
            from repro.utils.parallel import parallel_map

            def work(item):
                local = []
                local.append(item)
                return local

            def run(items):
                return parallel_map(work, items, max_workers=4)
        """
        assert "worker-shared-state" not in rules_fired(src)

    def test_suppression(self):
        src = suppress(self.POSITIVE, "TOTALS[item]", "worker-shared-state")
        report = lint_source(src, path="fixture.py")
        assert "worker-shared-state" not in {f.rule for f in report.findings}
        assert "worker-shared-state" in {f.rule for f in report.suppressed}


class TestForkUnsafeRng:
    POSITIVE = """
        from repro.utils.parallel import parallel_map
        from repro.utils.rng import ensure_rng

        def run(items):
            rng = ensure_rng(0)

            def work(item):
                return rng.random() + item

            return parallel_map(work, items, backend="process", max_workers=4)
    """

    def test_fires_on_captured_rng_process_pool(self):
        assert "fork-unsafe-rng" in rules_fired(self.POSITIVE)

    def test_thread_pool_capture_is_fine(self):
        src = self.POSITIVE.replace('backend="process", ', "")
        assert "fork-unsafe-rng" not in rules_fired(src)

    def test_rng_created_inside_worker_is_fine(self):
        src = """
            from repro.utils.parallel import parallel_map
            from repro.utils.rng import ensure_rng

            def run(items):
                def work(item):
                    rng = ensure_rng(item)
                    return rng.random()

                return parallel_map(
                    work, items, backend="process", max_workers=4
                )
        """
        assert "fork-unsafe-rng" not in rules_fired(src)

    def test_suppression(self):
        src = suppress(self.POSITIVE, "return rng.random()", "fork-unsafe-rng")
        report = lint_source(src, path="fixture.py")
        assert "fork-unsafe-rng" not in {f.rule for f in report.findings}
        assert "fork-unsafe-rng" in {f.rule for f in report.suppressed}


class TestUnorderedIteration:
    POSITIVE = """
        def total(values):
            seen = set(values)
            out = 0.0
            for v in seen:
                out += v
            return out
    """

    def test_fires_on_float_accumulation_over_set(self):
        assert "unordered-iteration" in rules_fired(self.POSITIVE)

    def test_fires_on_sum_over_set(self):
        assert "unordered-iteration" in rules_fired(
            "def f(values):\n    return sum(v for v in set(values))\n"
        )

    def test_fires_on_listdir_append(self):
        src = """
            import os

            def collect(path):
                out = []
                for name in os.listdir(path):
                    out.append(name)
                return out
        """
        assert "unordered-iteration" in rules_fired(src)

    def test_sorted_source_is_fine(self):
        src = """
            def total(values):
                seen = set(values)
                out = 0.0
                for v in sorted(seen):
                    out += v
                return out
        """
        assert "unordered-iteration" not in rules_fired(src)

    def test_order_insensitive_sink_is_fine(self):
        assert "unordered-iteration" not in rules_fired(
            "def f(values):\n    return max(v for v in set(values))\n"
        )

    def test_suppression(self):
        src = suppress(self.POSITIVE, "for v in seen:", "unordered-iteration")
        report = lint_source(src, path="fixture.py")
        assert "unordered-iteration" not in {f.rule for f in report.findings}
        assert "unordered-iteration" in {f.rule for f in report.suppressed}


class TestUnlockedCacheMutation:
    POSITIVE = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._store = {}

            def put(self, key, value):
                self._store[key] = value

            def get(self, key):
                with self._lock:
                    return self._store.get(key)
    """

    def test_fires_on_unlocked_write(self):
        assert "unlocked-cache-mutation" in rules_fired(self.POSITIVE)

    def test_locked_write_is_fine(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._store = {}

                def put(self, key, value):
                    with self._lock:
                        self._store[key] = value
        """
        assert "unlocked-cache-mutation" not in rules_fired(src)

    def test_lockless_class_is_ignored(self):
        src = """
            class Memo:
                def __init__(self):
                    self._store = {}

                def put(self, key, value):
                    self._store[key] = value
        """
        assert "unlocked-cache-mutation" not in rules_fired(src)

    def test_init_writes_are_exempt(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._store = {}
                    self._store["warm"] = 1
        """
        assert "unlocked-cache-mutation" not in rules_fired(src)

    def test_suppression(self):
        src = suppress(
            self.POSITIVE, "self._store[key] = value", "unlocked-cache-mutation"
        )
        report = lint_source(src, path="fixture.py")
        fired = {f.rule for f in report.findings}
        assert "unlocked-cache-mutation" not in fired
        assert "unlocked-cache-mutation" in {f.rule for f in report.suppressed}


class TestSubmitResultOrdering:
    POSITIVE = """
        from concurrent.futures import ThreadPoolExecutor, as_completed

        def run(fn, items):
            out = []
            with ThreadPoolExecutor() as pool:
                futures = [pool.submit(fn, item) for item in items]
                for future in as_completed(futures):
                    out.append(future.result())
            return out
    """

    def test_fires_on_positional_aggregation(self):
        assert "submit-result-ordering" in rules_fired(self.POSITIVE)

    def test_fires_on_comprehension(self):
        src = """
            from concurrent.futures import as_completed

            def gather(futures):
                return [f.result() for f in as_completed(futures)]
        """
        assert "submit-result-ordering" in rules_fired(src)

    def test_keyed_aggregation_is_fine(self):
        src = """
            from concurrent.futures import ThreadPoolExecutor, as_completed

            def run(fn, items):
                out = {}
                with ThreadPoolExecutor() as pool:
                    futures = {
                        pool.submit(fn, item): item for item in items
                    }
                    for future in as_completed(futures):
                        out[futures[future]] = future.result()
                return out
        """
        assert "submit-result-ordering" not in rules_fired(src)

    def test_suppression(self):
        src = suppress(
            self.POSITIVE,
            "for future in as_completed(futures):",
            "submit-result-ordering",
        )
        report = lint_source(src, path="fixture.py")
        assert "submit-result-ordering" not in {f.rule for f in report.findings}
        assert "submit-result-ordering" in {f.rule for f in report.suppressed}


class TestSeverities:
    def test_severity_levels(self):
        from repro.analysis import REGISTRY

        assert REGISTRY["worker-shared-state"].severity == "error"
        assert REGISTRY["fork-unsafe-rng"].severity == "error"
        assert REGISTRY["unordered-iteration"].severity == "warning"
        assert REGISTRY["unlocked-cache-mutation"].severity == "error"
        assert REGISTRY["submit-result-ordering"].severity == "error"

    def test_findings_carry_severity_and_snippet(self):
        report = lint(TestWorkerSharedState.POSITIVE)
        finding = next(
            f for f in report.findings if f.rule == "worker-shared-state"
        )
        assert finding.severity == "error"
        assert "TOTALS" in finding.snippet
        assert ": error: [worker-shared-state]" in finding.render()


class TestProjectSourceIsClean:
    def test_src_tree_has_no_active_findings(self):
        from pathlib import Path

        from repro.analysis import lint_paths

        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        report = lint_paths([str(src)])
        assert report.findings == []
