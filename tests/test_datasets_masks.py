"""Tests for repro.datasets.masks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.masks import random_integrity_mask, structured_missing_mask


class TestRandomIntegrityMask:
    def test_exact_count(self):
        mask = random_integrity_mask((10, 10), 0.37, seed=0)
        assert mask.sum() == 37

    def test_bounds(self):
        assert random_integrity_mask((5, 5), 0.0, seed=0).sum() == 0
        assert random_integrity_mask((5, 5), 1.0, seed=0).sum() == 25

    def test_deterministic(self):
        a = random_integrity_mask((8, 8), 0.5, seed=3)
        b = random_integrity_mask((8, 8), 0.5, seed=3)
        assert np.array_equal(a, b)

    def test_base_mask_respected(self):
        base = np.zeros((6, 6), dtype=bool)
        base[:3] = True
        mask = random_integrity_mask((6, 6), 0.4, seed=1, base_mask=base)
        assert not np.any(mask & ~base)

    def test_base_mask_caps_count(self):
        base = np.zeros((4, 4), dtype=bool)
        base[0, 0] = True
        mask = random_integrity_mask((4, 4), 0.9, seed=2, base_mask=base)
        assert mask.sum() == 1

    def test_base_mask_shape_checked(self):
        with pytest.raises(ValueError):
            random_integrity_mask((4, 4), 0.5, base_mask=np.ones((2, 2), bool))

    def test_rejects_bad_integrity(self):
        with pytest.raises(ValueError):
            random_integrity_mask((4, 4), 1.5)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.0, 1.0), st.integers(2, 20), st.integers(2, 20))
    def test_integrity_matches_request(self, integrity, m, n):
        mask = random_integrity_mask((m, n), integrity, seed=0)
        assert mask.mean() == pytest.approx(integrity, abs=1.0 / (m * n))


class TestStructuredMissingMask:
    def test_target_integrity(self):
        mask = structured_missing_mask((20, 30), 0.25, seed=0)
        assert mask.mean() == pytest.approx(0.25, abs=0.01)

    def test_zero_integrity(self):
        assert structured_missing_mask((5, 5), 0.0, seed=0).sum() == 0

    def test_heavier_column_skew_than_random(self):
        random_mask = random_integrity_mask((100, 60), 0.2, seed=1)
        structured = structured_missing_mask(
            (100, 60), 0.2, seed=1, column_weight_spread=2.5
        )
        assert structured.mean(axis=0).std() > random_mask.mean(axis=0).std()

    def test_rejects_negative_spread(self):
        with pytest.raises(ValueError):
            structured_missing_mask((5, 5), 0.5, column_weight_spread=-1)

    def test_deterministic(self):
        a = structured_missing_mask((10, 10), 0.3, seed=9)
        b = structured_missing_mask((10, 10), 0.3, seed=9)
        assert np.array_equal(a, b)
