"""Tests for repro.experiments.seed_sensitivity."""

import numpy as np
import pytest

from repro.experiments.seed_sensitivity import (
    SeedSensitivityConfig,
    run_seed_sensitivity,
)


class TestConfig:
    def test_needs_multiple_seeds(self):
        with pytest.raises(ValueError):
            SeedSensitivityConfig(num_seeds=1)

    def test_integrity_checked(self):
        with pytest.raises(ValueError):
            SeedSensitivityConfig(integrity=1.0)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_seed_sensitivity(
            SeedSensitivityConfig(
                days=1.0, num_seeds=3, include_mssa=False, base_seed=0
            )
        )

    def test_samples_per_algorithm(self, result):
        for samples in result.errors.values():
            assert len(samples) == 3
            assert all(np.isfinite(s) for s in samples)

    def test_cs_wins_majority(self, result):
        assert result.cs_win_fraction() >= 2 / 3

    def test_cs_mean_best(self, result):
        means = {name: result.mean(name) for name in result.errors}
        assert means["compressive"] == min(means.values())

    def test_worlds_differ(self, result):
        # Different seeds must give genuinely different errors.
        samples = result.errors["compressive"]
        assert len(set(round(s, 6) for s in samples)) > 1

    def test_renders(self, result):
        text = result.render()
        assert "Seed sensitivity" in text
        assert "CS wins" in text
