"""Tests for repro.metrics.errors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.errors import estimate_error, nmae, relative_errors, rmse

matrix_values = arrays(
    dtype=np.float64,
    shape=(4, 5),
    elements=st.floats(0.1, 100.0, allow_nan=False),
)


class TestNmae:
    def test_perfect_estimate_zero(self):
        x = np.random.default_rng(0).uniform(1, 10, (3, 3))
        assert nmae(x, x) == 0.0

    def test_definition(self):
        x = np.array([[2.0, 4.0]])
        x_hat = np.array([[1.0, 6.0]])
        # (|2-1| + |4-6|) / (2 + 4) = 3/6
        assert nmae(x, x_hat) == pytest.approx(0.5)

    def test_eval_mask_restricts(self):
        x = np.array([[2.0, 4.0]])
        x_hat = np.array([[1.0, 4.0]])
        mask = np.array([[False, True]])
        assert nmae(x, x_hat, mask) == 0.0

    def test_empty_mask_nan(self):
        x = np.ones((2, 2))
        assert np.isnan(nmae(x, x, np.zeros((2, 2), dtype=bool)))

    def test_zero_denominator(self):
        x = np.zeros((2, 2))
        assert nmae(x, np.ones((2, 2))) == float("inf")
        assert nmae(x, x) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nmae(np.ones((2, 2)), np.ones((3, 2)))

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            nmae(np.ones((2, 2)), np.ones((2, 2)), np.ones((3, 3), dtype=bool))

    @settings(max_examples=30, deadline=None)
    @given(matrix_values, matrix_values)
    def test_nonnegative(self, x, x_hat):
        assert nmae(x, x_hat) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(matrix_values)
    def test_scale_invariant(self, x):
        x_hat = x * 1.1
        assert nmae(3.0 * x, 3.0 * x_hat) == pytest.approx(nmae(x, x_hat))


class TestEstimateError:
    def test_scores_only_missing(self):
        x = np.array([[10.0, 20.0]])
        x_hat = np.array([[0.0, 20.0]])  # wrong on observed cell only
        observed = np.array([[True, False]])
        assert estimate_error(x, x_hat, observed) == 0.0

    def test_truth_availability_respected(self):
        x = np.array([[10.0, 20.0, 30.0]])
        x_hat = np.array([[10.0, 0.0, 30.0]])
        observed = np.array([[True, False, False]])
        available = np.array([[True, False, True]])
        # Cell 1 is missing from truth too; only cell 2 is scored.
        assert estimate_error(x, x_hat, observed, available) == 0.0


class TestRelativeErrors:
    def test_basic(self):
        x = np.array([[10.0, 20.0]])
        x_hat = np.array([[11.0, 10.0]])
        errs = relative_errors(x, x_hat)
        assert sorted(errs) == pytest.approx([0.1, 0.5])

    def test_skips_tiny_truth(self):
        x = np.array([[1e-12, 10.0]])
        x_hat = np.array([[5.0, 10.0]])
        errs = relative_errors(x, x_hat)
        assert errs.size == 1

    def test_mask_applied(self):
        x = np.full((2, 2), 10.0)
        x_hat = np.full((2, 2), 12.0)
        mask = np.array([[True, False], [False, False]])
        assert relative_errors(x, x_hat, mask).size == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_errors(np.ones((2, 2)), np.ones((2, 3)))


class TestRmse:
    def test_basic(self):
        x = np.array([[0.0, 0.0]])
        x_hat = np.array([[3.0, 4.0]])
        assert rmse(x, x_hat) == pytest.approx(np.sqrt(12.5))

    def test_perfect(self):
        x = np.random.default_rng(1).normal(size=(3, 3))
        assert rmse(x, x) == 0.0

    def test_empty_mask_nan(self):
        assert np.isnan(rmse(np.ones((2, 2)), np.ones((2, 2)), np.zeros((2, 2), bool)))

    @settings(max_examples=30, deadline=None)
    @given(matrix_values, matrix_values)
    def test_rmse_at_least_mean_error(self, x, x_hat):
        # RMSE >= MAE always.
        mae = np.abs(x - x_hat).mean()
        assert rmse(x, x_hat) >= mae - 1e-9
