"""Tests for repro.obs.manifest, .schema, and .summarize."""

import json

import numpy as np
import pytest

from repro.obs import manifest, metrics, schema, summarize, trace


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    trace.reset()
    metrics.reset()
    yield
    trace.disable()
    trace.reset()
    metrics.reset()


def _traced_run():
    """Populate the live collector/registry with a small realistic trace."""
    trace.enable()
    with trace.span("run_all", profile="smoke"):
        with trace.span("job.alpha"):
            metrics.inc("als.completions")
            metrics.observe("als.objective", 1.25)
        with trace.span("job.beta"):
            pass
    metrics.set_gauge("pool.workers", 2)


class TestConfigHash:
    def test_stable_across_key_order(self):
        a = manifest.config_hash({"b": 2, "a": 1})
        b = manifest.config_hash({"a": 1, "b": 2})
        assert a == b and len(a) == 64

    def test_differs_on_value_change(self):
        assert manifest.config_hash({"a": 1}) != manifest.config_hash({"a": 2})

    def test_canonicalizes_tuples_and_numpy_scalars(self):
        a = manifest.config_hash({"xs": (1, 2), "n": np.int64(3)})
        b = manifest.config_hash({"xs": [1, 2], "n": 3})
        assert a == b

    def test_rejects_unrepresentable(self):
        with pytest.raises(TypeError, match="canonicalize"):
            manifest.config_hash({"fn": object()})


class TestBuildManifest:
    def test_validates_against_committed_schema(self):
        _traced_run()
        payload = manifest.build_manifest(
            "run-all", config={"profile": "smoke"}, seed=0,
            jobs=manifest.jobs_from_spans(trace.collector().snapshot()),
        )
        schema.validate_manifest(payload)  # must not raise
        assert payload["schema"] == manifest.SCHEMA_VERSION
        assert payload["config_sha256"] == manifest.config_hash(
            {"profile": "smoke"}
        )
        assert payload["versions"]["python"]
        assert "numpy" in payload["versions"]

    def test_json_roundtrip(self, tmp_path):
        _traced_run()
        payload = manifest.build_manifest("bench", config={"smoke": True})
        path = manifest.write_manifest(payload, tmp_path / "m.json")
        loaded = manifest.load_manifest(path)
        schema.validate_manifest(loaded)
        assert loaded["kind"] == "bench"
        assert len(loaded["spans"]) == len(payload["spans"])
        # Spans survive the trip intact.
        assert summarize.spans_from_manifest(loaded) == trace.collector().snapshot()

    def test_defaults_to_live_collector_and_registry(self):
        _traced_run()
        payload = manifest.build_manifest("run-all")
        assert len(payload["spans"]) == 3
        assert payload["metrics"]["counters"]["als.completions"] == 1.0
        assert payload["metrics"]["gauges"]["pool.workers"] == 2.0

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            manifest.build_manifest("")

    def test_load_rejects_non_manifest_json(self, tmp_path):
        path = tmp_path / "not.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a run manifest"):
            manifest.load_manifest(path)

    def test_explicit_jobs_normalized(self):
        payload = manifest.build_manifest(
            "verify-determinism",
            jobs=[{"name": "completion", "status": "ok", "wall_s": 1.5,
                   "detail": "bit-identical"}],
        )
        schema.validate_manifest(payload)
        (job,) = payload["jobs"]
        assert job == {"name": "completion", "status": "ok", "wall_s": 1.5,
                       "detail": "bit-identical"}


class TestJobsFromSpans:
    def test_extracts_and_strips_prefix(self):
        _traced_run()
        jobs = manifest.jobs_from_spans(trace.collector().snapshot())
        assert [j["name"] for j in jobs] == ["alpha", "beta"]
        assert all(j["status"] == "ok" for j in jobs)
        assert all(j["wall_s"] >= 0 for j in jobs)

    def test_error_attr_becomes_error_status(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("job.bad"):
                raise RuntimeError("boom")
        (job,) = manifest.jobs_from_spans(trace.collector().snapshot())
        assert job["status"] == "error"
        assert job["detail"] == "RuntimeError"


class TestSchemaValidator:
    def test_missing_required_key_reported(self):
        payload = manifest.build_manifest("run-all")
        del payload["config_sha256"]
        with pytest.raises(ValueError, match="config_sha256"):
            schema.validate_manifest(payload)

    def test_wrong_type_reported_with_path(self):
        payload = manifest.build_manifest("run-all")
        payload["spans"] = "nope"
        with pytest.raises(ValueError, match=r"\$\.spans"):
            schema.validate_manifest(payload)

    def test_schema_uses_only_supported_keywords(self):
        # The local validator implements a deliberate draft-07 subset;
        # the committed schema must not quietly grow beyond it.
        supported = {
            "$schema", "$id", "title", "description", "type", "required",
            "properties", "items", "enum", "minimum",
            "additionalProperties",
        }

        def walk(node):
            if isinstance(node, dict):
                for key, value in node.items():
                    yield key
                    yield from walk(value)
            elif isinstance(node, list):
                for value in node:
                    yield from walk(value)

        loaded = schema.load_schema()
        keywords = {
            k for k in walk(loaded)
            if k in  # only keyword positions matter, not property names
            {"$ref", "oneOf", "anyOf", "allOf", "patternProperties",
             "format", "pattern", "maximum", "exclusiveMinimum",
             "minLength", "maxLength", "minItems", "maxItems",
             "uniqueItems", "const", "dependencies", "if", "then", "else"}
        }
        assert not keywords, f"schema uses unsupported keywords: {keywords}"
        assert "type" in loaded and loaded["type"] == "object"
        assert supported  # silence unused warning, documents the contract


class TestSummarize:
    def test_round_trip_render(self):
        _traced_run()
        payload = manifest.build_manifest(
            "run-all", config={"profile": "smoke"}, seed=7,
            jobs=manifest.jobs_from_spans(trace.collector().snapshot()),
        )
        text = summarize.summarize_manifest(payload, top=5)
        assert "kind=run-all" in text
        assert "seed=7" in text
        assert "jobs: 2 recorded, all ok" in text
        assert "per-phase rollup" in text
        assert "run_all" in text
        assert "counters:" in text
        assert "als.completions" in text

    def test_no_spans_fallback(self):
        payload = manifest.build_manifest("bench")
        text = summarize.summarize_manifest(payload)
        assert "no spans recorded" in text

    def test_rejects_bad_top(self):
        payload = manifest.build_manifest("bench")
        with pytest.raises(ValueError, match="top"):
            summarize.summarize_manifest(payload, top=0)

    def test_per_phase_rollup_descends_into_sole_root(self):
        # One root wrapping everything would be a useless 100% row; the
        # rollup breaks out the root's direct children instead.
        _traced_run()
        rows = summarize.per_phase_rollup(trace.collector().snapshot())
        assert {name for name, _, _ in rows} == {"job.alpha", "job.beta"}
        assert all(count == 1 for _, count, _ in rows)

    def test_per_phase_rollup_multi_root_counts_descendants_once(self):
        trace.enable()
        with trace.span("phase.a"):
            with trace.span("phase.a.child"):
                pass
        with trace.span("phase.b"):
            pass
        rows = summarize.per_phase_rollup(trace.collector().snapshot())
        by_name = {name: count for name, count, _ in rows}
        assert by_name == {"phase.a": 2, "phase.b": 1}

    def test_render_spans_jsonl(self):
        _traced_run()
        spans = trace.collector().snapshot()
        lines = summarize.render_spans_jsonl(spans).splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"run_all", "job.alpha", "job.beta"}
