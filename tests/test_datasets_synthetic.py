"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    ProbeDataset,
    SyntheticDatasetConfig,
    build_probe_dataset,
)
from repro.roadnet.generators import grid_city


@pytest.fixture(scope="module")
def dataset():
    network = grid_city(4, 4, seed=0)
    config = SyntheticDatasetConfig(days=0.5, num_vehicles=30, slot_s=1800.0)
    return build_probe_dataset(network, config, seed=0)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0.0},
            {"num_vehicles": 0},
            {"slot_s": 1000.0},
            {"slot_s": 450.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(**kwargs)


class TestBuildProbeDataset:
    def test_artifacts_consistent(self, dataset):
        assert dataset.truth_tcm.shape == dataset.measurements.shape
        assert dataset.truth_tcm.segment_ids == dataset.measurements.segment_ids
        assert dataset.ground_truth.grid.slot_s == 1800.0
        assert dataset.fine_truth.grid.slot_s == 900.0

    def test_ground_truth_complete(self, dataset):
        assert dataset.truth_tcm.is_complete

    def test_measurements_partial(self, dataset):
        assert 0.0 < dataset.measurements.integrity < 1.0

    def test_reports_nonempty(self, dataset):
        assert len(dataset.reports) > 0

    def test_deterministic(self):
        network = grid_city(3, 3, seed=1)
        config = SyntheticDatasetConfig(days=0.25, num_vehicles=10, slot_s=900.0)
        a = build_probe_dataset(network, config, seed=5)
        b = build_probe_dataset(network, config, seed=5)
        assert np.allclose(a.truth_tcm.values, b.truth_tcm.values)
        assert np.array_equal(a.measurements.mask, b.measurements.mask)

    def test_at_granularity(self, dataset):
        coarse = dataset.at_granularity(3600.0)
        assert coarse.ground_truth.grid.slot_s == 3600.0
        assert coarse.measurements.grid.slot_s == 3600.0
        assert coarse.reports is dataset.reports
        # Coarser slots can only improve integrity.
        assert coarse.measurements.integrity >= dataset.measurements.integrity

    def test_measured_cells_track_truth(self, dataset):
        mask = dataset.measurements.mask
        truth = dataset.truth_tcm.values[mask]
        measured = dataset.measurements.values[mask]
        rel = np.abs(measured - truth) / truth
        assert np.median(rel) < 0.25
