"""Fast tier-1 coverage of the perf-bench harness.

The full smoke profile (all solvers, baselines, GA tuning) lives in
``benchmarks/perf/test_bench_smoke.py`` and runs in the CI perf job;
here we keep the harness importable and correct on a tiny workload so
a refactor cannot silently break ``repro bench``.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.perf_bench import (
    EQUIVALENCE_TOL,
    MIN_COMPARE_WALL_S,
    REGRESSION_THRESHOLD,
    BenchCase,
    compare_payloads,
    compare_with_baseline,
    run_perf_bench,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_perf_bench(
        cases=[BenchCase(30, 12, 0.5)],
        smoke=True,
        iterations=4,
        include_tune=False,
        include_baselines=False,
        include_ingestion=False,
        include_sharded=False,
        include_serving=False,
    )


def test_tiny_case_checks_equivalence(tiny_report):
    assert tiny_report.equivalence_max_abs_diff["30x12@0.50"] <= EQUIVALENCE_TOL
    assert "30x12@0.50" in tiny_report.speedups
    # Solver suite plus the workspace backend at both dtypes.
    assert {r.algorithm for r in tiny_report.records} == {
        "cs-batched",
        "cs-grouped",
        "cs-loop",
        "cs-f64",
        "cs-f32",
    }
    assert {r.backend for r in tiny_report.records} == {"numpy", "numpy-ws"}


def test_backend_suite_equivalence_and_speedup_keys(tiny_report):
    case = "30x12@0.50"
    assert tiny_report.equivalence_max_abs_diff[f"{case}/numpy-ws-f64"] <= (
        EQUIVALENCE_TOL
    )
    assert f"{case}/numpy-ws-f32" in tiny_report.equivalence_max_abs_diff
    assert tiny_report.speedups[f"{case}/numpy-ws-f64"] > 0.0
    assert tiny_report.speedups[f"{case}/numpy-ws-f32"] > 0.0


def test_json_payload_schema(tiny_report, tmp_path):
    out = tiny_report.write_json(tmp_path / "bench.json")
    payload = json.loads(out.read_text())
    assert payload["schema"] == 5
    assert payload["equivalence_tol"] == EQUIVALENCE_TOL
    assert len(payload["records"]) == 5
    assert all("backend" in rec for rec in payload["records"])


def test_ingestion_suite_records_and_equivalence():
    report = run_perf_bench(
        cases=[],
        smoke=True,
        include_tune=False,
        include_baselines=False,
        ingestion_reports=2_000,
    )
    algorithms = {r.algorithm for r in report.records}
    assert {
        "mapmatch-vectorized",
        "mapmatch-scalar",
        "aggregate-bincount",
        "aggregate-scalar",
    } <= algorithms
    case = "ingest-2k"
    assert report.equivalence_max_abs_diff[f"{case}-mapmatch"] == 0.0
    assert report.equivalence_max_abs_diff[f"{case}-aggregate"] <= EQUIVALENCE_TOL
    for key in ("mapmatch", "aggregate", "pipeline"):
        assert report.speedups[f"{case}-{key}"] > 0.0
    assert 0.0 < report.meta[f"{case}-match-rate"] <= 1.0


# ----------------------------------------------------------------------
# Baseline comparison (repro bench --compare)
# ----------------------------------------------------------------------
def _payload(records):
    return {
        "schema": 2,
        "records": [
            {"case": c, "algorithm": a, "wall_s": w, "repeats": 1}
            for c, a, w in records
        ],
    }


def test_compare_identical_payloads_is_ok():
    payload = _payload([("672x221@0.20", "cs-batched", 0.5)])
    result = compare_payloads(payload, payload)
    assert result.ok
    assert result.compared == 1
    assert result.skipped == 0
    assert "no regressions" in result.render()


def test_compare_flags_regression_beyond_threshold():
    base = _payload([("672x221@0.20", "cs-batched", 0.5)])
    cur = _payload([("672x221@0.20", "cs-batched", 0.5 * 2.0)])
    result = compare_payloads(cur, base)
    assert not result.ok
    assert len(result.regressions) == 1
    assert "REGRESSIONS" in result.render()


def test_compare_tolerates_growth_below_threshold():
    base = _payload([("672x221@0.20", "cs-batched", 0.5)])
    cur = _payload(
        [("672x221@0.20", "cs-batched", 0.5 * (REGRESSION_THRESHOLD - 0.1))]
    )
    assert compare_payloads(cur, base).ok


def test_compare_skips_sub_noise_floor_records():
    wall = MIN_COMPARE_WALL_S / 10.0
    base = _payload([("tiny", "cs-batched", wall)])
    # Both runs below the floor: skipped, not compared.
    result = compare_payloads(_payload([("tiny", "cs-batched", wall)]), base)
    assert result.skipped == 1 and result.compared == 0
    # Current above the floor: compared (and a regression).
    cur = _payload([("tiny", "cs-batched", wall * 100.0)])
    result = compare_payloads(cur, base)
    assert result.compared == 1 and not result.ok


def test_compare_ignores_unmatched_records():
    base = _payload([("672x221@0.20", "cs-batched", 0.5)])
    cur = _payload([("ingest-120k", "mapmatch-vectorized", 2.0)])
    result = compare_payloads(cur, base)
    assert result.ok and result.compared == 0


def test_compare_accepts_schema2_baseline_as_numpy_backend():
    # A schema-2 baseline has no backend field; its records must match
    # schema-3 records carrying the default "numpy" backend.
    base = _payload([("672x221@0.20", "cs-batched", 0.5)])
    cur = {
        "schema": 3,
        "records": [
            {
                "case": "672x221@0.20",
                "algorithm": "cs-batched",
                "wall_s": 1.2,
                "repeats": 1,
                "backend": "numpy",
            }
        ],
    }
    result = compare_payloads(cur, base)
    assert result.compared == 1 and not result.ok


def test_compare_keys_on_backend():
    # Same (case, algorithm) on different backends must NOT match.
    base = _payload([("672x221@0.20", "cs-f32", 0.5)])  # implicit numpy
    cur = {
        "schema": 3,
        "records": [
            {
                "case": "672x221@0.20",
                "algorithm": "cs-f32",
                "wall_s": 50.0,
                "repeats": 1,
                "backend": "numpy-ws",
            }
        ],
    }
    result = compare_payloads(cur, base)
    assert result.compared == 0 and result.ok


def test_compare_rejects_bad_threshold():
    payload = _payload([("672x221@0.20", "cs-batched", 0.5)])
    with pytest.raises(ValueError, match="threshold"):
        compare_payloads(payload, payload, threshold=1.0)


def test_compare_with_baseline_reads_json(tiny_report, tmp_path):
    baseline = tiny_report.write_json(tmp_path / "baseline.json")
    result = compare_with_baseline(tiny_report, baseline)
    assert result.ok


def test_cli_bench_smoke_writes_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--smoke", "--output", "out.json"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "speedup" in captured
    payload = json.loads((tmp_path / "out.json").read_text())
    assert payload["meta"]["smoke"] is True

    # Comparing a fresh run against a baseline 100x faster must trip
    # the regression gate and exit non-zero.
    doctored = dict(payload)
    doctored["records"] = [
        {**rec, "wall_s": rec["wall_s"] / 100.0} for rec in payload["records"]
    ]
    (tmp_path / "fast_baseline.json").write_text(json.dumps(doctored))
    code = main(
        [
            "bench",
            "--smoke",
            "--output",
            "out2.json",
            "--compare",
            "fast_baseline.json",
        ]
    )
    assert code == 1
    assert "REGRESSIONS" in capsys.readouterr().out
