"""Fast tier-1 coverage of the perf-bench harness.

The full smoke profile (all solvers, baselines, GA tuning) lives in
``benchmarks/perf/test_bench_smoke.py`` and runs in the CI perf job;
here we keep the harness importable and correct on a tiny workload so
a refactor cannot silently break ``repro bench``.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.perf_bench import (
    EQUIVALENCE_TOL,
    BenchCase,
    run_perf_bench,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_perf_bench(
        cases=[BenchCase(30, 12, 0.5)],
        smoke=True,
        iterations=4,
        include_tune=False,
        include_baselines=False,
    )


def test_tiny_case_checks_equivalence(tiny_report):
    assert tiny_report.equivalence_max_abs_diff["30x12@0.50"] <= EQUIVALENCE_TOL
    assert "30x12@0.50" in tiny_report.speedups
    assert {r.algorithm for r in tiny_report.records} == {
        "cs-batched",
        "cs-grouped",
        "cs-loop",
    }


def test_json_payload_schema(tiny_report, tmp_path):
    out = tiny_report.write_json(tmp_path / "bench.json")
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert payload["equivalence_tol"] == EQUIVALENCE_TOL
    assert len(payload["records"]) == 3


def test_cli_bench_smoke_writes_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--smoke", "--output", "out.json"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "speedup" in captured
    payload = json.loads((tmp_path / "out.json").read_text())
    assert payload["meta"]["smoke"] is True
