"""Tests for repro.experiments.runner (smoke at micro scale)."""

import pytest

from repro.experiments import runner


class TestRunAll:
    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            runner.run_all(profile="huge")

    @pytest.mark.slow
    def test_quick_profile_produces_all_blocks(self):
        blocks = runner.run_all(profile="quick", seed=0)
        expected = {
            "table1", "fig2", "fig3", "fig4", "fig5_to_7", "fig8",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "table2", "sampling_extension",
            "robustness_extension", "streaming_extension",
        }
        assert expected <= set(blocks)
        assert all(isinstance(text, str) and text for text in blocks.values())


class TestMain:
    def test_cli_flags_parse(self):
        # argparse-level check only; the full run is the slow test above.
        import argparse

        parser = argparse.ArgumentParser()
        parser.add_argument("--profile", choices=runner.PROFILES, default="quick")
        parser.add_argument("--seed", type=int, default=0)
        args = parser.parse_args(["--profile", "quick", "--seed", "3"])
        assert args.seed == 3


class TestBatteryJobs:
    def test_thirteen_named_jobs(self):
        jobs = runner._battery_jobs("quick", seed=0)
        assert len(jobs) == 13
        assert all(callable(job) for job in jobs.values())
        assert list(jobs) == list(runner.job_names("quick"))

    def test_wall_clock_jobs_match_determinism_exclusions(self):
        # The cells the determinism harness excludes from the bit-diff
        # are exactly the cells the store must annotate on a hit.
        from repro.analysis.determinism import WALL_CLOCK_JOBS

        jobs = runner._battery_jobs("quick", seed=0)
        marked = tuple(
            name
            for name, job in jobs.items()
            if isinstance(job, runner.BatteryJob) and job.wall_clock
        )
        assert marked == WALL_CLOCK_JOBS

    def test_job_names_stable_across_profiles(self):
        names = runner.job_names("quick")
        assert names == runner.job_names("smoke") == runner.job_names("paper")
        assert "runtimes" in names and "streaming" in names
        with pytest.raises(ValueError):
            runner.job_names("huge")

    def test_parallel_merges_blocks_in_job_order(self, monkeypatch):
        # Replace the battery with stub jobs so the fan-out/merge logic
        # is exercised without simulating any city.
        calls = []

        def fake_jobs(profile, seed):
            def make(key):
                def job():
                    calls.append(key)
                    return {key: f"text-{key}"}

                return job

            return {key: make(key) for key in ("a", "b", "c")}

        monkeypatch.setattr(runner, "_battery_jobs", fake_jobs)
        serial = runner.run_all(profile="quick", seed=0)
        parallel = runner.run_all(profile="quick", seed=0, max_workers=3)
        assert serial == parallel == {
            "a": "text-a",
            "b": "text-b",
            "c": "text-c",
        }
        assert list(serial) == ["a", "b", "c"]

    def test_only_filters_jobs(self, monkeypatch):
        def fake_jobs(profile, seed):
            return {
                key: (lambda key=key: {key: f"text-{key}"})
                for key in ("a", "b", "c")
            }

        monkeypatch.setattr(runner, "_battery_jobs", fake_jobs)
        assert runner.run_all(only=("c", "a")) == {"a": "text-a", "c": "text-c"}
        with pytest.raises(KeyError):
            runner.run_all(only=("a", "nope"))
