"""Tests for repro.probes.mapmatch."""

import numpy as np
import pytest

from repro.probes.mapmatch import GridIndex, MapMatcher
from repro.probes.report import ProbeReport, ReportBatch
from repro.roadnet.geometry import Point


class TestGridIndex:
    def test_candidates_near_segment(self, small_network):
        index = GridIndex(small_network, cell_m=300.0)
        seg = small_network.segment(0)
        mid = seg.point_at(0.5)
        candidates = index.candidates(mid)
        assert seg.segment_id in candidates

    def test_every_segment_registered(self, small_network):
        index = GridIndex(small_network, cell_m=250.0)
        registered = set()
        for ids in index._cells.values():
            registered.update(ids)
        assert registered == set(small_network.segment_ids)

    def test_num_cells_positive(self, small_network):
        assert GridIndex(small_network).num_cells > 0

    def test_rejects_bad_params(self, small_network):
        with pytest.raises(ValueError):
            GridIndex(small_network, cell_m=0.0)
        with pytest.raises(ValueError):
            GridIndex(small_network, pad_m=-1.0)


class TestMapMatcher:
    def test_exact_point_matches(self, small_network):
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        seg = small_network.segment(5)
        assert matcher.match_point(seg.point_at(0.4)) in (
            seg.segment_id,
            # The opposite-direction twin shares the geometry.
            *small_network.adjacent_segments(seg.segment_id),
        )

    def test_offset_point_matches_nearby(self, small_network):
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        seg = small_network.segment(0)
        p = seg.point_at(0.5)
        matched = matcher.match_point(Point(p.x + 10.0, p.y + 10.0))
        assert matched >= 0

    def test_far_point_rejected(self, small_network):
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        min_x, min_y, _, _ = small_network.bounding_box()
        assert matcher.match_point(Point(min_x - 5000.0, min_y - 5000.0)) == -1

    def test_match_batch(self, small_network):
        seg = small_network.segment(3)
        p = seg.point_at(0.5)
        reports = [
            ProbeReport(0, 0.0, p.x, p.y, 30.0),
            ProbeReport(0, 1.0, p.x + 9999.0, p.y, 30.0),
        ]
        matched = MapMatcher(small_network, max_distance_m=30.0).match_batch(
            ReportBatch(reports)
        )
        assert matched.segment_ids[0] >= 0
        assert matched.segment_ids[1] == -1

    def test_match_rate(self, small_network):
        seg = small_network.segment(3)
        p = seg.point_at(0.5)
        reports = [ProbeReport(0, float(i), p.x, p.y, 30.0) for i in range(4)]
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        assert matcher.match_rate(ReportBatch(reports)) == 1.0
        assert matcher.match_rate(ReportBatch([])) == 0.0

    def test_heading_separates_direction_twins(self, small_network):
        """A heading matches the correct direction of a two-way street."""
        from repro.roadnet.geometry import heading_deg as course_of

        seg = small_network.segment(0)
        reverse = small_network.segment_between(seg.end, seg.start)
        assert reverse is not None
        p = seg.point_at(0.5)
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        forward_course = course_of(seg.start_point, seg.end_point)
        backward_course = (forward_course + 180.0) % 360.0
        assert matcher.match_point(p, heading=forward_course) == seg.segment_id
        assert matcher.match_point(p, heading=backward_course) == reverse.segment_id

    def test_heading_nan_behaves_like_no_heading(self, small_network):
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        p = small_network.segment(3).point_at(0.5)
        assert matcher.match_point(p, heading=float("nan")) == matcher.match_point(p)

    def test_heading_never_unmatches_within_radius(self, small_network):
        """Heading only re-ranks; it cannot push a fix out of the gate."""
        matcher = MapMatcher(small_network, max_distance_m=30.0)
        p = small_network.segment(3).point_at(0.5)
        for heading in (0.0, 90.0, 180.0, 270.0):
            assert matcher.match_point(p, heading=heading) >= 0

    def test_heading_penalty_validated(self, small_network):
        with pytest.raises(ValueError):
            MapMatcher(small_network, heading_penalty_m=-1.0)

    def test_directional_match_rate_on_simulated_reports(self, ground_truth):
        """With headings, the matcher recovers the *directed* segment."""
        from repro.mobility.fleet import FleetConfig, FleetSimulator
        from repro.mobility.reporting import ReportingConfig

        config = FleetConfig(
            num_vehicles=5,
            reporting=ReportingConfig(position_noise_m=0.0),
        )
        batch = FleetSimulator(ground_truth, config, seed=0).run(0.0, 2 * 3600.0)
        driving = ReportBatch([r for r in batch if r.segment_id >= 0])
        matched = MapMatcher(ground_truth.network, max_distance_m=25.0).match_batch(
            driving
        )
        exact = np.mean(matched.segment_ids == driving.segment_ids)
        assert exact > 0.9  # direction twins resolved, not just geometry

    def test_matches_simulated_reports(self, ground_truth):
        """End to end: simulator positions must map-match back to their segment."""
        from repro.mobility.fleet import FleetConfig, FleetSimulator
        from repro.mobility.reporting import ReportingConfig

        config = FleetConfig(
            num_vehicles=5,
            reporting=ReportingConfig(position_noise_m=0.0),
        )
        batch = FleetSimulator(ground_truth, config, seed=0).run(0.0, 2 * 3600.0)
        driving = ReportBatch([r for r in batch if r.segment_id >= 0])
        matcher = MapMatcher(ground_truth.network, max_distance_m=25.0)
        matched = matcher.match_batch(driving)
        agree = 0
        for true, found in zip(driving.segment_ids, matched.segment_ids):
            seg = ground_truth.network.segment(int(true))
            # The opposite-direction twin is geometrically identical, so
            # matching either direction counts as correct.
            twins = {true}
            reverse = ground_truth.network.segment_between(seg.end, seg.start)
            if reverse is not None:
                twins.add(reverse.segment_id)
            agree += int(found in twins)
        assert agree / max(1, len(driving)) > 0.95


class TestVectorizedScalarEquivalence:
    def _random_batch(self, network, n, seed, with_headings=True):
        rng = np.random.default_rng(seed)
        xmin, ymin, xmax, ymax = network.bounding_box()
        pad = 150.0  # places a share of reports outside every cell
        xs = rng.uniform(xmin - pad, xmax + pad, n)
        ys = rng.uniform(ymin - pad, ymax + pad, n)
        headings = rng.uniform(0.0, 360.0, n)
        if with_headings:
            headings[rng.random(n) < 0.5] = np.nan
        else:
            headings[:] = np.nan
        return ReportBatch(
            ProbeReport(
                vehicle_id=i % 7,
                time_s=float(i),
                x=float(xs[i]),
                y=float(ys[i]),
                speed_kmh=30.0,
                segment_id=-1,
                heading_deg=float(headings[i]),
            )
            for i in range(n)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_on_random_reports(self, small_network, seed):
        matcher = MapMatcher(small_network, max_distance_m=60.0)
        batch = self._random_batch(small_network, 400, seed)
        fast = matcher.match_batch(batch, method="vectorized")
        slow = matcher.match_batch(batch, method="scalar")
        np.testing.assert_array_equal(fast.segment_ids, slow.segment_ids)

    def test_matches_scalar_without_headings(self, small_network):
        matcher = MapMatcher(small_network)
        batch = self._random_batch(small_network, 300, 3, with_headings=False)
        fast = matcher.match_batch(batch, method="vectorized")
        slow = matcher.match_batch(batch, method="scalar")
        np.testing.assert_array_equal(fast.segment_ids, slow.segment_ids)

    def test_equidistant_tie_breaks_identically(self, small_network):
        # 10 m from both the eastbound and the northbound street at a
        # corner: the two point-to-segment distances are exactly equal
        # (both representable as 10.0), so the winner is pure tie-break.
        matcher = MapMatcher(small_network, max_distance_m=50.0)
        node = small_network.segments()[0].start_point
        batch = ReportBatch(
            [
                ProbeReport(
                    vehicle_id=0,
                    time_s=0.0,
                    x=float(node.x + 10.0),
                    y=float(node.y + 10.0),
                    speed_kmh=30.0,
                    segment_id=-1,
                )
            ]
        )
        fast = matcher.match_batch(batch, method="vectorized")
        slow = matcher.match_batch(batch, method="scalar")
        np.testing.assert_array_equal(fast.segment_ids, slow.segment_ids)

    def test_out_of_grid_reports_stay_unmatched(self, small_network):
        matcher = MapMatcher(small_network)
        xmin, ymin, _, _ = small_network.bounding_box()
        batch = ReportBatch(
            [
                ProbeReport(
                    vehicle_id=0,
                    time_s=0.0,
                    x=xmin - 5_000.0,
                    y=ymin - 5_000.0,
                    speed_kmh=30.0,
                    segment_id=-1,
                )
            ]
        )
        for method in ("vectorized", "scalar"):
            out = matcher.match_batch(batch, method=method)
            assert out.segment_ids.tolist() == [-1]

    def test_unknown_method_rejected(self, small_network):
        matcher = MapMatcher(small_network)
        with pytest.raises(ValueError, match="method"):
            matcher.match_batch(ReportBatch([]), method="nope")
