"""Tests for repro.core.matrix_selection."""

import numpy as np
import pytest

from repro.core.completion import CompressiveSensingCompleter
from repro.core.matrix_selection import (
    SegmentSet,
    SegmentSetBuilder,
    build_paper_sets,
)
from repro.datasets.masks import random_integrity_mask


class TestSegmentSet:
    def test_requires_anchor(self):
        with pytest.raises(ValueError, match="anchor"):
            SegmentSet("s", anchor=5, segment_ids=[1, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicates"):
            SegmentSet("s", anchor=1, segment_ids=[1, 2, 2])

    def test_size(self):
        assert SegmentSet("s", 1, [1, 2, 3]).size == 3


class TestSegmentSetBuilder:
    def test_unknown_anchor_rejected(self, small_network):
        with pytest.raises(ValueError):
            SegmentSetBuilder(small_network, anchor=10_000)

    def test_directly_connected(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        s = builder.directly_connected(count=4, seed=0)
        assert 0 in s.segment_ids
        adjacent = small_network.adjacent_segments(0)
        assert set(s.segment_ids) - {0} <= adjacent

    def test_within_blocks_excludes_direct(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        s = builder.within_blocks(hops=2, count=50, seed=0)
        direct = small_network.adjacent_segments(0)
        assert not (set(s.segment_ids) - {0}) & direct

    def test_random_remote_outside_neighbourhood(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        near = small_network.segments_within_hops(0, 2)
        s = builder.random_remote(count=5, hops_excluded=2, seed=0)
        assert not (set(s.segment_ids) - {0}) & near

    def test_random_remote_insufficient_pool(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        with pytest.raises(ValueError):
            builder.random_remote(count=10_000, seed=0)

    def test_subsample(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        base = builder.within_blocks(hops=2, count=12, seed=0)
        sub = builder.subsample(base, count=4, name="sub", seed=0)
        assert sub.size == 5
        assert set(sub.segment_ids) <= set(base.segment_ids)

    def test_subsample_pool_checked(self, small_network):
        builder = SegmentSetBuilder(small_network, anchor=0)
        base = builder.directly_connected(count=3, seed=0)
        with pytest.raises(ValueError):
            builder.subsample(base, count=50, name="x", seed=0)


class TestBuildPaperSets:
    def test_five_sets(self, small_network):
        sets = build_paper_sets(small_network, anchor=0, seed=0)
        assert len(sets) == 5
        assert all(0 in s.segment_ids for s in sets)

    def test_set_sizes_ordered(self, small_network):
        sets = build_paper_sets(small_network, anchor=0, seed=0)
        by_name = {s.name: s for s in sets}
        assert by_name["set2-two-blocks"].size > by_name["set1-connected"].size
        assert by_name["set3-random-remote"].size >= by_name["set2-two-blocks"].size

    def test_deterministic(self, small_network):
        a = build_paper_sets(small_network, anchor=0, seed=3)
        b = build_paper_sets(small_network, anchor=0, seed=3)
        assert [s.segment_ids for s in a] == [s.segment_ids for s in b]


class TestBestByValidation:
    def test_scores_all_candidates(self, small_network, truth_tcm):
        builder = SegmentSetBuilder(small_network, anchor=0)
        sets = [
            builder.directly_connected(count=5, seed=0),
            builder.within_blocks(hops=2, count=10, seed=0),
        ]
        mask = random_integrity_mask(truth_tcm.shape, 0.6, seed=0)
        masked = truth_tcm.with_mask(mask)
        completer = CompressiveSensingCompleter(rank=1, lam=1.0, iterations=15, seed=0)
        scores = builder.best_by_validation(masked, sets, completer=completer, seed=0)
        assert set(scores) == {s.name for s in sets}
        assert all(np.isfinite(v) or np.isnan(v) for v in scores.values())

    def test_validation_fraction_checked(self, small_network, truth_tcm):
        builder = SegmentSetBuilder(small_network, anchor=0)
        with pytest.raises(ValueError):
            builder.best_by_validation(truth_tcm, [], validation_fraction=0.0)
