"""Tests for repro.roadnet.io."""

import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture()
def network():
    return grid_city(3, 3, seed=4, name="io-test")


class TestDictRoundTrip:
    def test_preserves_counts(self, network):
        restored = network_from_dict(network_to_dict(network))
        assert restored.num_segments == network.num_segments
        assert restored.num_intersections == network.num_intersections

    def test_preserves_name(self, network):
        assert network_from_dict(network_to_dict(network)).name == "io-test"

    def test_preserves_segment_attributes(self, network):
        restored = network_from_dict(network_to_dict(network))
        for orig, back in zip(network.segments(), restored.segments()):
            assert back.segment_id == orig.segment_id
            assert back.length_m == pytest.approx(orig.length_m)
            assert back.category == orig.category
            assert back.free_flow_kmh == pytest.approx(orig.free_flow_kmh)
            assert back.canyon_factor == pytest.approx(orig.canyon_factor)

    def test_preserves_topology(self, network):
        restored = network_from_dict(network_to_dict(network))
        assert restored.shortest_path_nodes(0, 8) == network.shortest_path_nodes(0, 8)

    def test_rejects_unknown_version(self, network):
        data = network_to_dict(network)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            network_from_dict(data)


class TestFileRoundTrip:
    def test_save_load(self, network, tmp_path):
        path = tmp_path / "net.json"
        save_network(network, path)
        restored = load_network(path)
        assert restored.num_segments == network.num_segments
        assert restored.segment(0).length_m == pytest.approx(
            network.segment(0).length_m
        )
