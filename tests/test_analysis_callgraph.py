"""Tests for whole-program loading and call-graph construction.

Covers module-name derivation, import-table resolution (absolute,
aliased, relative, re-exported), call-edge resolution through every
supported mechanism (bare names, dotted imports, ``functools.partial``,
lambda trampolines, ``self``/``cls`` methods, class constructors), and
the SCC condensation the effect fixpoint consumes.
"""

import pytest

from repro.analysis.callgraph import (
    FunctionId,
    Program,
    module_name_for,
    qualname_of_scope,
)


def edges_of(program, module, qualname):
    """Set of callee FunctionIds of one function."""
    info = program.functions[FunctionId(module=module, qualname=qualname)]
    return {c.callee for c in info.calls}


class TestModuleNameFor:
    def test_package_walkup(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "algo.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "mypkg.sub.algo"

    def test_init_file_names_the_package(self, tmp_path):
        pkg = tmp_path / "mypkg"
        pkg.mkdir()
        init = pkg / "__init__.py"
        init.write_text("")
        assert module_name_for(init) == "mypkg"

    def test_bare_file_is_its_stem(self, tmp_path):
        mod = tmp_path / "helper.py"
        mod.write_text("x = 1\n")
        assert module_name_for(mod) == "helper"


class TestProgramLoading:
    def test_functions_are_indexed_by_qualname(self):
        program = Program.from_sources(
            {
                "pkg.mod": (
                    "def top():\n"
                    "    pass\n"
                    "class C:\n"
                    "    def method(self):\n"
                    "        pass\n"
                )
            }
        )
        assert FunctionId("pkg.mod", "top") in program.functions
        assert FunctionId("pkg.mod", "C.method") in program.functions

    def test_lambda_qualname_carries_line(self):
        program = Program.from_sources({"m": "f = lambda x: x + 1\n"})
        names = {fid.qualname for fid in program.functions}
        assert "<lambda>@1" in names

    def test_syntax_error_file_is_skipped(self):
        program = Program.load(
            [("good.py", "def f():\n    pass\n"), ("bad.py", "def broken(:\n")]
        )
        assert "good" in program.modules
        assert "bad" not in program.modules


class TestCallResolution:
    def test_direct_call_same_module(self):
        program = Program.from_sources(
            {"m": "def helper():\n    pass\n\ndef work():\n    helper()\n"}
        )
        assert edges_of(program, "m", "work") == {FunctionId("m", "helper")}

    def test_dotted_call_through_import(self):
        program = Program.from_sources(
            {
                "pkg.helpers": "def tool():\n    pass\n",
                "pkg.main": "from pkg import helpers\n\ndef run():\n    helpers.tool()\n",
            }
        )
        assert edges_of(program, "pkg.main", "run") == {
            FunctionId("pkg.helpers", "tool")
        }

    def test_from_import_symbol(self):
        program = Program.from_sources(
            {
                "pkg.helpers": "def tool():\n    pass\n",
                "pkg.main": "from pkg.helpers import tool\n\ndef run():\n    tool()\n",
            }
        )
        assert edges_of(program, "pkg.main", "run") == {
            FunctionId("pkg.helpers", "tool")
        }

    def test_relative_import(self):
        program = Program.from_sources(
            {
                "pkg.helpers": "def tool():\n    pass\n",
                "pkg.main": "from .helpers import tool\n\ndef run():\n    tool()\n",
            }
        )
        assert edges_of(program, "pkg.main", "run") == {
            FunctionId("pkg.helpers", "tool")
        }

    def test_reexport_one_hop(self):
        program = Program.from_sources(
            {
                "pkg.impl": "def tool():\n    pass\n",
                "pkg": "from pkg.impl import tool\n",
                "app": "from pkg import tool\n\ndef run():\n    tool()\n",
            }
        )
        assert edges_of(program, "app", "run") == {FunctionId("pkg.impl", "tool")}

    def test_partial_unwraps_to_target(self):
        program = Program.from_sources(
            {
                "m": (
                    "import functools\n"
                    "def target(x):\n"
                    "    pass\n"
                    "def run():\n"
                    "    functools.partial(target, 1)()\n"
                )
            }
        )
        assert FunctionId("m", "target") in edges_of(program, "m", "run")

    def test_lambda_trampoline_resolves_inner_call(self):
        program = Program.from_sources(
            {
                "m": (
                    "def target(x):\n"
                    "    pass\n"
                    "def run(items):\n"
                    "    fn = lambda x: target(x)\n"
                )
            }
        )
        info = program.functions[FunctionId("m", "run")]
        # resolve_function_expr on the lambda lands on the trampolined target.
        import ast

        lam = next(
            node for node in ast.walk(info.node) if isinstance(node, ast.Lambda)
        )
        resolved = program.resolve_function_expr(lam, info.scope, info.module)
        assert resolved == FunctionId("m", "target")

    def test_self_method_resolves_in_class(self):
        program = Program.from_sources(
            {
                "m": (
                    "class C:\n"
                    "    def helper(self):\n"
                    "        pass\n"
                    "    def run(self):\n"
                    "        self.helper()\n"
                )
            }
        )
        assert edges_of(program, "m", "C.run") == {FunctionId("m", "C.helper")}

    def test_constructor_edge_to_init(self):
        program = Program.from_sources(
            {
                "m": (
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "def run():\n"
                    "    C()\n"
                )
            }
        )
        assert edges_of(program, "m", "run") == {FunctionId("m", "C.__init__")}

    def test_local_shadow_blocks_import(self):
        program = Program.from_sources(
            {
                "pkg.helpers": "def tool():\n    pass\n",
                "pkg.main": (
                    "from pkg.helpers import tool\n"
                    "def run(tool):\n"
                    "    tool()\n"
                ),
            }
        )
        assert edges_of(program, "pkg.main", "run") == set()

    def test_unresolvable_receiver_yields_no_edge(self):
        program = Program.from_sources(
            {"m": "def run(obj):\n    obj.anything_at_all_unique()\n"}
        )
        assert edges_of(program, "m", "run") == set()


class TestSccs:
    def test_reverse_topological_order(self):
        program = Program.from_sources(
            {
                "m": (
                    "def leaf():\n"
                    "    pass\n"
                    "def mid():\n"
                    "    leaf()\n"
                    "def top():\n"
                    "    mid()\n"
                )
            }
        )
        order = [c[0].qualname for c in program.sccs() if len(c) == 1]
        assert order.index("leaf") < order.index("mid") < order.index("top")

    def test_mutual_recursion_is_one_component(self):
        program = Program.from_sources(
            {
                "m": (
                    "def even(n):\n"
                    "    return n == 0 or odd(n - 1)\n"
                    "def odd(n):\n"
                    "    return n != 0 and even(n - 1)\n"
                )
            }
        )
        comps = [
            {fid.qualname for fid in comp}
            for comp in program.sccs()
            if len(comp) > 1
        ]
        assert {"even", "odd"} in comps

    def test_self_recursion_single_component(self):
        program = Program.from_sources(
            {"m": "def fact(n):\n    return 1 if n <= 1 else n * fact(n - 1)\n"}
        )
        comps = program.sccs()
        assert [FunctionId("m", "fact")] in comps

    def test_deep_chain_no_recursion_error(self):
        # 2000-deep call chain: the iterative Tarjan must not blow the
        # interpreter stack the way a recursive implementation would.
        lines = ["def f0():\n    pass\n"]
        for i in range(1, 2000):
            lines.append(f"def f{i}():\n    f{i - 1}()\n")
        program = Program.from_sources({"m": "".join(lines)})
        assert len(program.sccs()) == 2000


class TestWorkers:
    def test_cross_module_worker_resolved(self):
        program = Program.from_sources(
            {
                "pkg.jobs": "def work(x):\n    return x\n",
                "pkg.main": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "from pkg.jobs import work\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as ex:\n"
                    "        return [ex.submit(work, i) for i in items]\n"
                ),
            }
        )
        resolved = [fid for _, _, fid in program.workers()]
        assert FunctionId("pkg.jobs", "work") in resolved
