"""Tests for repro.mobility.dropout."""

import numpy as np
import pytest

from repro.mobility.dropout import LOSSLESS, DropoutModel
from repro.roadnet.geometry import Point
from repro.roadnet.segment import RoadSegment


def make_segment(canyon: float) -> RoadSegment:
    return RoadSegment(
        segment_id=0,
        start=0,
        end=1,
        start_point=Point(0, 0),
        end_point=Point(100, 0),
        length_m=100.0,
        canyon_factor=canyon,
    )


class TestDropoutModel:
    def test_loss_probability_composition(self):
        model = DropoutModel(base_loss=0.1, canyon_loss=0.4)
        assert model.loss_probability(make_segment(0.0)) == pytest.approx(0.1)
        assert model.loss_probability(make_segment(1.0)) == pytest.approx(0.5)

    def test_loss_probability_capped(self):
        model = DropoutModel(base_loss=0.9, canyon_loss=0.9)
        assert model.loss_probability(make_segment(1.0)) <= 0.99

    def test_lossless_always_survives(self):
        rng = np.random.default_rng(0)
        seg = make_segment(1.0)
        assert all(LOSSLESS.survives(seg, rng) for _ in range(100))

    def test_survival_rate_matches_probability(self):
        model = DropoutModel(base_loss=0.3, canyon_loss=0.0)
        rng = np.random.default_rng(1)
        seg = make_segment(0.0)
        survived = sum(model.survives(seg, rng) for _ in range(5000))
        assert survived / 5000 == pytest.approx(0.7, abs=0.03)

    def test_canyon_increases_loss(self):
        model = DropoutModel(base_loss=0.05, canyon_loss=0.5)
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        open_road = sum(model.survives(make_segment(0.0), rng_a) for _ in range(2000))
        canyon = sum(model.survives(make_segment(1.0), rng_b) for _ in range(2000))
        assert canyon < open_road

    @pytest.mark.parametrize("kwargs", [{"base_loss": -0.1}, {"canyon_loss": 1.2}])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DropoutModel(**kwargs)
