"""Tests for repro.probes.trajectory."""

import numpy as np
import pytest

from repro.probes.report import ProbeReport, ReportBatch
from repro.probes.trajectory import (
    FleetQuality,
    Trajectory,
    fleet_quality,
    split_trajectories,
)


def report(vid, t, x=0.0, y=0.0, speed=30.0, seg=0):
    return ProbeReport(vehicle_id=vid, time_s=t, x=x, y=y, speed_kmh=speed, segment_id=seg)


class TestTrajectory:
    def test_requires_reports(self):
        with pytest.raises(ValueError):
            Trajectory(0, [])

    def test_requires_time_order(self):
        with pytest.raises(ValueError, match="ordered"):
            Trajectory(0, [report(0, 10.0), report(0, 5.0)])

    def test_requires_single_vehicle(self):
        with pytest.raises(ValueError, match="vehicles"):
            Trajectory(0, [report(0, 1.0), report(1, 2.0)])

    def test_duration(self):
        traj = Trajectory(0, [report(0, 10.0), report(0, 70.0)])
        assert traj.duration_s == 60.0
        assert traj.num_reports == 2

    def test_mean_speed(self):
        traj = Trajectory(0, [report(0, 0.0, speed=20.0), report(0, 1.0, speed=40.0)])
        assert traj.mean_speed_kmh() == 30.0

    def test_path_length(self):
        traj = Trajectory(
            0, [report(0, 0.0, x=0, y=0), report(0, 1.0, x=3, y=4), report(0, 2.0, x=3, y=4)]
        )
        assert traj.path_length_m() == pytest.approx(5.0)

    def test_segments_visited_dedup_ordered(self):
        traj = Trajectory(
            0,
            [
                report(0, 0.0, seg=5),
                report(0, 1.0, seg=5),
                report(0, 2.0, seg=-1),
                report(0, 3.0, seg=2),
                report(0, 4.0, seg=5),
            ],
        )
        assert traj.segments_visited() == [5, 2]

    def test_implied_speeds(self):
        traj = Trajectory(
            0, [report(0, 0.0, x=0.0), report(0, 10.0, x=100.0)]
        )
        assert traj.implied_speeds_kmh() == pytest.approx([36.0])


class TestSplitTrajectories:
    def test_gap_splits(self):
        reports = [report(0, 0.0), report(0, 60.0), report(0, 10_000.0)]
        trajectories = split_trajectories(ReportBatch(reports), max_gap_s=600.0)
        assert len(trajectories) == 2
        assert trajectories[0].num_reports == 2

    def test_multiple_vehicles_separate(self):
        reports = [report(0, 0.0), report(1, 1.0), report(0, 2.0)]
        trajectories = split_trajectories(ReportBatch(reports), max_gap_s=600.0)
        assert len(trajectories) == 2
        assert {t.vehicle_id for t in trajectories} == {0, 1}

    def test_empty_batch(self):
        assert split_trajectories(ReportBatch([])) == []

    def test_bad_gap_rejected(self):
        with pytest.raises(ValueError):
            split_trajectories(ReportBatch([]), max_gap_s=0.0)

    def test_on_simulated_fleet(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        batch = FleetSimulator(ground_truth, FleetConfig(num_vehicles=5), seed=0).run(
            0.0, 4 * 3600.0
        )
        trajectories = split_trajectories(batch, max_gap_s=900.0)
        assert trajectories
        covered = sum(t.num_reports for t in trajectories)
        assert covered == len(batch)


class TestFleetQuality:
    def test_empty(self):
        q = fleet_quality(ReportBatch([]))
        assert q.num_reports == 0
        assert q.median_interval_s == 0.0

    def test_glitch_detection(self):
        # Second hop teleports 10 km in 1 s -> implied 36,000 km/h.
        reports = [
            report(0, 0.0, x=0.0),
            report(0, 60.0, x=500.0),
            report(0, 61.0, x=10_500.0),
        ]
        q = fleet_quality(ReportBatch(reports))
        assert q.glitch_fraction == pytest.approx(0.5)

    def test_median_interval(self):
        reports = [report(0, t) for t in (0.0, 60.0, 120.0, 180.0)]
        q = fleet_quality(ReportBatch(reports))
        assert q.median_interval_s == 60.0

    def test_simulated_fleet_clean(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        batch = FleetSimulator(ground_truth, FleetConfig(num_vehicles=8), seed=1).run(
            0.0, 4 * 3600.0
        )
        q = fleet_quality(batch)
        assert q.num_vehicles >= 6
        assert q.glitch_fraction < 0.05
        lo, hi = 30.0, 400.0  # reporting interval range plus jitter
        assert lo <= q.median_interval_s <= hi


class TestMethodEquivalence:
    def _random_batch(self, n, seed):
        rng = np.random.default_rng(seed)
        vids = rng.integers(0, 6, n)
        times = rng.uniform(0.0, 4_000.0, n)  # gaps > 600 s are common
        xs = rng.uniform(0.0, 1_000.0, n)
        ys = rng.uniform(0.0, 1_000.0, n)
        speeds = rng.uniform(0.0, 80.0, n)
        return ReportBatch(
            ProbeReport(
                vehicle_id=int(vids[i]),
                time_s=float(times[i]),
                x=float(xs[i]),
                y=float(ys[i]),
                speed_kmh=float(speeds[i]),
                segment_id=i % 3,
            )
            for i in range(n)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_split_matches_scalar(self, seed):
        batch = self._random_batch(300, seed)
        fast = split_trajectories(batch, max_gap_s=600.0, method="vectorized")
        slow = split_trajectories(batch, max_gap_s=600.0, method="scalar")
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.vehicle_id == b.vehicle_id
            assert a.reports == b.reports

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fleet_quality_matches_scalar(self, seed):
        batch = self._random_batch(300, seed)
        fast = fleet_quality(batch, method="vectorized")
        slow = fleet_quality(batch, method="scalar")
        assert fast.num_vehicles == slow.num_vehicles
        assert fast.num_reports == slow.num_reports
        assert fast.num_trajectories == slow.num_trajectories
        assert fast.median_interval_s == pytest.approx(slow.median_interval_s)
        assert fast.glitch_fraction == pytest.approx(slow.glitch_fraction)

    def test_empty_batch_equivalent(self):
        for method in ("vectorized", "scalar"):
            assert split_trajectories(ReportBatch([]), method=method) == []
            quality = fleet_quality(ReportBatch([]), method=method)
            assert quality.num_reports == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            split_trajectories(ReportBatch([]), method="nope")
        with pytest.raises(ValueError, match="method"):
            fleet_quality(ReportBatch([]), method="nope")
