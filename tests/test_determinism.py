"""Tests for repro.analysis.determinism (serial == parallel harness)."""

import pytest

from repro.analysis.determinism import (
    CHECKS,
    DeterminismCheck,
    DeterminismReport,
    WALL_CLOCK_JOBS,
    check_completion,
    check_sharded,
    check_tuning,
    run_determinism_suite,
)


class TestReportShape:
    def test_render_and_ok(self):
        good = DeterminismCheck(name="a", ok=True, detail="d", elapsed_s=0.1)
        bad = DeterminismCheck(name="b", ok=False, detail="x", elapsed_s=0.2)
        assert DeterminismReport(checks=[good]).ok
        assert not DeterminismReport(checks=[good, bad]).ok
        rendered = DeterminismReport(checks=[good, bad]).render()
        assert "MISMATCH" in rendered
        assert "DETERMINISM VIOLATION" in rendered
        assert "bit-identical" in DeterminismReport(checks=[good]).render()

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError):
            run_determinism_suite(checks=["nope"], smoke=True)

    def test_check_names(self):
        assert set(CHECKS) == {"completion", "tuning", "sharded", "run-all"}
        assert set(WALL_CLOCK_JOBS) == {"runtimes", "streaming"}


class TestSmokeChecks:
    def test_completion_bit_identical(self):
        check = check_completion(seed=0, max_workers=2, smoke=True)
        assert check.ok, check.detail
        assert "1 vs 2 workers" in check.detail

    def test_tuning_bit_identical(self):
        check = check_tuning(seed=0, max_workers=2, smoke=True)
        assert check.ok, check.detail

    def test_sharded_bit_identical(self):
        check = check_sharded(seed=0, max_workers=2, smoke=True)
        assert check.ok, check.detail
        assert "exact + multilevel" in check.detail

    def test_suite_subset(self):
        report = run_determinism_suite(
            checks=["completion", "tuning"], smoke=True, max_workers=2
        )
        assert report.ok
        assert [c.name for c in report.checks] == ["completion", "tuning"]


@pytest.mark.slow
class TestRunAllCheck:
    def test_run_all_bit_identical(self):
        from repro.analysis.determinism import check_run_all

        check = check_run_all(seed=0, max_workers=2, smoke=True)
        assert check.ok, check.detail
        assert "wall-clock studies excluded" in check.detail
