"""Tests for repro.apps.congestion."""

import numpy as np
import pytest

from repro.apps.congestion import CongestionMonitor
from repro.core.tcm import TimeGrid, TrafficConditionMatrix


@pytest.fixture()
def monitor(small_network):
    """Free-flow everywhere except: slot 1 congests segments 0/1 hard."""
    n = small_network.num_segments
    free = np.array(
        [small_network.segment(sid).free_flow_kmh for sid in small_network.segment_ids]
    )
    values = np.tile(free, (4, 1)).astype(float)
    values[1, 0] = free[0] * 0.2
    values[1, 1] = free[1] * 0.25
    tcm = TrafficConditionMatrix(
        values,
        grid=TimeGrid(0.0, 1800.0, 4),
        segment_ids=small_network.segment_ids,
    )
    return CongestionMonitor(small_network, tcm)


class TestValidation:
    def test_requires_complete(self, small_network, masked_tcm):
        with pytest.raises(ValueError, match="complete"):
            CongestionMonitor(small_network, masked_tcm)


class TestIndices:
    def test_free_flow_zero_congestion(self, monitor):
        index = monitor.congestion_index
        assert index[0].max() == pytest.approx(0.0, abs=1e-9)

    def test_congested_cells_flagged(self, monitor):
        index = monitor.congestion_index
        assert index[1, 0] == pytest.approx(0.8)
        assert index[1, 1] == pytest.approx(0.75)

    def test_index_bounded(self, monitor):
        index = monitor.congestion_index
        assert index.min() >= 0.0
        assert index.max() <= 1.0

    def test_network_series(self, monitor):
        series = monitor.network_congestion_series()
        assert series.shape == (4,)
        assert np.argmax(series) == 1

    def test_peak_slot(self, monitor):
        assert monitor.peak_slot() == 1

    def test_congested_fraction(self, monitor, small_network):
        frac = monitor.congested_fraction(threshold=0.5)
        assert frac[0] == 0.0
        assert frac[1] == pytest.approx(2 / small_network.num_segments)


class TestRanking:
    def test_worst_first(self, monitor):
        ranking = monitor.segment_ranking()
        assert ranking.segment_ids[0] == 0  # the hardest-hit segment
        assert ranking.scores == sorted(ranking.scores, reverse=True)

    def test_top_k(self, monitor):
        top = monitor.segment_ranking().top(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
        with pytest.raises(ValueError):
            monitor.segment_ranking().top(0)

    def test_slot_range(self, monitor):
        quiet = monitor.segment_ranking(slot_range=(2, 4))
        assert quiet.scores[0] == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            monitor.segment_ranking(slot_range=(3, 2))


class TestHotspots:
    def test_detects_adjacent_cluster(self, monitor, small_network):
        # Segments 0 and 1 are the two directions of the same street, so
        # they are adjacent and merge into one hotspot.
        hotspots = monitor.hotspots(slot=1, threshold=0.5, min_size=2)
        assert hotspots
        assert set(hotspots[0].segment_ids) >= {0, 1}
        assert hotspots[0].mean_congestion > 0.5

    def test_quiet_slot_no_hotspots(self, monitor):
        assert monitor.hotspots(slot=0, threshold=0.5) == []

    def test_min_size_filters_singletons(self, small_network):
        n = small_network.num_segments
        free = np.array(
            [small_network.segment(sid).free_flow_kmh for sid in small_network.segment_ids]
        )
        values = np.tile(free, (2, 1)).astype(float)
        values[0, 5] = free[5] * 0.1  # a single congested segment
        tcm = TrafficConditionMatrix(
            values, grid=TimeGrid(0.0, 1800.0, 2), segment_ids=small_network.segment_ids
        )
        monitor = CongestionMonitor(small_network, tcm)
        # Its reverse twin is adjacent but not congested -> singleton.
        assert monitor.hotspots(slot=0, threshold=0.5, min_size=2) == []
        assert monitor.hotspots(slot=0, threshold=0.5, min_size=1)

    def test_slot_bounds(self, monitor):
        with pytest.raises(IndexError):
            monitor.hotspots(slot=99)

    def test_on_synthesized_traffic(self, small_network, truth_tcm):
        monitor = CongestionMonitor(small_network, truth_tcm)
        series = monitor.network_congestion_series()
        # Diurnal structure: peak congestion well above the minimum.
        assert series.max() > series.min() + 0.1
