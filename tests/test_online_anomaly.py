"""Tests for repro.core.online_anomaly."""

import numpy as np
import pytest

from repro.core.online_anomaly import OnlineAlert, OnlineAnomalyMonitor
from repro.core.streaming import SlotEstimate


def estimate(slot, speeds):
    return SlotEstimate(
        slot_start_s=slot * 900.0,
        speeds_kmh=np.asarray(speeds, dtype=float),
        observed_fraction=1.0,
    )


def feed_days(monitor, slots_per_day, days, base=40.0):
    """Feed steady traffic for several days."""
    for slot in range(slots_per_day * days):
        monitor.observe(estimate(slot, [base] * len(monitor.segment_ids)))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slots_per_day": 0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"threshold_sigmas": 0.0},
            {"warmup_days": -1},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        params = dict(segment_ids=[0, 1], slot_s=900.0, slots_per_day=4)
        params.update(kwargs)
        with pytest.raises(ValueError):
            OnlineAnomalyMonitor(**params)

    def test_speed_shape_checked(self):
        monitor = OnlineAnomalyMonitor([0, 1], slot_s=900.0, slots_per_day=4)
        with pytest.raises(ValueError):
            monitor.observe(estimate(0, [30.0]))


class TestDetection:
    def test_no_alerts_during_warmup(self):
        monitor = OnlineAnomalyMonitor([0, 1], slot_s=900.0, slots_per_day=4, warmup_days=1)
        alerts = monitor.observe(estimate(0, [40.0, 40.0]))
        assert alerts == []

    def test_steady_traffic_quiet(self):
        monitor = OnlineAnomalyMonitor([0, 1], slot_s=900.0, slots_per_day=4)
        feed_days(monitor, 4, days=5)
        assert monitor.alerts == []

    def test_sudden_slowdown_alerts(self):
        monitor = OnlineAnomalyMonitor([0, 1], slot_s=900.0, slots_per_day=4, threshold_sigmas=3.0)
        feed_days(monitor, 4, days=4, base=40.0)
        alerts = monitor.observe(estimate(16, [5.0, 40.0]))
        assert len(alerts) == 1
        assert alerts[0].segment_id == 0
        assert alerts[0].z_score > 3.0
        assert alerts[0].observed_kmh == 5.0

    def test_speedup_not_alerted(self):
        monitor = OnlineAnomalyMonitor([0], slot_s=900.0, slots_per_day=4, threshold_sigmas=3.0)
        feed_days(monitor, 4, days=4, base=40.0)
        assert monitor.observe(estimate(16, [80.0])) == []

    def test_seasonality_respected(self):
        """Slow rush-hour speeds are normal at rush hour, anomalous at night."""
        monitor = OnlineAnomalyMonitor([0], slot_s=900.0, slots_per_day=2, threshold_sigmas=3.0)
        # Slot-of-day 0: fast (night); slot-of-day 1: slow (rush).
        for day in range(5):
            monitor.observe(estimate(2 * day, [50.0]))
            monitor.observe(estimate(2 * day + 1, [15.0]))
        # Rush-hour 15 km/h: expected, no alert.
        assert monitor.observe(estimate(11, [15.0])) == []

    def test_observe_many(self):
        monitor = OnlineAnomalyMonitor([0], slot_s=900.0, slots_per_day=4, threshold_sigmas=3.0)
        feed_days(monitor, 4, days=4)
        alerts = monitor.observe_many(
            [estimate(16, [40.0]), estimate(17, [4.0])]
        )
        assert len(alerts) == 1

    def test_alerts_accumulate(self):
        monitor = OnlineAnomalyMonitor([0], slot_s=900.0, slots_per_day=4, threshold_sigmas=3.0)
        feed_days(monitor, 4, days=4)
        monitor.observe(estimate(16, [4.0]))
        assert len(monitor.alerts) == 1


class TestEdgeCases:
    def test_single_slot_update_initializes_quietly(self):
        # The very first observation of a slot-of-day bucket seeds the
        # EWMA (mean = observation) and must never alert.
        monitor = OnlineAnomalyMonitor([0, 1], slot_s=900.0, slots_per_day=4)
        alerts = monitor.observe(estimate(0, [3.0, 80.0]))
        assert alerts == []
        assert np.array_equal(monitor._mean[0], [3.0, 80.0])
        assert np.all(monitor._count[0] == 1)

    def test_empty_segment_list(self):
        # Degenerate but valid: nothing tracked, nothing alerted.
        monitor = OnlineAnomalyMonitor([], slot_s=900.0, slots_per_day=4)
        assert monitor.observe(estimate(0, [])) == []
        assert monitor.observe_many([estimate(1, []), estimate(2, [])]) == []

    def test_zero_variance_history_does_not_warn(self):
        # Identical observations drive the EWMA variance toward zero;
        # the 1e-6 floor must keep the z-score finite (RuntimeWarnings
        # are errors under this suite's filterwarnings).
        monitor = OnlineAnomalyMonitor(
            [0], slot_s=900.0, slots_per_day=1, threshold_sigmas=3.0
        )
        for slot in range(50):
            monitor.observe(estimate(slot, [40.0]))
        alerts = monitor.observe(estimate(50, [39.0]))
        assert all(np.isfinite(a.z_score) for a in alerts)

    def test_obs_counters_record_slots_and_alerts(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.reset()
        obs_metrics.reset()
        obs_trace.enable()
        try:
            monitor = OnlineAnomalyMonitor(
                [0], slot_s=900.0, slots_per_day=4, threshold_sigmas=3.0
            )
            feed_days(monitor, 4, days=4)
            monitor.observe(estimate(16, [4.0]))
            snap = obs_metrics.registry().snapshot()
            assert snap["counters"]["anomaly.slots_observed"] == 17.0
            assert snap["counters"]["anomaly.alerts"] == 1.0
        finally:
            obs_trace.disable()
            obs_trace.reset()
            obs_metrics.reset()


class TestEndToEnd:
    def test_with_streaming_estimator(self, ground_truth):
        """Monitor runs on top of the streaming estimator's output."""
        from repro.core.streaming import StreamingEstimator
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        reports = FleetSimulator(
            ground_truth, FleetConfig(num_vehicles=40), seed=0
        ).run()
        streamer = StreamingEstimator(
            segment_ids=ground_truth.network.segment_ids,
            slot_s=ground_truth.grid.slot_s,
            window_slots=12,
            seed=0,
        )
        slots_per_day = int(86_400.0 / ground_truth.grid.slot_s)
        monitor = OnlineAnomalyMonitor(
            ground_truth.network.segment_ids,
            slot_s=ground_truth.grid.slot_s,
            slots_per_day=slots_per_day,
            threshold_sigmas=4.0,
        )
        for report in reports:
            for est in streamer.ingest(report):
                monitor.observe(est)
        # Normal traffic: few, ideally zero, alerts.
        assert len(monitor.alerts) < 20
