"""Tests for repro.roadnet.generators."""

import numpy as np
import pytest

from repro.roadnet.generators import (
    grid_city,
    ring_radial_city,
    shanghai_downtown_like,
    shanghai_inner_like,
    shenzhen_downtown_like,
)
from repro.roadnet.segment import RoadCategory


class TestGridCity:
    def test_segment_count(self):
        # (rows*(cols-1) + cols*(rows-1)) streets, two directions each.
        net = grid_city(3, 4, seed=0)
        streets = 3 * 3 + 4 * 2
        assert net.num_segments == streets * 2
        assert net.num_intersections == 12

    def test_unidirectional(self):
        net = grid_city(3, 3, bidirectional=False, seed=0)
        assert net.num_segments == (3 * 2 + 3 * 2)

    def test_strongly_connected(self):
        assert grid_city(4, 4, seed=0).is_strongly_connected()

    def test_deterministic_by_seed(self):
        a = grid_city(3, 3, seed=5)
        b = grid_city(3, 3, seed=5)
        assert [s.length_m for s in a.segments()] == [
            s.length_m for s in b.segments()
        ]

    def test_rejects_tiny_lattice(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)

    def test_has_arterials_and_locals(self):
        net = grid_city(6, 6, arterial_every=3, seed=0)
        cats = {s.category for s in net.segments()}
        assert RoadCategory.ARTERIAL in cats
        assert len(cats) >= 2

    def test_canyon_factors_valid(self):
        net = grid_city(5, 5, seed=1)
        factors = [s.canyon_factor for s in net.segments()]
        assert all(0.0 <= f <= 1.0 for f in factors)

    def test_canyon_stronger_downtown(self):
        net = grid_city(9, 9, seed=0)
        center = net.centroid()
        inner, outer = [], []
        for seg in net.segments():
            mid_x = (seg.start_point.x + seg.end_point.x) / 2
            mid_y = (seg.start_point.y + seg.end_point.y) / 2
            r = np.hypot(mid_x - center.x, mid_y - center.y)
            (inner if r < 400 else outer).append(seg.canyon_factor)
        assert np.mean(inner) > np.mean(outer)


class TestRingRadialCity:
    def test_counts(self):
        net = ring_radial_city(rings=2, radials=6, seed=0)
        assert net.num_intersections == 1 + 2 * 6
        # Each (ring, radial) contributes one arc + one spoke, both ways.
        assert net.num_segments == 2 * 6 * 2 * 2

    def test_strongly_connected(self):
        assert ring_radial_city(3, 8, seed=0).is_strongly_connected()

    def test_rejects_too_few_radials(self):
        with pytest.raises(ValueError):
            ring_radial_city(2, 2)


class TestNamedCities:
    def test_shanghai_downtown_exact_size(self):
        assert shanghai_downtown_like(seed=0).num_segments == 221

    def test_shenzhen_downtown_exact_size(self):
        assert shenzhen_downtown_like(seed=1).num_segments == 198

    @pytest.mark.slow
    def test_shanghai_inner_exact_size(self):
        assert shanghai_inner_like(seed=0).num_segments == 5_812

    def test_downtown_ids_dense(self):
        net = shanghai_downtown_like(seed=0)
        assert net.segment_ids == list(range(221))

    def test_downtown_mostly_connected(self):
        # Trimming may leave a few one-way stubs; the bulk of the
        # network must remain mutually reachable for routing.
        import networkx as nx

        net = shanghai_downtown_like(seed=0)
        graph = nx.DiGraph()
        for seg in net.segments():
            graph.add_edge(seg.start, seg.end)
        largest = max(nx.strongly_connected_components(graph), key=len)
        assert len(largest) >= 0.9 * net.num_intersections
