"""Tests for repro.mobility.shifts."""

import numpy as np
import pytest

from repro.mobility.shifts import ShiftSchedule, always_on, shanghai_two_shift


class TestShiftSchedule:
    def test_needs_24_entries(self):
        with pytest.raises(ValueError):
            ShiftSchedule(tuple([0.5] * 23))

    def test_entries_are_fractions(self):
        bad = [0.5] * 24
        bad[3] = 1.5
        with pytest.raises(ValueError):
            ShiftSchedule(tuple(bad))

    def test_duty_fraction_interpolates(self):
        duty = [0.0] * 24
        duty[10] = 1.0
        schedule = ShiftSchedule(tuple(duty))
        assert schedule.duty_fraction(10 * 3600.0) == pytest.approx(1.0)
        assert schedule.duty_fraction(10.5 * 3600.0) == pytest.approx(0.5)

    def test_daily_periodicity(self):
        schedule = shanghai_two_shift()
        t = 9.25 * 3600.0
        assert schedule.duty_fraction(t) == pytest.approx(
            schedule.duty_fraction(t + 86_400.0)
        )

    def test_sample_active_rate(self, rng):
        duty = [0.3] * 24
        schedule = ShiftSchedule(tuple(duty))
        active = schedule.sample_active(0.0, 5000, rng)
        assert active.mean() == pytest.approx(0.3, abs=0.03)

    def test_duty_windows_low_phase_always_on(self):
        schedule = shanghai_two_shift()
        windows = schedule.duty_windows(0.0, 0.0, 86_400.0)
        # Phase 0 is below every duty fraction -> one continuous window.
        assert windows == [(0.0, 86_400.0)]

    def test_duty_windows_high_phase_sparse(self):
        schedule = shanghai_two_shift()
        windows = schedule.duty_windows(0.93, 0.0, 86_400.0)
        total = sum(e - s for s, e in windows)
        assert total < 0.7 * 86_400.0

    def test_duty_windows_validation(self):
        schedule = always_on()
        with pytest.raises(ValueError):
            schedule.duty_windows(1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            schedule.duty_windows(0.5, 10.0, 10.0)


class TestPresets:
    def test_always_on(self):
        schedule = always_on()
        for hour in range(24):
            assert schedule.duty_fraction(hour * 3600.0) == 1.0

    def test_shanghai_changeover_dip(self):
        schedule = shanghai_two_shift()
        assert schedule.duty_fraction(16 * 3600.0) < schedule.duty_fraction(10 * 3600.0)
        assert schedule.duty_fraction(16 * 3600.0) < schedule.duty_fraction(19 * 3600.0)

    def test_shanghai_night_reduced(self):
        schedule = shanghai_two_shift()
        assert schedule.duty_fraction(3 * 3600.0) < 0.5


class TestFleetIntegration:
    def test_schedule_reduces_reports(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        full = FleetSimulator(
            ground_truth, FleetConfig(num_vehicles=10), seed=0
        ).run(0.0, 86_400.0)
        shifted = FleetSimulator(
            ground_truth,
            FleetConfig(num_vehicles=10, schedule=shanghai_two_shift()),
            seed=0,
        ).run(0.0, 86_400.0)
        assert len(shifted) < len(full)

    def test_changeover_dip_visible_in_coverage(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        shifted = FleetSimulator(
            ground_truth,
            FleetConfig(num_vehicles=30, schedule=shanghai_two_shift()),
            seed=0,
        ).run(0.0, 86_400.0)
        times = shifted.times_s
        # Reports per hour: the 03:00 hour must be quieter than 10:00.
        night = np.sum((times >= 3 * 3600.0) & (times < 4 * 3600.0))
        morning = np.sum((times >= 10 * 3600.0) & (times < 11 * 3600.0))
        assert night < morning
