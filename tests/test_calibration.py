"""Tests for repro.traffic.calibration."""

import numpy as np
import pytest

from repro.traffic.calibration import (
    SignatureCheck,
    extract_signature,
    signature_report,
    validate_signature,
)


class TestExtractSignature:
    def test_requires_complete(self, masked_tcm):
        with pytest.raises(ValueError, match="complete"):
            extract_signature(masked_tcm)

    def test_fields_finite(self, truth_tcm):
        sig = extract_signature(truth_tcm)
        assert 0 <= sig.knee_energy_5 <= 1
        assert 0 <= sig.sigma2_ratio <= 1
        assert sig.rank5_rmse_kmh >= 0
        assert 0 <= sig.noise_flow_fraction <= 1
        assert sig.speed_p5_kmh < sig.speed_p95_kmh

    def test_daily_correlation_range(self, truth_tcm):
        sig = extract_signature(truth_tcm)
        assert -1.0 <= sig.daily_correlation <= 1.0


class TestValidateSignature:
    def test_default_generator_passes(self, truth_tcm):
        """The shipped generator must satisfy the paper-derived bands."""
        checks = validate_signature(extract_signature(truth_tcm))
        failures = [c for c in checks if not c.passed]
        assert not failures, signature_report(checks)

    def test_white_noise_fails(self):
        """A structureless matrix must flunk the structural checks."""
        from repro.core.tcm import TimeGrid, TrafficConditionMatrix

        rng = np.random.default_rng(0)
        values = rng.uniform(3.0, 80.0, size=(96, 40))
        tcm = TrafficConditionMatrix(values, grid=TimeGrid(0.0, 1800.0, 96))
        checks = validate_signature(extract_signature(tcm))
        failed = {c.name for c in checks if not c.passed}
        assert "knee_energy_5" in failed or "leading_flow_periodic" in failed

    def test_report_format(self, truth_tcm):
        checks = validate_signature(extract_signature(truth_tcm))
        report = signature_report(checks)
        assert "traffic signature validation" in report
        for check in checks:
            assert check.name in report


class TestSignatureCheck:
    def test_passed_semantics(self):
        assert SignatureCheck("x", 0.5, 0.0, 1.0).passed
        assert not SignatureCheck("x", 1.5, 0.0, 1.0).passed
        assert SignatureCheck("x", 1.0, 0.0, 1.0).passed
