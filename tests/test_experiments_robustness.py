"""Tests for repro.experiments.robustness."""

import numpy as np
import pytest

from repro.experiments.robustness import RobustnessConfig, RobustnessResult, run_robustness


class TestConfig:
    def test_bad_integrity(self):
        with pytest.raises(ValueError):
            RobustnessConfig(integrity=0.0)

    def test_bad_noise(self):
        with pytest.raises(ValueError):
            RobustnessConfig(noise_levels_kmh=(-1.0,))


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness(
            RobustnessConfig(
                days=1.0,
                noise_levels_kmh=(0.0, 4.0),
                bias_levels_kmh=(0.0, -4.0),
                seed=0,
            )
        )

    def test_conditions_present(self, result):
        labels = set(result.errors)
        assert "uniform mask" in labels
        assert "structured mask" in labels
        assert "noise 4 km/h" in labels
        assert "bias -4 km/h" in labels

    def test_cs_best_under_uniform(self, result):
        cell = result.errors["uniform mask"]
        assert cell["compressive"] == min(cell.values())

    def test_structured_mask_harder(self, result):
        # Structured missingness (dark segments) is harder than uniform
        # for the CS algorithm.
        assert (
            result.errors["structured mask"]["compressive"]
            >= result.errors["uniform mask"]["compressive"]
        )

    def test_noise_hurts(self, result):
        assert (
            result.errors["noise 4 km/h"]["compressive"]
            > result.errors["uniform mask"]["compressive"]
        )

    def test_bias_hurts(self, result):
        assert (
            result.errors["bias -4 km/h"]["compressive"]
            > result.errors["uniform mask"]["compressive"]
        )

    def test_renders(self, result):
        text = result.render()
        assert "Robustness" in text
        assert "uniform mask" in text
