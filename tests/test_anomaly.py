"""Tests for repro.core.anomaly."""

import numpy as np
import pytest

from repro.core.anomaly import (
    AnomalyEvent,
    EigenflowAnomalyDetector,
    ResidualAnomalyDetector,
    match_events,
)
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.traffic.congestion import CongestionIncident
from repro.traffic.dynamics import TrafficDynamicsConfig, synthesize_tcm


def tcm_with_incident(network, severity=0.85, slots=(20, 23)):
    """Quiet ground truth plus one strong injected incident."""
    grid = TimeGrid.over_days(2.0, 1800.0)
    config = TrafficDynamicsConfig(
        noise_sigma=0.05,
        temporal_roughness=0.1,
        incident_rate_per_day=0.0,
    )
    incident = CongestionIncident(
        start_s=slots[0] * 1800.0,
        duration_s=(slots[1] - slots[0] + 1) * 1800.0,
        core_segment=3,
        affected={3: severity, 4: severity * 0.6},
    )
    return (
        synthesize_tcm(network, grid, config=config, seed=0, incidents=[incident]),
        incident,
    )


class TestResidualDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualAnomalyDetector(rank=0)
        with pytest.raises(ValueError):
            ResidualAnomalyDetector(threshold_sigmas=0.0)

    def test_requires_complete(self, masked_tcm):
        with pytest.raises(ValueError, match="complete"):
            ResidualAnomalyDetector().detect(masked_tcm)

    def test_detects_injected_incident(self, small_network):
        tcm, incident = tcm_with_incident(small_network)
        events = ResidualAnomalyDetector(rank=2, threshold_sigmas=3.0).detect(tcm)
        assert events, "incident must be detected"
        hit = [e for e in events if 20 <= e.slot <= 23]
        assert hit
        assert any(3 in e.segment_ids for e in hit)

    def test_quiet_matrix_few_events(self, small_network):
        grid = TimeGrid.over_days(1.0, 1800.0)
        config = TrafficDynamicsConfig(
            noise_sigma=0.05, temporal_roughness=0.05, incident_rate_per_day=0.0
        )
        tcm = synthesize_tcm(small_network, grid, config=config, seed=1)
        events = ResidualAnomalyDetector(rank=2, threshold_sigmas=4.0).detect(tcm)
        assert len(events) <= 2

    def test_constant_matrix_no_events(self):
        tcm = TrafficConditionMatrix(np.full((10, 4), 30.0))
        assert ResidualAnomalyDetector().detect(tcm) == []

    def test_events_sorted(self, small_network):
        tcm, _ = tcm_with_incident(small_network)
        events = ResidualAnomalyDetector(rank=2, threshold_sigmas=2.5).detect(tcm)
        slots = [e.slot for e in events]
        assert slots == sorted(slots)


class TestEigenflowDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            EigenflowAnomalyDetector(threshold_sigmas=0.0)
        with pytest.raises(ValueError):
            EigenflowAnomalyDetector(top_segments=0)

    def test_requires_complete(self, masked_tcm):
        with pytest.raises(ValueError, match="complete"):
            EigenflowAnomalyDetector().detect(masked_tcm)

    def test_detects_injected_incident(self, small_network):
        tcm, _ = tcm_with_incident(small_network, severity=0.9)
        events = EigenflowAnomalyDetector(threshold_sigmas=4.0).detect(tcm)
        assert any(19 <= e.slot <= 24 for e in events)

    def test_merges_same_slot(self, small_network):
        tcm, _ = tcm_with_incident(small_network, severity=0.9)
        events = EigenflowAnomalyDetector(threshold_sigmas=3.5).detect(tcm)
        slots = [e.slot for e in events]
        assert len(slots) == len(set(slots))


class TestMatchEvents:
    def test_perfect_detection(self):
        detected = [AnomalyEvent(slot=21, segment_ids=[3], score=5.0)]
        recall, precision = match_events(detected, [(20, 23)])
        assert recall == 1.0
        assert precision == 1.0

    def test_miss(self):
        detected = [AnomalyEvent(slot=5, segment_ids=[3], score=5.0)]
        recall, precision = match_events(detected, [(20, 23)])
        assert recall == 0.0
        assert precision == 0.0

    def test_tolerance(self):
        detected = [AnomalyEvent(slot=19, segment_ids=[3], score=5.0)]
        recall, _ = match_events(detected, [(20, 23)], slot_tolerance=1)
        assert recall == 1.0
        recall, _ = match_events(detected, [(20, 23)], slot_tolerance=0)
        assert recall == 0.0

    def test_no_truth(self):
        recall, precision = match_events([], [])
        assert np.isnan(recall)

    def test_no_detections(self):
        recall, precision = match_events([], [(1, 2)])
        assert recall == 0.0
        assert np.isnan(precision)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            match_events([], [(1, 2)], slot_tolerance=-1)
