"""Tests for repro.traffic.groundtruth."""

import numpy as np
import pytest

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.traffic.groundtruth import GroundTruthTraffic


class TestConstruction:
    def test_requires_complete_tcm(self, small_network):
        values = np.ones((4, small_network.num_segments)) * 30
        mask = np.ones_like(values, dtype=bool)
        mask[0, 0] = False
        tcm = TrafficConditionMatrix(
            values, mask, segment_ids=small_network.segment_ids
        )
        with pytest.raises(ValueError, match="complete"):
            GroundTruthTraffic(small_network, tcm)

    def test_requires_matching_ids(self, small_network):
        values = np.ones((4, 3)) * 30
        tcm = TrafficConditionMatrix(values, segment_ids=[0, 1, 2])
        with pytest.raises(ValueError, match="segment ids"):
            GroundTruthTraffic(small_network, tcm)

    def test_synthesize(self, small_network):
        grid = TimeGrid.over_days(0.5, 1800.0)
        truth = GroundTruthTraffic.synthesize(small_network, grid, seed=0)
        assert truth.grid == grid
        assert truth.tcm.is_complete


class TestSpeedLookup:
    def test_lookup_matches_matrix(self, ground_truth):
        grid = ground_truth.grid
        t = grid.start_s + 3.5 * grid.slot_s
        sid = ground_truth.network.segment_ids[5]
        expected = ground_truth.tcm.values[3, 5]
        assert ground_truth.speed_kmh(sid, t) == pytest.approx(expected)

    def test_clamps_before_start(self, ground_truth):
        sid = ground_truth.network.segment_ids[0]
        early = ground_truth.speed_kmh(sid, ground_truth.grid.start_s - 999.0)
        assert early == pytest.approx(ground_truth.tcm.values[0, 0])

    def test_clamps_after_end(self, ground_truth):
        sid = ground_truth.network.segment_ids[0]
        late = ground_truth.speed_kmh(sid, ground_truth.grid.end_s + 999.0)
        assert late == pytest.approx(ground_truth.tcm.values[-1, 0])

    def test_speeds_at_slot(self, ground_truth):
        row = ground_truth.speeds_at_slot(2)
        assert np.allclose(row, ground_truth.tcm.values[2])
        with pytest.raises(IndexError):
            ground_truth.speeds_at_slot(10_000)


class TestResample:
    def test_halves_slots(self, ground_truth):
        coarse = ground_truth.resample(3600.0)
        assert coarse.grid.slot_s == 3600.0
        assert coarse.grid.num_slots == ground_truth.grid.num_slots // 2

    def test_values_are_means(self, ground_truth):
        coarse = ground_truth.resample(3600.0)
        fine = ground_truth.tcm.values
        expected = (fine[0] + fine[1]) / 2
        assert np.allclose(coarse.tcm.values[0], expected)

    def test_identity_ratio(self, ground_truth):
        assert ground_truth.resample(ground_truth.grid.slot_s) is ground_truth

    def test_rejects_non_multiple(self, ground_truth):
        with pytest.raises(ValueError):
            ground_truth.resample(2500.0)

    def test_rejects_finer(self, ground_truth):
        with pytest.raises(ValueError):
            ground_truth.resample(900.0)

    def test_resample_preserves_mean(self, ground_truth):
        coarse = ground_truth.resample(3600.0)
        assert coarse.tcm.values.mean() == pytest.approx(
            ground_truth.tcm.values.mean(), rel=1e-9
        )
