"""Tests for repro.mobility.reporting."""

import numpy as np
import pytest

from repro.mobility.reporting import ReportingConfig


class TestReportingConfig:
    def test_interval_within_range(self, rng):
        config = ReportingConfig(interval_range_s=(30.0, 120.0))
        for _ in range(50):
            interval = config.draw_interval_s(rng)
            assert 30.0 <= interval <= 120.0

    def test_fixed_interval(self, rng):
        config = ReportingConfig(interval_range_s=(60.0, 60.0))
        assert config.draw_interval_s(rng) == 60.0

    def test_noisy_speed_never_negative(self, rng):
        config = ReportingConfig(speed_noise_kmh=20.0)
        speeds = [config.noisy_speed(1.0, rng) for _ in range(200)]
        assert min(speeds) >= 0.0

    def test_zero_noise_speed_identity(self, rng):
        config = ReportingConfig(speed_noise_kmh=0.0)
        assert config.noisy_speed(42.0, rng) == 42.0

    def test_noisy_position_spread(self, rng):
        config = ReportingConfig(position_noise_m=10.0)
        xs = [config.noisy_position(0.0, 0.0, rng)[0] for _ in range(500)]
        assert np.std(xs) == pytest.approx(10.0, rel=0.2)

    def test_zero_position_noise_identity(self, rng):
        config = ReportingConfig(position_noise_m=0.0)
        assert config.noisy_position(3.0, 4.0, rng) == (3.0, 4.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_range_s": (0.0, 60.0)},
            {"interval_range_s": (120.0, 60.0)},
            {"speed_noise_kmh": -1.0},
            {"position_noise_m": -1.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReportingConfig(**kwargs)
