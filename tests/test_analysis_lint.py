"""Tests for the repro_lint static analyzer (repro.analysis).

Each rule gets three fixtures: code that must trigger it, clean code
that must not, and a suppressed occurrence.  A final self-check asserts
the linter runs clean over the installed ``repro`` package itself.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import (
    REGISTRY,
    Finding,
    get_rules,
    lint_paths,
    lint_source,
)

SRC_ROOT = Path(repro.__file__).resolve().parent


def rules_hit(source, path="pkg/module.py"):
    """Set of rule names triggered on ``source``."""
    return {f.rule for f in lint_source(source, path=path).findings}


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
class TestRngDiscipline:
    def test_flags_global_rng_call(self):
        src = "import numpy as np\nx = np.random.default_rng().normal()\n"
        assert "rng-discipline" in rules_hit(src)

    def test_flags_legacy_seed_call(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert "rng-discipline" in rules_hit(src)

    def test_flags_numpy_random_import(self):
        src = "from numpy.random import default_rng\n"
        assert "rng-discipline" in rules_hit(src)

    def test_generator_type_reference_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return isinstance(seed, np.random.Generator)\n"
        )
        assert "rng-discipline" not in rules_hit(src)

    def test_generator_type_import_is_clean(self):
        src = "from numpy.random import Generator\n"
        assert "rng-discipline" not in rules_hit(src)

    def test_exempt_inside_rng_module(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_hit(src, path="src/repro/utils/rng.py") == set()

    def test_suppression_comment(self):
        src = (
            "import numpy as np\n"
            "x = np.random.default_rng()  # repro-lint: disable=rng-discipline\n"
        )
        report = lint_source(src)
        assert not report.findings
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------
class TestFloatEquality:
    def test_flags_equality_with_float_literal(self):
        assert "float-equality" in rules_hit("ok = den == 0.0\n")

    def test_flags_inequality_and_negative_literal(self):
        assert "float-equality" in rules_hit("ok = x != -1.5\n")

    def test_flags_nan_comparison(self):
        src = "import math\nbad = x == math.nan\n"
        assert "float-equality" in rules_hit(src)

    def test_integer_comparison_is_clean(self):
        assert "float-equality" not in rules_hit("ok = n == 0\n")

    def test_ordering_comparison_is_clean(self):
        assert "float-equality" not in rules_hit("ok = den <= 0.0\n")

    def test_suppression_comment(self):
        src = "ok = den == 0.0  # repro-lint: disable=float-equality\n"
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1

    def test_disable_next_line(self):
        src = (
            "# repro-lint: disable-next-line=float-equality\n"
            "ok = den == 0.0\n"
        )
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# param-mutation
# ----------------------------------------------------------------------
class TestParamMutation:
    def test_flags_augmented_assignment(self):
        src = "def f(arr):\n    arr += 1\n    return arr\n"
        assert "param-mutation" in rules_hit(src)

    def test_flags_slice_assignment(self):
        src = "def f(arr, idx):\n    arr[idx] = 0.0\n    return arr\n"
        assert "param-mutation" in rules_hit(src)

    def test_flags_inplace_method(self):
        src = "def f(arr):\n    arr.sort()\n    return arr\n"
        assert "param-mutation" in rules_hit(src)

    def test_local_mutation_is_clean(self):
        src = "def f(arr):\n    out = arr.copy()\n    out[0] = 1\n    return out\n"
        assert "param-mutation" not in rules_hit(src)

    def test_mutation_after_rebind_is_clean(self):
        src = (
            "def f(items):\n"
            "    items = list(items)\n"
            "    items.sort()\n"
            "    return items\n"
        )
        assert "param-mutation" not in rules_hit(src)

    def test_scalar_annotated_augassign_is_clean(self):
        src = "def f(t: float):\n    t += 1.0\n    return t\n"
        assert "param-mutation" not in rules_hit(src)

    def test_str_partition_is_clean(self):
        src = "def f(raw: str):\n    return raw.partition(':')\n"
        assert "param-mutation" not in rules_hit(src)

    def test_suppression_comment(self):
        src = (
            "def f(cache, k, v):\n"
            "    cache[k] = v  # repro-lint: disable=param-mutation\n"
        )
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# nan-unsafe-reduction
# ----------------------------------------------------------------------
class TestNanUnsafeReduction:
    def test_flags_np_reduction_of_raw_param(self):
        src = (
            "import numpy as np\n"
            "def f(values, mask):\n"
            "    return np.mean(values)\n"
        )
        assert "nan-unsafe-reduction" in rules_hit(src)

    def test_flags_method_reduction_of_raw_param(self):
        src = "def f(values, mask):\n    return values.sum()\n"
        assert "nan-unsafe-reduction" in rules_hit(src)

    def test_masked_reduction_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(values, mask):\n"
            "    return np.mean(values[mask])\n"
        )
        assert "nan-unsafe-reduction" not in rules_hit(src)

    def test_reducing_the_mask_itself_is_clean(self):
        src = "def f(values, mask):\n    return mask.sum()\n"
        assert "nan-unsafe-reduction" not in rules_hit(src)

    def test_no_mask_in_scope_is_clean(self):
        src = "import numpy as np\ndef f(values):\n    return np.mean(values)\n"
        assert "nan-unsafe-reduction" not in rules_hit(src)

    def test_rebound_param_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(values, mask):\n"
            "    values = np.where(mask, values, np.nan)\n"
            "    return np.nanmean(values)\n"
        )
        assert "nan-unsafe-reduction" not in rules_hit(src)

    def test_suppression_comment(self):
        src = (
            "import numpy as np\n"
            "def f(values, mask):\n"
            "    return np.mean(values)  # repro-lint: disable=nan-unsafe-reduction\n"
        )
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# bare-except
# ----------------------------------------------------------------------
class TestBareExcept:
    def test_flags_bare_except(self):
        src = "try:\n    x = 1\nexcept:\n    pass\n"
        assert "bare-except" in rules_hit(src)

    def test_typed_except_is_clean(self):
        src = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert "bare-except" not in rules_hit(src)

    def test_suppression_comment(self):
        src = (
            "try:\n"
            "    x = 1\n"
            "except:  # repro-lint: disable=bare-except\n"
            "    pass\n"
        )
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_flags_list_literal_default(self):
        assert "mutable-default" in rules_hit("def f(history=[]):\n    pass\n")

    def test_flags_dict_call_default(self):
        assert "mutable-default" in rules_hit("def f(cfg=dict()):\n    pass\n")

    def test_flags_numpy_buffer_default(self):
        src = "import numpy as np\ndef f(buf=np.zeros(3)):\n    pass\n"
        assert "mutable-default" in rules_hit(src)

    def test_flags_kwonly_default(self):
        assert "mutable-default" in rules_hit("def f(*, items={}):\n    pass\n")

    def test_none_default_is_clean(self):
        assert "mutable-default" not in rules_hit("def f(history=None):\n    pass\n")

    def test_tuple_default_is_clean(self):
        assert "mutable-default" not in rules_hit("def f(dims=()):\n    pass\n")

    def test_suppression_comment(self):
        src = "def f(history=[]):  # repro-lint: disable=mutable-default\n    pass\n"
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# wall-clock-timing
# ----------------------------------------------------------------------
class TestWallClockTiming:
    def test_flags_time_time_call(self):
        src = "import time\nstart = time.time()\n"
        assert "wall-clock-timing" in rules_hit(src)

    def test_flags_from_time_import_time(self):
        assert "wall-clock-timing" in rules_hit("from time import time\n")

    def test_perf_counter_is_clean(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert "wall-clock-timing" not in rules_hit(src)

    def test_other_time_imports_are_clean(self):
        assert "wall-clock-timing" not in rules_hit("from time import sleep\n")

    def test_monotonic_is_clean(self):
        src = "import time\nstamp = time.monotonic()\n"
        assert "wall-clock-timing" not in rules_hit(src)

    def test_suppression_comment(self):
        src = (
            "import time\n"
            "epoch = time.time()  # repro-lint: disable=wall-clock-timing\n"
        )
        report = lint_source(src)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# ingestion-loop
# ----------------------------------------------------------------------
class TestIngestionLoop:
    PROBES = "src/repro/probes/mapmatch.py"

    def test_flags_for_loop_over_batch(self):
        src = "def f(batch):\n    for r in batch:\n        print(r)\n"
        assert "ingestion-loop" in rules_hit(src, path=self.PROBES)

    def test_flags_comprehension_over_batch(self):
        src = "def f(batch):\n    return [r.x for r in batch]\n"
        assert "ingestion-loop" in rules_hit(src, path=self.PROBES)

    def test_flags_generator_over_reports(self):
        src = "def f(reports):\n    return sum(r.x for r in reports)\n"
        assert "ingestion-loop" in rules_hit(src, path=self.PROBES)

    def test_flags_zip_over_report_columns(self):
        src = (
            "def f(slots, segs, speeds):\n"
            "    for s, g, v in zip(slots, segs, speeds):\n"
            "        pass\n"
        )
        assert "ingestion-loop" in rules_hit(src, path=self.PROBES)

    def test_flags_zip_over_batch_attributes(self):
        src = (
            "def f(batch):\n"
            "    for t, x in zip(batch.times_s, batch.xs):\n"
            "        pass\n"
        )
        assert "ingestion-loop" in rules_hit(src, path=self.PROBES)

    def test_outside_probes_is_clean(self):
        src = "def f(batch):\n    for r in batch:\n        print(r)\n"
        assert "ingestion-loop" not in rules_hit(src, path="src/repro/core/x.py")

    def test_report_module_is_exempt(self):
        src = "def f(reports):\n    return [r.x for r in reports]\n"
        assert "ingestion-loop" not in rules_hit(
            src, path="src/repro/probes/report.py"
        )

    def test_attribute_reports_is_clean(self):
        src = (
            "def f(traj):\n"
            "    return [r.time_s for r in traj.reports]\n"
        )
        assert "ingestion-loop" not in rules_hit(src, path=self.PROBES)

    def test_zip_of_non_column_names_is_clean(self):
        src = (
            "def f(starts, ends):\n"
            "    return [(s, e) for s, e in zip(starts, ends)]\n"
        )
        assert "ingestion-loop" not in rules_hit(src, path=self.PROBES)

    def test_suppression_comment(self):
        src = (
            "def f(batch):\n"
            "    # repro-lint: disable-next-line=ingestion-loop\n"
            "    for r in batch:\n"
            "        print(r)\n"
        )
        report = lint_source(src, path=self.PROBES)
        assert not report.findings and len(report.suppressed) == 1


# ----------------------------------------------------------------------
# Runner / API behavior
# ----------------------------------------------------------------------
class TestRunner:
    def test_registry_has_at_least_six_rules(self):
        assert len(REGISTRY) >= 6

    def test_get_rules_unknown_name(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_rule_subset_only_runs_selected(self):
        src = "den == 0.0\ntry:\n    pass\nexcept:\n    pass\n"
        report = lint_source(src, rules=get_rules(["bare-except"]))
        assert {f.rule for f in report.findings} == {"bare-except"}

    def test_disable_all_wildcard(self):
        src = "ok = den == 0.0  # repro-lint: disable=all\n"
        assert not lint_source(src).findings

    def test_marker_inside_string_does_not_suppress(self):
        src = 's = "# repro-lint: disable=float-equality"\nok = den == 0.0\n'
        assert "float-equality" in rules_hit(src)

    def test_findings_sorted_and_located(self):
        src = "b = y == 2.0\na = x == 1.0\n"
        report = lint_source(src, path="m.py")
        assert [f.line for f in report.findings] == [1, 2]
        assert report.findings[0].location == "m.py:1:4"
        assert "float-equality" in report.findings[0].render()

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n")

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("ok = x == 0.5\n")
        report = lint_paths([tmp_path])
        assert len(report.findings) == 1
        assert report.findings[0].path.endswith("bad.py")

    def test_finding_as_tuple(self):
        f = Finding(path="a.py", line=3, col=4, rule="r", message="m")
        assert f.as_tuple() == ("a.py", 3, 4, "r")


class TestSelfCheck:
    def test_repro_package_lints_clean(self):
        """The linter's own package must pass its own rules."""
        report = lint_paths([SRC_ROOT])
        assert report.ok, "unsuppressed findings:\n" + report.render()

    def test_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        assert main(["lint", str(SRC_ROOT / "utils")]) == 0
        out = capsys.readouterr().out
        assert "finding(s)" in out

    def test_cli_lint_reports_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("ok = x == 0.5\n")
        from repro.cli import main

        assert main(["lint", str(bad)]) == 1
        assert "float-equality" in capsys.readouterr().out

    def test_cli_lint_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("ok = x == 0.5\n")
        from repro.cli import main

        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "float-equality"
        assert payload[0]["line"] == 1
