"""Tests for the runtime array-contract layer (repro.utils.contracts)."""

import numpy as np
import pytest

from repro.core.completion import CompressiveSensingCompleter
from repro.core.eigenflows import analyze_eigenflows
from repro.core.estimator import TrafficEstimator
from repro.core.tcm import TrafficConditionMatrix
from repro.utils.contracts import (
    ContractError,
    contracts_enabled,
    set_enabled,
    shapes,
)


@pytest.fixture
def checked():
    """Force contracts on for the test, restoring env-following after."""
    set_enabled(True)
    yield
    set_enabled(None)


@shapes("m n", "n r", "r")
def _fake_matmul(a, b, scale):
    return a @ (b * scale[None, :])


@shapes("m n:float", "m n:bool", finite=("values",))
def _fake_masked(values, mask):
    return values[mask]


class TestToggle:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not contracts_enabled()

    def test_env_var_enables(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_CHECK", value)
            assert contracts_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not contracts_enabled()

    def test_set_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        set_enabled(False)
        try:
            assert not contracts_enabled()
        finally:
            set_enabled(None)
        assert contracts_enabled()

    def test_no_checks_when_disabled(self):
        set_enabled(False)
        try:
            # Contract violations (NaN values) pass through untouched.
            values = np.array([[1.0, np.nan]])
            out = _fake_masked(values, np.ones((1, 2), dtype=bool))
            assert out.shape == (2,)
        finally:
            set_enabled(None)


class TestShapeSpecs:
    def test_consistent_dims_pass(self, checked):
        out = _fake_matmul(np.ones((4, 3)), np.ones((3, 2)), np.ones(2))
        assert out.shape == (4, 2)

    def test_rank_mismatch(self, checked):
        with pytest.raises(ContractError, match="must be 2-D"):
            _fake_matmul(np.ones(4), np.ones((3, 2)), np.ones(2))

    def test_dim_binding_conflict(self, checked):
        with pytest.raises(ContractError, match="dim 'r'"):
            _fake_matmul(np.ones((4, 3)), np.ones((3, 2)), np.ones(5))

    def test_dtype_family_float_rejects_strings(self, checked):
        with pytest.raises(ContractError, match="family"):
            _fake_masked(np.array([["a", "b"]]), np.ones((1, 2), dtype=bool))

    def test_dtype_family_bool_accepts_int_indicator(self, checked):
        values = np.ones((2, 2))
        mask = np.array([[1, 0], [0, 1]])
        # An int 0/1 indicator satisfies the "bool" dtype family; the
        # fancy-indexed result shape is numpy semantics, not under test.
        _fake_masked(values, mask)

    def test_finite_policy(self, checked):
        values = np.array([[1.0, np.nan]])
        with pytest.raises(ContractError, match="non-finite"):
            _fake_masked(values, np.ones((1, 2), dtype=bool))

    def test_none_arguments_skipped(self, checked):
        @shapes("m n", "m n")
        def f(a, b=None):
            return a

        assert f(np.ones((2, 2))).shape == (2, 2)

    def test_exact_and_wildcard_dims(self, checked):
        @shapes("* 3")
        def f(a):
            return a

        assert f(np.ones((7, 3))).shape == (7, 3)
        with pytest.raises(ContractError, match="size 3"):
            f(np.ones((7, 4)))

    def test_keyword_specs_and_call_styles(self, checked):
        @shapes(b="k")
        def f(a, b):
            return b

        assert f(1, b=np.ones(3)).shape == (3,)
        with pytest.raises(ContractError, match="1-D"):
            f(1, b=np.ones((3, 3)))

    def test_instance_spec(self, checked):
        class Payload:
            pass

        @shapes(Payload)
        def f(p):
            return p

        assert isinstance(f(Payload()), Payload)
        with pytest.raises(ContractError, match="must be Payload"):
            f(object())


class TestSpecValidationAtDecoration:
    def test_too_many_specs(self):
        with pytest.raises(ValueError, match="specs for"):

            @shapes("m", "n")
            def f(a):
                return a

    def test_unknown_keyword_spec(self):
        with pytest.raises(ValueError, match="no parameter named"):

            @shapes(b="m")
            def f(a):
                return a

    def test_unknown_finite_name(self):
        with pytest.raises(ValueError, match="finite names unknown"):

            @shapes("m", finite=("b",))
            def f(a):
                return a

    def test_bad_dim_token(self):
        with pytest.raises(ValueError, match="bad dim token"):

            @shapes("m$")
            def f(a):
                return a

    def test_bad_dtype_family(self):
        with pytest.raises(ValueError, match="unknown dtype family"):

            @shapes("m:quaternion")
            def f(a):
                return a


class TestCoreEntryPoints:
    def test_completer_rejects_mismatched_mask(self, checked):
        completer = CompressiveSensingCompleter(iterations=2, seed=0)
        with pytest.raises(ContractError, match="dim"):
            completer.complete(np.zeros((4, 3)), np.ones((3, 4), dtype=bool))

    def test_completer_accepts_tcm_input(self, checked):
        rng = np.random.default_rng(0)
        x = rng.normal(30.0, 5.0, (12, 6))
        mask = rng.random((12, 6)) < 0.7
        tcm = TrafficConditionMatrix(np.where(mask, x, 0.0), mask)
        result = CompressiveSensingCompleter(iterations=3, seed=0).complete(tcm)
        assert result.estimate.shape == (12, 6)

    def test_tcm_rejects_wrong_rank(self, checked):
        with pytest.raises(ContractError, match="2-D"):
            TrafficConditionMatrix(np.zeros(5))

    def test_eigenflows_reject_nan(self, checked):
        bad = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ContractError, match="non-finite"):
            analyze_eigenflows(bad)

    def test_estimator_rejects_raw_array(self, checked):
        estimator = TrafficEstimator(iterations=2, seed=0)
        with pytest.raises(ContractError, match="TrafficConditionMatrix"):
            estimator.estimate(np.zeros((4, 3)))

    @pytest.mark.parametrize(
        "baseline",
        ["NaiveKNN", "CorrelationKNN", "MSSA", "HistoricalMean", "LinearInterpolation"],
    )
    def test_baselines_reject_shape_mismatch(self, checked, baseline):
        import repro.baselines as baselines

        algo = getattr(baselines, baseline)()
        with pytest.raises(ContractError, match="dim"):
            algo.complete(np.zeros((4, 3)), np.ones((3, 4), dtype=bool))

    @pytest.mark.parametrize(
        "baseline",
        ["NaiveKNN", "CorrelationKNN", "MSSA", "HistoricalMean", "LinearInterpolation"],
    )
    def test_baselines_reject_nonfinite_values(self, checked, baseline):
        import repro.baselines as baselines

        algo = getattr(baselines, baseline)()
        values = np.full((6, 4), np.nan)
        mask = np.zeros((6, 4), dtype=bool)
        with pytest.raises(ContractError, match="non-finite"):
            algo.complete(values, mask)


class TestMetadataPreserved:
    def test_wraps_keeps_name_and_doc(self):
        assert _fake_matmul.__name__ == "_fake_matmul"
        completer = CompressiveSensingCompleter(iterations=2, seed=0)
        assert "Algorithm 1" in (completer.complete.__doc__ or "")
