"""Tests for repro.scale.sharded (per-shard completion + stitching)."""

import numpy as np
import pytest

from repro.core.completion import CompressiveSensingCompleter
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.roadnet.generators import grid_city
from repro.scale import (
    GridPartitioner,
    ShardedCompleter,
    ShardedEstimator,
    SinglePartitioner,
    contiguous_shards,
)

RANK, LAM, ITERS = 2, 10.0, 12


@pytest.fixture(scope="module")
def network():
    return grid_city(5, 5, seed=0)


@pytest.fixture(scope="module")
def measured(network):
    rng = np.random.default_rng(7)
    n = network.num_segments
    slots = 20
    truth = rng.uniform(0.6, 1.4, (slots, RANK)) @ rng.uniform(15.0, 45.0, (RANK, n))
    mask = rng.random((slots, n)) < 0.4
    return TrafficConditionMatrix(
        np.where(mask, truth, 0.0),
        mask,
        grid=TimeGrid(0.0, 600.0, slots),
        segment_ids=network.segment_ids,
    )


def _exact_completer(**kw):
    kw.setdefault("seed", 0)
    return ShardedCompleter(
        rank=RANK, lam=LAM, iterations=ITERS, seed_iterations=0,
        center=True, clip_min=0.0, clip_max=150.0, **kw,
    )


def _multilevel_completer(**kw):
    kw.setdefault("seed", 0)
    return ShardedCompleter(
        rank=RANK, lam=LAM, seed_iterations=3, warm_iterations=4,
        center=True, clip_min=0.0, clip_max=150.0, **kw,
    )


def _mono_estimate(measured):
    mono = CompressiveSensingCompleter(
        rank=RANK, lam=LAM, iterations=ITERS,
        center=True, clip_min=0.0, clip_max=150.0, seed=0,
    )
    return mono.complete(measured.values, measured.mask).estimate


class TestExactRegime:
    def test_single_shard_equals_monolithic(self, network, measured):
        shards = SinglePartitioner().partition(network)
        result = _exact_completer().complete(measured, shards)
        assert result.mode == "exact"
        assert np.array_equal(result.estimate, _mono_estimate(measured))

    def test_halo_zero_equals_monolithic_per_shard(self, network, measured):
        shards = GridPartitioner(4, halo=0).partition(network)
        result = _exact_completer().complete(measured, shards)
        mono = CompressiveSensingCompleter(
            rank=RANK, lam=LAM, iterations=ITERS,
            center=True, clip_min=0.0, clip_max=150.0, seed=0,
        )
        col_of = {sid: j for j, sid in enumerate(measured.segment_ids)}
        for shard in shards:
            cols = np.array([col_of[s] for s in shard.all_ids])
            sub = mono.complete(
                np.ascontiguousarray(measured.values[:, cols]),
                np.ascontiguousarray(measured.mask[:, cols]),
            )
            assert np.array_equal(result.estimate[:, cols], sub.estimate)


class TestMultilevelRegime:
    def test_serial_equals_pool(self, network, measured):
        shards = GridPartitioner(4, halo=1).partition(network)
        serial = _multilevel_completer().complete(measured, shards)
        pooled = _multilevel_completer(max_workers=3).complete(measured, shards)
        assert serial.mode == "multilevel"
        assert np.array_equal(serial.estimate, pooled.estimate)

    def test_shard_input_order_irrelevant(self, network, measured):
        shards = GridPartitioner(4, halo=1).partition(network)
        forward = _multilevel_completer().complete(measured, shards)
        backward = _multilevel_completer().complete(
            measured, list(reversed(shards))
        )
        assert np.array_equal(forward.estimate, backward.estimate)

    def test_estimate_is_complete_and_clipped(self, network, measured):
        shards = GridPartitioner(4, halo=1).partition(network)
        result = _multilevel_completer().complete(measured, shards)
        assert result.estimate.shape == measured.values.shape
        assert np.isfinite(result.estimate).all()
        assert result.estimate.min() >= 0.0
        assert result.estimate.max() <= 150.0
        assert result.seed_objective is not None
        assert result.stitch_s >= 0.0

    def test_shard_summaries(self, network, measured):
        shards = GridPartitioner(4, halo=1).partition(network)
        result = _multilevel_completer().complete(measured, shards)
        assert [s.shard_id for s in result.shards] == list(
            range(len(shards))
        )
        assert sum(s.num_core for s in result.shards) == network.num_segments
        assert all(s.observed_cells > 0 for s in result.shards)

    def test_multilevel_tracks_monolithic(self, network, measured):
        """Stitched multilevel estimate stays close to the monolithic one
        on the unobserved cells (the quantity the paper's NMAE scores)."""
        shards = GridPartitioner(4, halo=1).partition(network)
        result = _multilevel_completer().complete(measured, shards)
        mono = _mono_estimate(measured)
        missing = ~measured.mask
        nmae_delta = np.abs(
            result.estimate[missing] - mono[missing]
        ).sum() / np.abs(mono[missing]).sum()
        assert nmae_delta < 0.25

    def test_geometry_free_contiguous_shards(self, measured):
        shards = contiguous_shards(measured.segment_ids, 3)
        result = _multilevel_completer().complete(measured, shards)
        assert result.estimate.shape == measured.values.shape


class TestValidation:
    def test_bad_seed_iterations(self):
        with pytest.raises(ValueError, match="seed_iterations"):
            ShardedCompleter(seed_iterations=-1)

    def test_bad_warm_iterations(self):
        with pytest.raises(ValueError, match="warm_iterations"):
            ShardedCompleter(warm_iterations=0)

    def test_bad_solver_fails_eagerly(self):
        with pytest.raises((KeyError, ValueError)):
            ShardedCompleter(solver="no-such-solver")

    def test_mismatched_shards_rejected(self, network, measured):
        shards = contiguous_shards([1, 2, 3], 2)
        with pytest.raises(ValueError):
            _exact_completer().complete(measured, shards)


class TestShardedEstimator:
    def test_estimate_returns_complete_tcm(self, network, measured):
        est = ShardedEstimator(
            network, shards=4, halo=1, rank=RANK, lam=LAM,
            seed_iterations=3, warm_iterations=4, seed=0,
        )
        assert est.num_shards >= 1
        output = est.estimate(measured)
        assert output.estimate.is_complete
        assert list(output.estimate.segment_ids) == list(network.segment_ids)
        assert output.estimate.grid == measured.grid
        assert output.completion.mode == "multilevel"
        assert output.measurements is measured

    def test_segment_mismatch_rejected(self, network):
        est = ShardedEstimator(network, shards=2, seed=0)
        other = TrafficConditionMatrix(
            np.ones((4, 3)),
            grid=TimeGrid(0.0, 600.0, 4),
            segment_ids=[0, 1, 2],
        )
        with pytest.raises(ValueError, match="segment ids"):
            est.estimate(other)

    def test_exact_regime_matches_monolithic(self, network, measured):
        est = ShardedEstimator(
            network, shards=1, partitioner="single", rank=RANK, lam=LAM,
            iterations=ITERS, seed_iterations=0, seed=0,
        )
        output = est.estimate(measured)
        assert output.completion.mode == "exact"
        assert np.array_equal(output.estimate.values, _mono_estimate(measured))
