"""Tests for repro.probes.report."""

import numpy as np
import pytest

from repro.probes.report import ProbeReport, ReportBatch


def make_reports():
    return [
        ProbeReport(vehicle_id=1, time_s=30.0, x=0.0, y=0.0, speed_kmh=20.0, segment_id=3),
        ProbeReport(vehicle_id=2, time_s=10.0, x=1.0, y=1.0, speed_kmh=0.5, segment_id=-1),
        ProbeReport(vehicle_id=1, time_s=20.0, x=2.0, y=2.0, speed_kmh=35.0, segment_id=4),
    ]


class TestProbeReport:
    def test_has_segment(self):
        assert ProbeReport(0, 0.0, 0, 0, 10.0, segment_id=5).has_segment
        assert not ProbeReport(0, 0.0, 0, 0, 10.0).has_segment

    def test_default_segment_unknown(self):
        assert ProbeReport(0, 0.0, 0, 0, 10.0).segment_id == -1

    def test_heading_optional(self):
        bare = ProbeReport(0, 0.0, 0, 0, 10.0)
        assert not bare.has_heading
        with_heading = ProbeReport(0, 0.0, 0, 0, 10.0, heading_deg=90.0)
        assert with_heading.has_heading
        assert with_heading.heading_deg == 90.0

    def test_batch_headings_column(self):
        batch = ReportBatch(
            [
                ProbeReport(0, 0.0, 0, 0, 10.0, heading_deg=45.0),
                ProbeReport(0, 1.0, 0, 0, 10.0),
            ]
        )
        assert batch.headings_deg[0] == 45.0
        assert np.isnan(batch.headings_deg[1])


class TestReportBatch:
    def test_sorted_by_time(self):
        batch = ReportBatch(make_reports())
        assert list(batch.times_s) == [10.0, 20.0, 30.0]

    def test_len_and_iter(self):
        batch = ReportBatch(make_reports())
        assert len(batch) == 3
        assert len(list(batch)) == 3

    def test_getitem(self):
        batch = ReportBatch(make_reports())
        assert batch[0].time_s == 10.0

    def test_columnar_arrays(self):
        batch = ReportBatch(make_reports())
        assert batch.vehicle_ids.dtype == np.int64
        assert list(batch.segment_ids) == [-1, 4, 3]

    def test_empty_batch(self):
        batch = ReportBatch([])
        assert len(batch) == 0
        assert batch.num_vehicles == 0
        assert batch.time_span_s() == 0.0
        assert batch.times_s.shape == (0,)

    def test_num_vehicles(self):
        assert ReportBatch(make_reports()).num_vehicles == 2

    def test_time_span(self):
        assert ReportBatch(make_reports()).time_span_s() == 20.0

    def test_for_vehicle(self):
        sub = ReportBatch(make_reports()).for_vehicle(1)
        assert len(sub) == 2
        assert all(r.vehicle_id == 1 for r in sub)

    def test_filter_speed(self):
        fast = ReportBatch(make_reports()).filter_speed(5.0)
        assert len(fast) == 2
        assert all(r.speed_kmh >= 5.0 for r in fast)

    def test_with_matched_segments(self):
        batch = ReportBatch(make_reports())
        matched = batch.with_matched_segments([7, 8, 9])
        assert list(matched.segment_ids) == [7, 8, 9]

    def test_with_matched_segments_length_checked(self):
        with pytest.raises(ValueError):
            ReportBatch(make_reports()).with_matched_segments([1, 2])

    def test_subsample_vehicles(self):
        sub = ReportBatch(make_reports()).subsample_vehicles([2])
        assert len(sub) == 1
        assert sub[0].vehicle_id == 2

    def test_subsample_empty_set(self):
        assert len(ReportBatch(make_reports()).subsample_vehicles([])) == 0
