"""Tests for repro.baselines.interpolation."""

import numpy as np
import pytest

from repro.baselines.interpolation import HistoricalMean, LinearInterpolation


class TestHistoricalMean:
    def test_fills_with_column_mean(self):
        values = np.array([[2.0, 0.0], [4.0, 0.0], [0.0, 0.0]])
        mask = np.array([[True, False], [True, False], [False, False]])
        out = HistoricalMean().complete(values, mask)
        assert out[2, 0] == pytest.approx(3.0)

    def test_empty_column_uses_global_mean(self):
        values = np.array([[2.0, 0.0], [4.0, 0.0]])
        mask = np.array([[True, False], [True, False]])
        out = HistoricalMean().complete(values, mask)
        assert np.allclose(out[:, 1], 3.0)

    def test_observed_pass_through(self):
        values = np.array([[2.0, 5.0], [4.0, 0.0]])
        mask = np.array([[True, True], [True, False]])
        out = HistoricalMean().complete(values, mask)
        assert out[0, 1] == 5.0

    def test_all_missing(self):
        out = HistoricalMean().complete(np.zeros((2, 2)), np.zeros((2, 2), bool))
        assert np.all(out == 0.0)


class TestLinearInterpolation:
    def test_interpolates_between(self):
        values = np.array([[10.0], [0.0], [30.0]])
        mask = np.array([[True], [False], [True]])
        out = LinearInterpolation().complete(values, mask)
        assert out[1, 0] == pytest.approx(20.0)

    def test_holds_endpoints_flat(self):
        values = np.array([[0.0], [10.0], [0.0]])
        mask = np.array([[False], [True], [False]])
        out = LinearInterpolation().complete(values, mask)
        assert out[0, 0] == 10.0
        assert out[2, 0] == 10.0

    def test_empty_column_global_mean(self):
        values = np.array([[4.0, 0.0], [6.0, 0.0]])
        mask = np.array([[True, False], [True, False]])
        out = LinearInterpolation().complete(values, mask)
        assert np.allclose(out[:, 1], 5.0)

    def test_complete_column_untouched(self):
        values = np.array([[1.0], [2.0], [3.0]])
        mask = np.ones((3, 1), dtype=bool)
        assert np.allclose(LinearInterpolation().complete(values, mask), values)

    def test_observed_pass_through(self, truth_tcm):
        from repro.datasets.masks import random_integrity_mask

        mask = random_integrity_mask(truth_tcm.shape, 0.4, seed=0)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = LinearInterpolation().complete(measured, mask)
        assert np.allclose(out[mask], measured[mask])
