"""Tests for repro.core.eigenflows."""

import numpy as np
import pytest

from repro.core.eigenflows import (
    EigenflowType,
    analyze_eigenflows,
    classify_eigenflow,
    has_spike,
    reconstruct_from_types,
)
from tests.conftest import make_low_rank


class TestHasSpike:
    def test_flat_signal_no_spike(self):
        assert not has_spike(np.ones(50))

    def test_gaussian_noise_no_spike(self):
        assert not has_spike(np.random.default_rng(0).normal(size=200))

    def test_injected_spike_detected(self):
        signal = np.random.default_rng(0).normal(size=200)
        signal[37] += 30 * signal.std()
        assert has_spike(signal)

    def test_short_signal(self):
        assert not has_spike(np.array([1.0]))

    def test_threshold_configurable(self):
        signal = np.zeros(100)
        signal[3] = 1.0
        # One outlier in a hundred zeros: z ~ 10 sigma.
        assert has_spike(signal, threshold_sigmas=4.0)
        assert not has_spike(signal, threshold_sigmas=20.0)


class TestClassifyEigenflow:
    def test_periodic_signal_is_type1(self):
        t = np.arange(256)
        u = np.sin(2 * np.pi * t / 32)
        assert classify_eigenflow(u) == EigenflowType.PERIODIC

    def test_spike_signal_is_type2(self):
        u = np.random.default_rng(1).normal(size=256) * 0.1
        u[100] = 10.0
        assert classify_eigenflow(u) == EigenflowType.SPIKE

    def test_noise_is_type3(self):
        u = np.random.default_rng(2).normal(size=256)
        assert classify_eigenflow(u) == EigenflowType.NOISE

    def test_periodic_with_offset_still_type1(self):
        # The DC bin must not mask the periodic spike test.
        t = np.arange(256)
        u = 5.0 + np.sin(2 * np.pi * t / 16)
        assert classify_eigenflow(u) == EigenflowType.PERIODIC

    def test_constant_offset_alone_is_not_periodic(self):
        u = np.full(128, 3.0) + np.random.default_rng(3).normal(0, 0.1, 128)
        assert classify_eigenflow(u) != EigenflowType.PERIODIC


class TestAnalyzeEigenflows:
    def test_reconstruct_all_components_recovers_matrix(self):
        x = make_low_rank(24, 10, 3)
        analysis = analyze_eigenflows(x)
        full = analysis.reconstruct(range(analysis.num_flows))
        assert np.allclose(full, x, atol=1e-8)

    def test_type_counts_sum(self):
        x = np.random.default_rng(4).normal(size=(30, 12))
        analysis = analyze_eigenflows(x)
        counts = analysis.type_counts()
        assert sum(counts.values()) == analysis.num_flows

    def test_max_flows(self):
        x = np.random.default_rng(5).normal(size=(30, 12))
        analysis = analyze_eigenflows(x, max_flows=4)
        assert analysis.num_flows == 4
        with pytest.raises(ValueError):
            analyze_eigenflows(x, max_flows=0)

    def test_empty_reconstruction_is_zero(self):
        x = make_low_rank(10, 6, 2)
        analysis = analyze_eigenflows(x)
        zero = analysis.reconstruct([])
        assert zero.shape == x.shape
        assert np.all(zero == 0)

    def test_indices_partition(self):
        x = np.random.default_rng(6).normal(size=(40, 15))
        analysis = analyze_eigenflows(x)
        all_indices = sorted(
            i for t in EigenflowType for i in analysis.indices_of_type(t)
        )
        assert all_indices == list(range(analysis.num_flows))

    def test_type_reconstructions_sum_to_matrix(self):
        x = make_low_rank(20, 8, 2) + np.random.default_rng(7).normal(
            scale=0.01, size=(20, 8)
        )
        analysis = analyze_eigenflows(x)
        total = sum(
            reconstruct_from_types(analysis, t) for t in EigenflowType
        )
        assert np.allclose(total, x, atol=1e-8)


class TestOnTrafficData:
    def test_traffic_matrix_leading_flow_periodic(self, truth_tcm):
        analysis = analyze_eigenflows(truth_tcm.values)
        # The dominant eigenflow of a diurnal TCM must be periodic.
        assert analysis.types[0] == EigenflowType.PERIODIC

    def test_traffic_matrix_mostly_noise_tail(self, truth_tcm):
        analysis = analyze_eigenflows(truth_tcm.values)
        counts = analysis.type_counts()
        assert counts[EigenflowType.NOISE] > counts[EigenflowType.PERIODIC]
