"""Tests for repro.obs.metrics: instruments, registry, exporters."""

import json
import math

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def _clean_obs():
    trace.disable()
    trace.reset()
    metrics.reset()
    yield
    trace.disable()
    trace.reset()
    metrics.reset()


class TestCounter:
    def test_monotonic(self):
        c = metrics.Counter("jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            metrics.Counter("jobs").inc(-1)

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            metrics.Counter("")
        with pytest.raises(ValueError):
            metrics.Counter("has space")


class TestGauge:
    def test_last_write_wins(self):
        g = metrics.Gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_add(self):
        g = metrics.Gauge("level")
        g.add(1.5)
        g.add(-0.5)
        assert g.value == 1.0


class TestHistogram:
    def test_aggregates(self):
        h = metrics.Histogram("iters", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 555.5
        assert h.mean == pytest.approx(555.5 / 4)
        payload = h.to_payload()
        assert payload["min"] == 0.5 and payload["max"] == 500
        # Cumulative buckets: each bound counts everything at or below it.
        assert payload["buckets"] == {"1": 1, "10": 2, "100": 3}

    def test_empty_histogram_payload(self):
        payload = metrics.Histogram("empty").to_payload()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None

    def test_rejects_empty_or_nan_buckets(self):
        with pytest.raises(ValueError):
            metrics.Histogram("h", buckets=())
        with pytest.raises(ValueError):
            metrics.Histogram("h", buckets=(1.0, math.nan))


class TestRegistry:
    def test_instruments_created_once(self):
        reg = metrics.MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_snapshot_shape(self):
        reg = metrics.MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("workers").set(2)
        reg.histogram("iters", buckets=(10,)).observe(4)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3.0}
        assert snap["gauges"] == {"workers": 2.0}
        assert snap["histograms"]["iters"]["count"] == 1
        assert snap["histograms"]["iters"]["buckets"] == {"10": 1}

    def test_jsonl_one_object_per_line(self):
        reg = metrics.MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        reg.gauge("g").set(1)
        lines = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert [(d["kind"], d["name"]) for d in lines] == [
            ("counter", "a"), ("counter", "z"), ("gauge", "g"),
        ]

    def test_prometheus_format(self):
        reg = metrics.MetricsRegistry()
        reg.counter("cache.hits").inc(7)
        reg.gauge("pool.workers").set(2)
        h = reg.histogram("als.iters", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        text = reg.to_prometheus()
        assert "# TYPE cache_hits counter\ncache_hits 7" in text
        assert "# TYPE pool_workers gauge\npool_workers 2" in text
        assert 'als_iters_bucket{le="10"} 1' in text
        assert 'als_iters_bucket{le="100"} 2' in text
        assert 'als_iters_bucket{le="+Inf"} 2' in text
        assert "als_iters_sum 55" in text
        assert "als_iters_count 2" in text
        assert text.endswith("\n")

    def test_render_prometheus_from_stored_snapshot(self):
        # The obs-export path: a manifest's metrics section round-trips
        # through JSON before rendering (keys become strings).
        snap = {
            "counters": {"n": 1.0},
            "gauges": {},
            "histograms": {
                "h": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                      "buckets": {"1": 1, "10": 2}},
            },
        }
        rendered = metrics.render_prometheus(json.loads(json.dumps(snap)))
        assert 'h_bucket{le="1"} 1' in rendered
        assert 'h_bucket{le="+Inf"} 2' in rendered

    def test_empty_registry_renders_empty(self):
        assert metrics.MetricsRegistry().to_prometheus() == ""
        assert metrics.MetricsRegistry().to_jsonl() == ""


class TestZeroCostConveniences:
    def test_noop_while_disabled(self):
        metrics.inc("c")
        metrics.set_gauge("g", 1)
        metrics.observe("h", 1)
        assert len(metrics.registry()) == 0

    def test_record_while_enabled(self):
        trace.enable()
        metrics.inc("c", 2)
        metrics.set_gauge("g", 3)
        metrics.observe("h", 4)
        snap = metrics.registry().snapshot()
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 3.0
        assert snap["histograms"]["h"]["count"] == 1
