"""Tests for the whole-program lint pass and its CLI surface.

The centrepiece is the regression fixture for the PR-4
``apps/congestion.py`` bug: ``np.mean`` over a comprehension of an
unsorted set.  Here the bug is reintroduced *behind a helper call* —
the worker passes the set, the helper iterates it — which only the
interprocedural effect pass can see.  The finding must carry a >= 2-hop
provenance chain rendered by ``repro lint --explain`` and by SARIF
``codeFlows``.

Also covered: transitive worker-shared-state and fork-unsafe-rng,
suppression of program findings, the ``unused-suppression`` audit, the
dtype-drift rule pack, changed-set scoping, and CLI exit codes.
"""

import json

import pytest

from repro.analysis import lint_paths, lint_source, lint_sources, to_sarif
from repro.cli import main


# The PR-4 congestion bug, one helper-call deep: the worker builds the
# cluster as a set and the helper's np.mean iterates it unsorted.
CONGESTION_REGRESSION = """\
import numpy as np
from concurrent.futures import ProcessPoolExecutor


def cluster_mean(cluster, row, col_of):
    return float(np.mean([row[col_of[s]] for s in cluster]))


def hotspot_worker(row, col_of, congested):
    cluster = {s for s in congested if row[col_of[s]] > 0.5}
    return cluster_mean(cluster, row, col_of)


def scan(rows, col_of, congested):
    with ProcessPoolExecutor() as ex:
        futures = [
            ex.submit(hotspot_worker, row, col_of, congested) for row in rows
        ]
    return [f.result() for f in futures]
"""


def rules_hit(source, path="pkg/module.py"):
    return {f.rule for f in lint_source(source, path=path).findings}


class TestCongestionRegression:
    def test_caught_with_two_hop_provenance(self):
        report = lint_source(CONGESTION_REGRESSION, path="apps/congestion.py")
        findings = [f for f in report.findings if f.rule == "unordered-iteration"]
        assert len(findings) == 1
        finding = findings[0]
        # Anchored at the submission site, traced to the helper's mean.
        assert finding.line == 17
        assert len(finding.trace) >= 3  # submit -> worker calls helper -> mean
        assert "submits worker 'hotspot_worker'" in finding.trace[0].note
        assert "calls cluster_mean()" in finding.trace[1].note
        assert "cluster" in finding.trace[-1].note

    def test_explain_renders_numbered_chain(self):
        report = lint_source(CONGESTION_REGRESSION, path="apps/congestion.py")
        rendered = report.render(explain=True)
        assert "1. apps/congestion.py:17" in rendered
        assert "calls cluster_mean()" in rendered
        # Without explain the chain stays off the terse output.
        assert "calls cluster_mean()" not in report.render()

    def test_sarif_code_flow_walks_the_chain(self):
        report = lint_source(CONGESTION_REGRESSION, path="apps/congestion.py")
        log = to_sarif(report)
        results = [
            r
            for r in log["runs"][0]["results"]
            if r["ruleId"] == "unordered-iteration"
        ]
        assert len(results) == 1
        flows = results[0]["codeFlows"]
        locations = flows[0]["threadFlows"][0]["locations"]
        assert len(locations) >= 3
        notes = [loc["location"]["message"]["text"] for loc in locations]
        assert any("submits worker" in n for n in notes)
        assert any("calls cluster_mean" in n for n in notes)
        lines = [
            loc["location"]["physicalLocation"]["region"]["startLine"]
            for loc in locations
        ]
        assert lines[0] == 17  # submission site leads the flow

    def test_sorted_cluster_is_clean(self):
        fixed = CONGESTION_REGRESSION.replace("for s in cluster", "for s in sorted(cluster)")
        report = lint_source(fixed, path="apps/congestion.py")
        assert not [f for f in report.findings if f.rule == "unordered-iteration"]


class TestTransitiveWorkerRules:
    def test_shared_state_through_helper(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "RESULTS = {}\n"
            "def record(key, value):\n"
            "    RESULTS[key] = value\n"
            "def work(key):\n"
            "    record(key, key * 2)\n"
            "def run(keys):\n"
            "    with ThreadPoolExecutor() as ex:\n"
            "        return [ex.submit(work, k) for k in keys]\n"
        )
        report = lint_source(src)
        findings = [f for f in report.findings if f.rule == "worker-shared-state"]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert any("RESULTS" in frame.note for frame in findings[0].trace)

    def test_direct_hazard_not_doubled_by_program_pass(self):
        # A hazard in the worker body itself is the per-module rule's
        # job; the transitive rule only fires at hops >= 1.
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "RESULTS = {}\n"
            "def work(key):\n"
            "    RESULTS[key] = key * 2\n"
            "def run(keys):\n"
            "    with ThreadPoolExecutor() as ex:\n"
            "        return [ex.submit(work, k) for k in keys]\n"
        )
        report = lint_source(src)
        findings = [f for f in report.findings if f.rule == "worker-shared-state"]
        assert len(findings) == 1  # per-module finding only
        assert findings[0].trace == ()

    def test_fork_unsafe_rng_through_helper_process_backend(self):
        src = (
            "import numpy as np\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def draw():\n"
            "    return np.random.random()\n"
            "def work(i):\n"
            "    return draw() + i\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        return [ex.submit(work, i) for i in items]\n"
        )
        report = lint_source(src)
        assert "fork-unsafe-rng" in {f.rule for f in report.findings}

    def test_fork_unsafe_rng_not_fired_for_thread_backend(self):
        src = (
            "import numpy as np\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def draw():\n"
            "    return np.random.random()\n"
            "def work(i):\n"
            "    return draw() + i\n"
            "def run(items):\n"
            "    with ThreadPoolExecutor() as ex:\n"
            "        return [ex.submit(work, i) for i in items]\n"
        )
        report = lint_source(src)
        transitive = [
            f for f in report.findings if f.rule == "fork-unsafe-rng" and f.trace
        ]
        assert transitive == []

    def test_worker_drawing_from_passed_rng_is_clean(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(rng):\n"
            "    return rng.normal()\n"
            "def run(rngs):\n"
            "    with ProcessPoolExecutor() as ex:\n"
            "        return [ex.submit(work, r) for r in rngs]\n"
        )
        report = lint_source(src)
        assert "fork-unsafe-rng" not in {f.rule for f in report.findings}

    def test_program_finding_suppressible_at_submit_site(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "RESULTS = {}\n"
            "def record(key, value):\n"
            "    RESULTS[key] = value\n"
            "def work(key):\n"
            "    record(key, key * 2)\n"
            "def run(keys):\n"
            "    with ThreadPoolExecutor() as ex:\n"
            "        # repro-lint: disable-next-line=worker-shared-state\n"
            "        return [ex.submit(work, k) for k in keys]\n"
        )
        report = lint_source(src)
        assert "worker-shared-state" not in {f.rule for f in report.findings}
        assert "worker-shared-state" in {f.rule for f in report.suppressed}


class TestEffectContractCli:
    def test_violation_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n"
            "from repro.utils.contracts import effects\n"
            "def noisy():\n"
            "    return np.random.random()\n"
            "@effects('pure')\n"
            "def kernel(x):\n"
            "    return x + noisy()\n"
        )
        rc = main(["lint", str(bad), "--explain"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "effect-contract" in out
        assert "calls noisy()" in out  # --explain prints the chain

    def test_satisfied_contract_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text(
            "from repro.utils.contracts import effects\n"
            "@effects('pure')\n"
            "def kernel(a, b):\n"
            "    return a + b\n"
        )
        assert main(["lint", str(good)]) == 0


class TestUnusedSuppression:
    def test_stale_suppression_flagged_at_comment_line(self):
        src = "x = 1  # repro-lint: disable=float-equality\n"
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["unused-suppression"]
        assert report.findings[0].line == 1

    def test_live_suppression_not_flagged(self):
        src = "ok = den == 0.0  # repro-lint: disable=float-equality\n"
        report = lint_source(src)
        assert not report.findings
        assert len(report.suppressed) == 1

    def test_unknown_rule_name_flagged_as_typo(self):
        src = "ok = den == 0.0  # repro-lint: disable=float-equality,flaot-equality\n"
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["unused-suppression"]
        assert "unknown rule" in report.findings[0].message

    def test_disable_next_line_reports_comment_line(self):
        src = "# repro-lint: disable-next-line=bare-except\nx = 1\n"
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["unused-suppression"]
        assert report.findings[0].line == 1

    def test_audit_skipped_for_rule_restricted_runs(self):
        from repro.analysis import get_rules

        src = "x = 1  # repro-lint: disable=float-equality\n"
        report = lint_source(src, rules=get_rules(["float-equality"]))
        assert not report.findings

    def test_partially_used_multi_name_comment(self):
        src = "ok = den == 0.0  # repro-lint: disable=float-equality,bare-except\n"
        report = lint_source(src)
        assert [f.rule for f in report.findings] == ["unused-suppression"]
        assert "'bare-except'" in report.findings[0].message


class TestDtypeRules:
    def test_upcast_allocator_in_hot_path(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    out = np.zeros(x.shape[0])\n"
            "    return out\n"
        )
        assert "dtype-upcast-in-hot-path" in rules_hit(src)

    def test_tied_allocator_is_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    return np.zeros(x.shape[0], dtype=x.dtype)\n"
        )
        assert "dtype-upcast-in-hot-path" not in rules_hit(src)

    def test_explicit_astype_float64_flagged(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    return x.astype(np.float64)\n"
        )
        assert "dtype-upcast-in-hot-path" in rules_hit(src)

    def test_allocator_outside_hot_path_is_clean(self):
        src = "import numpy as np\ndef f(n):\n    return np.zeros(n)\n"
        assert "dtype-upcast-in-hot-path" not in rules_hit(src)

    def test_implicit_float64_literal(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel():\n"
            "    return np.array([0.5, 1.0])\n"
        )
        assert "implicit-float64-literal" in rules_hit(src)

    def test_int_literals_are_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel():\n"
            "    return np.array([1, 2, 3])\n"
        )
        assert "implicit-float64-literal" not in rules_hit(src)

    def test_dtype_dropping_op(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    tied = np.zeros(3, dtype=x.dtype)\n"
            "    wide = np.ones(3)\n"
            "    return tied + wide\n"
        )
        assert "dtype-dropping-op" in rules_hit(src)

    def test_both_tied_is_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    a = np.zeros(3, dtype=x.dtype)\n"
            "    b = np.ones(3, dtype=x.dtype)\n"
            "    return a + b\n"
        )
        assert "dtype-dropping-op" not in rules_hit(src)

    def test_suppressed_dtype_finding(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import hot_path\n"
            "@hot_path\n"
            "def kernel(x):\n"
            "    return np.zeros(3)  # repro-lint: disable=dtype-upcast-in-hot-path\n"
        )
        report = lint_source(src)
        assert "dtype-upcast-in-hot-path" not in {f.rule for f in report.findings}
        assert "dtype-upcast-in-hot-path" in {f.rule for f in report.suppressed}


class TestChangedScoping:
    HELPER = "def helper(xs):\n    return sum(x for x in xs)\n"
    WORKER = (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "from helper import helper\n"
        "def work(values):\n"
        "    return helper(set(values))\n"
        "def run(items):\n"
        "    with ThreadPoolExecutor() as ex:\n"
        "        return [ex.submit(work, i) for i in items]\n"
    )

    def test_changed_worker_checked_against_unchanged_helper(self):
        report = lint_sources(
            [("helper.py", self.HELPER), ("worker.py", self.WORKER)],
            changed={"worker.py"},
        )
        assert "unordered-iteration" in {f.rule for f in report.findings}
        assert all(f.path == "worker.py" for f in report.findings)

    def test_unchanged_files_produce_no_findings(self):
        # A hazard anchored in an unchanged file stays out of the report.
        report = lint_sources(
            [("helper.py", self.HELPER), ("worker.py", self.WORKER)],
            changed={"helper.py"},
        )
        assert report.findings == []

    def test_empty_changed_set_reports_nothing(self):
        report = lint_sources(
            [("helper.py", self.HELPER), ("worker.py", self.WORKER)],
            changed=set(),
        )
        assert report.findings == []
        assert report.suppressed == []

    def test_lint_paths_changed_accepts_relative_and_absolute(self, tmp_path):
        helper = tmp_path / "helper.py"
        worker = tmp_path / "worker.py"
        helper.write_text(self.HELPER)
        worker.write_text(self.WORKER)
        report = lint_paths([tmp_path], changed=[str(worker.resolve())])
        assert "unordered-iteration" in {f.rule for f in report.findings}

    def test_cli_changed_with_no_changes_exits_zero(self, tmp_path, capsys, monkeypatch):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q", "-b", "main"], check=True)
        subprocess.run(["git", "config", "user.email", "t@example.com"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        (tmp_path / "mod.py").write_text("x = 1\n")
        subprocess.run(["git", "add", "."], check=True)
        subprocess.run(["git", "commit", "-q", "-m", "seed"], check=True)
        rc = main(["lint", str(tmp_path), "--changed", "--base", "HEAD"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no Python files changed" in out

    def test_cli_changed_reports_only_changed_file(self, tmp_path, capsys, monkeypatch):
        import subprocess

        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q", "-b", "main"], check=True)
        subprocess.run(["git", "config", "user.email", "t@example.com"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        (tmp_path / "helper.py").write_text(self.HELPER)
        subprocess.run(["git", "add", "."], check=True)
        subprocess.run(["git", "commit", "-q", "-m", "seed"], check=True)
        (tmp_path / "worker.py").write_text(self.WORKER)  # untracked = changed
        rc = main(["lint", str(tmp_path), "--changed", "--base", "HEAD"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "worker.py" in out
        assert "unordered-iteration" in out

    def test_cli_update_baseline_rejects_changed(self, tmp_path, capsys):
        rc = main(
            [
                "lint",
                str(tmp_path),
                "--changed",
                "--baseline",
                str(tmp_path / "b.json"),
                "--update-baseline",
            ]
        )
        assert rc == 2
        assert "full run" in capsys.readouterr().err


class TestJsonTrace:
    def test_json_output_carries_trace(self, tmp_path, capsys):
        mod = tmp_path / "congestion.py"
        mod.write_text(CONGESTION_REGRESSION)
        rc = main(["lint", str(mod), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        transitive = [
            f for f in payload if f["rule"] == "unordered-iteration" and f["trace"]
        ]
        assert transitive
        assert len(transitive[0]["trace"]) >= 3
