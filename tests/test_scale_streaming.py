"""Tests for repro.scale.streaming (sharded sliding-window estimation)."""

import numpy as np
import pytest

from repro.probes.report import ProbeReport, ReportBatch
from repro.roadnet.generators import grid_city
from repro.scale import ShardedStreamingEstimator


@pytest.fixture(scope="module")
def network():
    return grid_city(4, 4, seed=0)


def _make_estimator(network, **kw):
    kw.setdefault("shards", 2)
    kw.setdefault("halo", 0)
    kw.setdefault("slot_s", 600.0)
    kw.setdefault("window_slots", 4)
    kw.setdefault("warm_iterations", 3)
    kw.setdefault("cold_iterations", 6)
    kw.setdefault("seed", 0)
    return ShardedStreamingEstimator(network, **kw)


def _reports(network, slots=6, per_slot=30, seed=0, segment_pool=None):
    """Synthetic time-ordered reports spread over the network."""
    rng = np.random.default_rng(seed)
    pool = list(segment_pool or network.segment_ids)
    reports = []
    for slot in range(slots):
        for k in range(per_slot):
            sid = int(pool[rng.integers(0, len(pool))])
            reports.append(
                ProbeReport(
                    vehicle_id=k,
                    time_s=slot * 600.0 + float(rng.uniform(0.0, 599.0)),
                    x=0.0,
                    y=0.0,
                    speed_kmh=float(rng.uniform(15.0, 60.0)),
                    segment_id=sid,
                )
            )
    reports.sort(key=lambda r: r.time_s)
    return reports


class TestIngest:
    def test_batch_closes_slots(self, network):
        est = _make_estimator(network)
        closed = est.ingest_many(_reports(network, slots=6))
        assert len(closed) == 5  # last slot still open
        assert est.estimates == closed
        n = network.num_segments
        for slot_est in closed:
            assert slot_est.speeds_kmh.shape == (n,)
            assert np.isfinite(slot_est.speeds_kmh).all()
            assert 0.0 < slot_est.observed_fraction <= 1.0
        assert est.recompletions > 0

    def test_flush_closes_open_slot(self, network):
        est = _make_estimator(network)
        est.ingest_many(_reports(network, slots=2))
        before = len(est.estimates)
        final = est.flush()
        assert len(est.estimates) == before + 1
        assert final is est.estimates[-1]

    def test_scalar_ingest_matches_batch(self, network):
        reports = _reports(network, slots=4, per_slot=20)
        batch_est = _make_estimator(network)
        batch_est.ingest_many(reports)
        scalar_est = _make_estimator(network)
        for report in reports:
            scalar_est.ingest(report)
        assert len(batch_est.estimates) == len(scalar_est.estimates)
        for a, b in zip(batch_est.estimates, scalar_est.estimates):
            assert a.slot_start_s == b.slot_start_s
            assert np.array_equal(a.speeds_kmh, b.speeds_kmh)
            assert a.observed_fraction == b.observed_fraction

    def test_late_reports_dropped(self, network):
        est = _make_estimator(network)
        est.ingest_many(_reports(network, slots=3))
        stale = ProbeReport(
            vehicle_id=0, time_s=0.0, x=0.0, y=0.0,
            speed_kmh=40.0, segment_id=int(network.segment_ids[0]),
        )
        assert est.ingest(stale) == []

    def test_unknown_and_idle_reports_filtered(self, network):
        est = _make_estimator(network, min_speed_kmh=2.0)
        batch = ReportBatch([
            ProbeReport(0, 10.0, 0.0, 0.0, speed_kmh=40.0, segment_id=10_000),
            ProbeReport(1, 20.0, 0.0, 0.0, speed_kmh=0.5,
                        segment_id=int(network.segment_ids[0])),
            ProbeReport(2, 30.0, 0.0, 0.0, speed_kmh=40.0, segment_id=-1),
        ])
        est.ingest_batch(batch)
        assert est._counts.sum() == 0

    def test_trailing_dropped_reports_advance_clock(self, network):
        est = _make_estimator(network)
        batch = ReportBatch([
            ProbeReport(0, 100.0, 0.0, 0.0, speed_kmh=40.0,
                        segment_id=int(network.segment_ids[0])),
            ProbeReport(1, 1300.0, 0.0, 0.0, speed_kmh=40.0, segment_id=-1),
        ])
        closed = est.ingest_batch(batch)
        assert len(closed) == 2  # slots 0 and 1 closed by the stale report


class TestDirtyShardSkip:
    def test_quiet_shards_skip_recompletion(self, network):
        est = _make_estimator(network, shards=2)
        assert est.num_shards == 2
        quiet = est.shards[1]
        pool = est.shards[0].core_ids  # traffic only on shard 0
        est.ingest_many(_reports(network, slots=5, segment_pool=pool))
        assert est.recompletions_skipped > 0
        assert est.recompletions > 0
        # The quiet shard still publishes (zero) estimates for its columns.
        col_of = {sid: j for j, sid in enumerate(est.segment_ids)}
        cols = [col_of[s] for s in quiet.core_ids]
        for slot_est in est.estimates:
            assert np.all(slot_est.speeds_kmh[cols] == 0.0)

    def test_all_shards_dirty_when_covered(self, network):
        est = _make_estimator(network, shards=2)
        est.ingest_many(_reports(network, slots=4, per_slot=120))
        assert est.recompletions_skipped == 0


class TestDeterminism:
    def test_same_seed_same_stream(self, network):
        runs = []
        for _ in range(2):
            est = _make_estimator(network, shards=3, halo=1)
            est.ingest_many(_reports(network, slots=5))
            est.flush()
            runs.append(np.vstack([e.speeds_kmh for e in est.estimates]))
        assert np.array_equal(runs[0], runs[1])

    def test_halo_partition_stitches(self, network):
        est = _make_estimator(network, shards=3, halo=1)
        assert any(s.halo_ids for s in est.shards)
        closed = est.ingest_many(_reports(network, slots=4, per_slot=80))
        assert closed
        for slot_est in closed:
            assert np.isfinite(slot_est.speeds_kmh).all()
