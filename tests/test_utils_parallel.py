"""Tests for the shared worker-pool helper (repro.utils.parallel)."""

import pytest

from repro.utils.parallel import (
    BACKENDS,
    available_workers,
    parallel_map,
    resolve_workers,
)


def _square(x):
    return x * x


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None, 8) == 1

    def test_zero_means_serial(self):
        assert resolve_workers(0, 8) == 1

    def test_one_means_serial(self):
        assert resolve_workers(1, 8) == 1

    def test_capped_by_item_count(self):
        assert resolve_workers(16, 3) == 3

    def test_explicit_count(self):
        assert resolve_workers(2, 8) == 2

    def test_no_items_no_workers(self):
        assert resolve_workers(4, 0) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_workers(-1, 4)


class TestParallelMap:
    def test_serial_default_preserves_order(self):
        assert parallel_map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_with_serial(self, backend):
        items = list(range(10))
        expected = [_square(x) for x in items]
        got = parallel_map(_square, items, max_workers=2, backend=backend)
        assert got == expected

    def test_thread_pool_preserves_submission_order(self):
        # Reverse-sorted sleep-free workload: ordering must come from
        # submission order, not completion order.
        items = list(range(20, 0, -1))
        got = parallel_map(_square, items, max_workers=4, backend="thread")
        assert got == [_square(x) for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, [], max_workers=4) == []

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            parallel_map(_square, [1], max_workers=2, backend="gpu")

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("worker failure")

        with pytest.raises(RuntimeError, match="worker failure"):
            parallel_map(boom, [1, 2], max_workers=2, backend="thread")

    def test_available_workers_positive(self):
        assert available_workers() >= 1
