"""Tests for repro.baselines.mssa."""

import numpy as np
import pytest

from repro.baselines.mssa import MSSA, _block_hankel, _diagonal_average
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae


class TestHankel:
    def test_shape(self):
        x = np.arange(12, dtype=float).reshape(6, 2)
        h = _block_hankel(x, window=3)
        assert h.shape == (4, 6)

    def test_values(self):
        x = np.arange(5, dtype=float)[:, None]
        h = _block_hankel(x, window=2)
        assert np.allclose(h, [[0, 1], [1, 2], [2, 3], [3, 4]])

    def test_window_too_large_rejected(self):
        with pytest.raises(ValueError):
            _block_hankel(np.ones((3, 1)), window=5)


class TestDiagonalAverage:
    def test_inverts_hankel(self):
        series = np.random.default_rng(0).normal(size=10)
        h = _block_hankel(series[:, None], window=4)
        back = _diagonal_average(h, 10)
        assert np.allclose(back, series)

    def test_averages_conflicts(self):
        block = np.array([[1.0, 3.0], [1.0, 5.0]])
        out = _diagonal_average(block, 3)
        assert out[0] == 1.0
        assert out[1] == 2.0  # mean of 3 and 1
        assert out[2] == 5.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 1},
            {"components": 0},
            {"max_iterations": 0},
            {"tol": 0.0},
            {"solver": "magic"},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MSSA(**kwargs)


class TestComplete:
    def test_observed_cells_pass_through(self, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.5, seed=0)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = MSSA(window=8, components=3, max_iterations=3, solver="truncated").complete(
            measured, mask
        )
        assert np.allclose(out[mask], measured[mask])

    def test_recovers_periodic_signal(self):
        t = np.arange(96)
        channels = [10 + 3 * np.sin(2 * np.pi * t / 24 + phi) for phi in (0, 1, 2)]
        x = np.column_stack(channels)
        mask = random_integrity_mask(x.shape, 0.5, seed=1)
        out = MSSA(window=24, components=4, max_iterations=10, solver="truncated").complete(
            np.where(mask, x, 0.0), mask
        )
        assert nmae(x, out, ~mask) < 0.05

    def test_solvers_agree(self, truth_tcm):
        sub = truth_tcm.values[:48, :10]
        mask = random_integrity_mask(sub.shape, 0.5, seed=2)
        measured = np.where(mask, sub, 0.0)
        cov = MSSA(window=8, components=3, max_iterations=4, solver="covariance").complete(
            measured, mask
        )
        trunc = MSSA(window=8, components=3, max_iterations=4, solver="truncated").complete(
            measured, mask
        )
        # Both project onto the same top singular subspace.
        assert nmae(cov, trunc, ~mask) < 0.02

    def test_all_missing_returns_zeros(self):
        out = MSSA(window=4).complete(np.zeros((8, 2)), np.zeros((8, 2), dtype=bool))
        assert np.all(out == 0)

    def test_complete_matrix_passthrough(self):
        x = np.random.default_rng(3).uniform(1, 5, (20, 4))
        out = MSSA(window=6, solver="truncated").complete(x, np.ones_like(x, dtype=bool))
        assert np.allclose(out, x)

    def test_short_series_degenerates_gracefully(self):
        x = np.array([[1.0, 2.0]])
        mask = np.array([[True, False]])
        out = MSSA(window=24).complete(x, mask)
        assert np.all(np.isfinite(out))

    def test_window_clamped_to_series(self):
        x = np.tile(np.arange(6, dtype=float)[:, None] + 1, (1, 3))
        mask = random_integrity_mask(x.shape, 0.7, seed=4)
        out = MSSA(window=24, components=2, solver="truncated").complete(
            np.where(mask, x, 0.0), mask
        )
        assert np.all(np.isfinite(out))


class TestMethodEquivalence:
    @pytest.mark.parametrize("solver", ["truncated", "covariance"])
    def test_vectorized_matches_scalar(self, truth_tcm, solver):
        mask = random_integrity_mask(truth_tcm.shape, 0.4, seed=3)
        measured = np.where(mask, truth_tcm.values, 0.0)
        fast = MSSA(solver=solver, max_iterations=3).complete(measured, mask)
        slow = MSSA(solver=solver, max_iterations=3, method="scalar").complete(
            measured, mask
        )
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            MSSA(method="nope")
