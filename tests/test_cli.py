"""Tests for repro.cli."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import load_tcm, save_tcm


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd, extra in [
            ("gen-network", ["out.json"]),
            ("gen-dataset", ["net.json", "prefix"]),
            ("estimate", ["in.npz", "out.npz"]),
            ("evaluate", ["t.npz", "e.npz"]),
            ("integrity", ["in.npz"]),
            ("experiments", []),
        ]:
            args = parser.parse_args([cmd] + extra)
            assert callable(args.func)


class TestGenNetwork:
    def test_grid(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        assert main(["gen-network", str(out), "--rows", "3", "--cols", "3"]) == 0
        assert out.exists()
        assert "segments" in capsys.readouterr().out

    def test_ring(self, tmp_path):
        out = tmp_path / "ring.json"
        assert main([
            "gen-network", str(out), "--kind", "ring", "--rings", "2", "--radials", "4",
        ]) == 0
        from repro.roadnet.io import load_network

        net = load_network(out)
        assert net.num_segments > 0


class TestPipeline:
    @pytest.fixture()
    def network_path(self, tmp_path):
        out = tmp_path / "net.json"
        main(["gen-network", str(out), "--rows", "4", "--cols", "4"])
        return out

    def test_gen_dataset_estimate_evaluate(self, network_path, tmp_path, capsys):
        prefix = tmp_path / "data"
        rc = main([
            "gen-dataset", str(network_path), str(prefix),
            "--days", "0.25", "--vehicles", "40", "--slot-s", "900",
        ])
        assert rc == 0
        truth = tmp_path / "data-truth.npz"
        measured = tmp_path / "data-measured.npz"
        assert truth.exists() and measured.exists()

        estimate = tmp_path / "estimate.npz"
        rc = main([
            "estimate", str(measured), str(estimate),
            "--iterations", "20", "--lam", "10",
        ])
        assert rc == 0
        est = load_tcm(estimate)
        assert est.is_complete

        rc = main([
            "evaluate", str(truth), str(estimate), "--measured", str(measured),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NMAE" in out

    def test_sharded_estimate_with_network(self, network_path, tmp_path, capsys):
        prefix = tmp_path / "data"
        main([
            "gen-dataset", str(network_path), str(prefix),
            "--days", "0.25", "--vehicles", "40", "--slot-s", "900",
        ])
        measured = tmp_path / "data-measured.npz"
        estimate = tmp_path / "sharded.npz"
        rc = main([
            "estimate", str(measured), str(estimate),
            "--shards", "4", "--halo", "1", "--network", str(network_path),
            "--iterations", "20", "--lam", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards" in out and "multilevel" in out
        assert load_tcm(estimate).is_complete

    def test_sharded_estimate_without_network_uses_contiguous(
        self, network_path, tmp_path, capsys
    ):
        prefix = tmp_path / "d2"
        main([
            "gen-dataset", str(network_path), str(prefix),
            "--days", "0.25", "--vehicles", "40", "--slot-s", "900",
        ])
        estimate = tmp_path / "sharded2.npz"
        rc = main([
            "estimate", str(tmp_path / "d2-measured.npz"), str(estimate),
            "--shards", "3", "--partitioner", "contiguous",
            "--iterations", "20", "--lam", "10",
        ])
        assert rc == 0
        assert load_tcm(estimate).is_complete
        capsys.readouterr()

    def test_sharded_estimate_rejects_auto_tune(self, tmp_path, capsys):
        from repro.core.tcm import TrafficConditionMatrix

        rng = np.random.default_rng(0)
        values = rng.uniform(10.0, 60.0, (6, 8))
        mask = rng.random((6, 8)) < 0.5
        src = tmp_path / "m.npz"
        save_tcm(TrafficConditionMatrix(np.where(mask, values, 0.0)), src)
        rc = main([
            "estimate", str(src), str(tmp_path / "o.npz"),
            "--shards", "2", "--auto-tune",
        ])
        assert rc == 2
        assert "auto-tune" in capsys.readouterr().err

    def test_integrity_report(self, network_path, tmp_path, capsys):
        prefix = tmp_path / "d"
        main([
            "gen-dataset", str(network_path), str(prefix),
            "--days", "0.25", "--vehicles", "20", "--slot-s", "900",
        ])
        rc = main(["integrity", str(tmp_path / "d-measured.npz")])
        assert rc == 0
        assert "overall integrity" in capsys.readouterr().out

    def test_evaluate_shape_mismatch(self, tmp_path, capsys):
        from repro.core.tcm import TrafficConditionMatrix

        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        save_tcm(TrafficConditionMatrix(np.ones((2, 2))), a)
        save_tcm(TrafficConditionMatrix(np.ones((3, 2))), b)
        assert main(["evaluate", str(a), str(b)]) == 2


class TestPlanCommand:
    def test_plan_route(self, tmp_path, capsys):
        from repro.core.tcm import TimeGrid, TrafficConditionMatrix
        from repro.roadnet.generators import grid_city
        from repro.roadnet.io import save_network

        network = grid_city(3, 3, seed=0)
        net_path = tmp_path / "net.json"
        save_network(network, net_path)
        tcm = TrafficConditionMatrix(
            np.full((4, network.num_segments), 36.0),
            grid=TimeGrid(0.0, 900.0, 4),
            segment_ids=network.segment_ids,
        )
        tcm_path = tmp_path / "est.npz"
        save_tcm(tcm, tcm_path)

        rc = main(["plan", str(net_path), str(tcm_path), "0", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "route 0 -> 8" in out


class TestAnomaliesCommand:
    def test_detects_on_complete(self, tmp_path, capsys, truth_tcm):
        path = tmp_path / "tcm.npz"
        save_tcm(truth_tcm, path)
        rc = main(["anomalies", str(path), "--threshold", "3.0"])
        assert rc == 0
        assert "anomalous slot" in capsys.readouterr().out

    def test_rejects_partial(self, tmp_path, masked_tcm):
        path = tmp_path / "partial.npz"
        save_tcm(masked_tcm, path)
        assert main(["anomalies", str(path)]) == 2


class TestReportCommand:
    def test_parser_accepts(self):
        parser = build_parser()
        args = parser.parse_args(["report", "out.md", "--profile", "quick"])
        assert args.output == "out.md"


class TestLintCommand:
    DIRTY = "def total(values):\n    return sum(v for v in set(values))\n"
    CLEAN = "def total(values):\n    return sum(sorted(set(values)))\n"

    def test_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        clean = tmp_path / "clean.py"
        clean.write_text(self.CLEAN)
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(dirty)]) == 1
        assert main(["lint", str(tmp_path / "missing.py")]) == 2
        assert main(["lint", str(dirty), "--rules", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_sarif_output_file(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        out = tmp_path / "out.sarif"
        rc = main(["lint", str(dirty), "--format", "sarif", "--output", str(out)])
        assert rc == 1  # findings still fail the run
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]
        capsys.readouterr()

    def test_sarif_exit_2_on_usage_error(self, tmp_path, capsys):
        # CI's SARIF render step treats exit 1 as "findings rendered" and
        # anything else as a real failure; usage errors must stay exit 2
        # in SARIF mode too.
        missing = tmp_path / "missing.py"
        rc = main(["lint", str(missing), "--format", "sarif"])
        assert rc == 2
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        assert main(["lint", str(dirty), "--format", "sarif",
                     "--rules", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_baseline_roundtrip(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.DIRTY)
        baseline = tmp_path / "base.json"
        # --update-baseline records and exits 0; the next run is covered.
        assert main(
            ["lint", str(dirty), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
        # A new finding is not covered and fails.
        dirty.write_text(self.DIRTY + "\ndef t2(v):\n    return sum(x for x in set(v))\n")
        assert main(["lint", str(dirty), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_update_baseline_requires_baseline(self, capsys):
        assert main(["lint", "--update-baseline"]) == 2
        capsys.readouterr()

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(self.CLEAN)
        bad = tmp_path / "base.json"
        bad.write_text("not json")
        assert main(["lint", str(dirty), "--baseline", str(bad)]) == 2
        capsys.readouterr()


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        # --manifest flips the process-global switch; leave no residue.
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.disable()
        obs_trace.reset()
        obs_metrics.reset()
        yield
        obs_trace.disable()
        obs_trace.reset()
        obs_metrics.reset()

    def _write_manifest(self, tmp_path):
        from repro.obs import manifest, metrics as obs_metrics, trace as obs_trace

        obs_trace.enable()
        with obs_trace.span("run_all", profile="smoke"):
            with obs_trace.span("job.alpha"):
                obs_metrics.inc("als.completions")
        payload = manifest.build_manifest(
            "run-all", config={"profile": "smoke"}, seed=0,
            jobs=manifest.jobs_from_spans(obs_trace.collector().snapshot()),
        )
        return manifest.write_manifest(payload, tmp_path / "m.json")

    def test_parser_accepts_manifest_flags(self):
        parser = build_parser()
        for argv in (
            ["experiments", "--manifest", "m.json"],
            ["bench", "--smoke", "--manifest", "m.json"],
            ["verify-determinism", "--smoke", "--manifest", "m.json"],
            ["trace", "summarize", "m.json", "--top", "5"],
            ["obs", "export", "m.json", "--what", "metrics",
             "--format", "prometheus"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_trace_summarize_round_trip(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kind=run-all" in out
        assert "per-phase rollup" in out
        assert "job.alpha" in out

    def test_trace_summarize_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_summarize_rejects_non_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"hello\": 1}")
        assert main(["trace", "summarize", str(bad)]) == 2
        capsys.readouterr()

    def test_obs_export_spans_jsonl(self, tmp_path, capsys):
        import json

        path = self._write_manifest(tmp_path)
        assert main(["obs", "export", str(path)]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
        parsed = [json.loads(ln) for ln in lines]
        assert {p["name"] for p in parsed} == {"run_all", "job.alpha"}

    def test_obs_export_metrics_prometheus(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        out_file = tmp_path / "metrics.prom"
        rc = main([
            "obs", "export", str(path), "--what", "metrics",
            "--format", "prometheus", "--output", str(out_file),
        ])
        assert rc == 0
        assert "als_completions 1" in out_file.read_text()
        capsys.readouterr()

    def test_obs_export_metrics_jsonl(self, tmp_path, capsys):
        import json

        path = self._write_manifest(tmp_path)
        assert main(["obs", "export", str(path), "--what", "metrics"]) == 0
        lines = [json.loads(ln) for ln in capsys.readouterr().out.splitlines() if ln]
        assert any(
            d["name"] == "als.completions" and d["kind"] == "counter"
            for d in lines
        )

    def test_obs_export_spans_prometheus_is_usage_error(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        rc = main([
            "obs", "export", str(path), "--what", "spans",
            "--format", "prometheus",
        ])
        assert rc == 2
        assert "only supports jsonl" in capsys.readouterr().err

    def test_verify_determinism_manifest_end_to_end(self, tmp_path, capsys):
        from repro.obs import manifest, schema

        out = tmp_path / "verify.json"
        rc = main([
            "verify-determinism", "--smoke", "--checks", "completion",
            "--max-workers", "2", "--manifest", str(out),
        ])
        assert rc == 0
        payload = manifest.load_manifest(out)
        schema.validate_manifest(payload)
        assert payload["kind"] == "verify-determinism"
        assert [j["name"] for j in payload["jobs"]] == ["completion"]
        assert payload["jobs"][0]["status"] == "ok"
        assert payload["spans"]  # observability was on for the run
        # And the stored manifest renders.
        assert main(["trace", "summarize", str(out)]) == 0
        capsys.readouterr()


class TestVerifyDeterminismCommand:
    def test_parser_accepts(self):
        parser = build_parser()
        args = parser.parse_args(
            ["verify-determinism", "--smoke", "--checks", "completion", "tuning"]
        )
        assert args.smoke and args.checks == ["completion", "tuning"]

    def test_unknown_check_is_usage_error(self, capsys):
        assert main(["verify-determinism", "--smoke", "--checks", "nope"]) == 2
        capsys.readouterr()

    def test_smoke_subset_passes(self, capsys):
        rc = main(
            [
                "verify-determinism",
                "--smoke",
                "--checks",
                "completion",
                "--max-workers",
                "2",
            ]
        )
        assert rc == 0
        assert "bit-identical" in capsys.readouterr().out
