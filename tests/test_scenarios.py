"""Tests for repro.datasets.scenarios."""

import numpy as np
import pytest

from repro.datasets.scenarios import (
    night_economy,
    rush_hour_incident,
    sensor_outage,
    sparse_outskirts,
)


class TestRushHourIncident:
    @pytest.fixture(scope="class")
    def scenario(self):
        return rush_hour_incident(seed=0)

    def test_incident_window_matches(self, scenario):
        dataset, incident, (first, last) = scenario
        slot_s = dataset.ground_truth.grid.slot_s
        assert incident.start_s == first * slot_s
        assert incident.end_s == (last + 1) * slot_s

    def test_incident_visible_in_truth(self, scenario):
        dataset, incident, (first, last) = scenario
        truth = dataset.truth_tcm
        col = truth.column_of(incident.core_segment)
        during = truth.values[first : last + 1, col].mean()
        before = truth.values[first - 6 : first - 2, col].mean()
        assert during < 0.5 * before

    def test_detector_finds_it(self, scenario):
        from repro.core.anomaly import ResidualAnomalyDetector, match_events

        dataset, _, window = scenario
        events = ResidualAnomalyDetector(rank=2, threshold_sigmas=3.0).detect(
            dataset.truth_tcm
        )
        recall, _ = match_events(events, [window], slot_tolerance=1)
        assert recall == 1.0


class TestSparseOutskirts:
    def test_heavy_coverage_skew(self):
        dataset = sparse_outskirts(seed=0)
        road_cov = dataset.measurements.road_integrity()
        # Extreme skew: many dark segments AND some saturated ones.
        assert np.mean(road_cov < 0.05) > 0.3
        assert road_cov.max() > 0.8


class TestSensorOutage:
    def test_window_dark(self):
        dataset = sensor_outage(seed=0)
        grid = dataset.ground_truth.grid
        lo = grid.slot_of(11 * 3600.0)
        hi = grid.slot_of(14 * 3600.0 - 1)
        slot_cov = dataset.measurements.slot_integrity()
        assert np.all(slot_cov[lo : hi + 1] == 0.0)
        # Outside the window, coverage exists.
        assert slot_cov[:lo].max() > 0.0

    def test_completion_bridges_outage(self):
        from repro.core import TrafficEstimator
        from repro.metrics import nmae

        dataset = sensor_outage(seed=0)
        output = TrafficEstimator(lam=10.0, seed=0).estimate(dataset.measurements)
        grid = dataset.ground_truth.grid
        lo = grid.slot_of(11 * 3600.0)
        hi = grid.slot_of(14 * 3600.0 - 1)
        eval_mask = np.zeros(dataset.truth_tcm.shape, dtype=bool)
        eval_mask[lo : hi + 1] = True
        err = nmae(dataset.truth_tcm.values, output.estimate.values, eval_mask)
        assert err < 0.35

    def test_window_validated(self):
        with pytest.raises(ValueError):
            sensor_outage(outage_start_s=100.0, outage_end_s=100.0)


class TestNightEconomy:
    def test_night_busier_than_commute_morning(self):
        dataset = night_economy(seed=0)
        values = dataset.truth_tcm.values
        # City mean speed around 22:00 is depressed relative to 05:00.
        slot = lambda h: int(h * 3600.0 / dataset.ground_truth.grid.slot_s)
        night = values[slot(21) : slot(23)].mean()
        dawn = values[slot(4) : slot(5)].mean()
        assert night < dawn
