"""Tests for repro.core.completion (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.completion import CompletionResult, CompressiveSensingCompleter
from repro.core.tcm import TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae
from tests.conftest import make_low_rank


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"lam": -1.0},
            {"iterations": 0},
            {"tol": 0.0},
            {"clip_min": 5.0, "clip_max": 1.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CompressiveSensingCompleter(**kwargs)

    def test_requires_mask_for_raw_array(self):
        completer = CompressiveSensingCompleter()
        with pytest.raises(ValueError, match="mask"):
            completer.complete(np.ones((3, 3)))

    def test_rejects_mask_with_tcm(self, masked_tcm):
        completer = CompressiveSensingCompleter()
        with pytest.raises(ValueError, match="implied"):
            completer.complete(masked_tcm, mask=masked_tcm.mask)

    def test_rejects_empty_mask(self):
        completer = CompressiveSensingCompleter()
        with pytest.raises(ValueError, match="no observed"):
            completer.complete(np.zeros((3, 3)), np.zeros((3, 3), dtype=bool))


class TestExactRecovery:
    def test_recovers_exact_low_rank(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=1)
        measured = np.where(mask, low_rank_matrix, 0.0)
        completer = CompressiveSensingCompleter(
            rank=2, lam=1e-6, iterations=200, seed=0
        )
        result = completer.complete(measured, mask)
        err = nmae(low_rank_matrix, result.estimate, ~mask)
        assert err < 0.01

    def test_rank1_recovery(self):
        x = make_low_rank(30, 20, 1, seed=3)
        mask = random_integrity_mask(x.shape, 0.3, seed=2)
        completer = CompressiveSensingCompleter(rank=1, lam=1e-6, iterations=150, seed=0)
        result = completer.complete(np.where(mask, x, 0.0), mask)
        assert nmae(x, result.estimate, ~mask) < 0.01

    def test_complete_matrix_fit(self, low_rank_matrix):
        mask = np.ones(low_rank_matrix.shape, dtype=bool)
        completer = CompressiveSensingCompleter(rank=2, lam=1e-8, iterations=100, seed=0)
        result = completer.complete(low_rank_matrix, mask)
        assert np.allclose(result.estimate, low_rank_matrix, rtol=1e-3, atol=1e-3)


class TestResultStructure:
    @pytest.fixture()
    def result(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.6, seed=4)
        completer = CompressiveSensingCompleter(rank=3, lam=0.1, iterations=25, seed=1)
        return completer.complete(np.where(mask, low_rank_matrix, 0.0), mask)

    def test_shapes(self, result, low_rank_matrix):
        m, n = low_rank_matrix.shape
        assert result.estimate.shape == (m, n)
        assert result.left.shape == (m, 3)
        assert result.right.shape == (n, 3)

    def test_estimate_is_factor_product(self, result):
        assert np.allclose(result.estimate, result.left @ result.right.T)

    def test_objective_history_tracks_best(self, result):
        assert result.objective == pytest.approx(min(result.objective_history))
        assert result.iterations_run == len(result.objective_history)

    def test_rank_bound_property(self, result):
        assert result.rank_bound == 3

    def test_objective_nonincreasing(self, result):
        history = np.array(result.objective_history)
        # ALS with exact inner solves must (weakly) decrease the objective.
        assert np.all(np.diff(history) <= np.abs(history[:-1]) * 1e-6)

    def test_fused_keeps_observations(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=5)
        measured = np.where(mask, low_rank_matrix, 0.0)
        completer = CompressiveSensingCompleter(rank=2, lam=0.1, iterations=20, seed=0)
        result = completer.complete(measured, mask)
        fused = result.fused(measured, mask)
        assert np.allclose(fused[mask], measured[mask])
        assert np.allclose(fused[~mask], result.estimate[~mask])


class TestOptions:
    def test_clipping(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.4, seed=6)
        completer = CompressiveSensingCompleter(
            rank=2, lam=0.1, iterations=10, clip_min=3.0, clip_max=4.0, seed=0
        )
        result = completer.complete(np.where(mask, low_rank_matrix, 0.0), mask)
        assert result.estimate.min() >= 3.0
        assert result.estimate.max() <= 4.0

    def test_seed_determinism(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=7)
        measured = np.where(mask, low_rank_matrix, 0.0)
        r1 = CompressiveSensingCompleter(rank=2, iterations=15, seed=9).complete(
            measured, mask
        )
        r2 = CompressiveSensingCompleter(rank=2, iterations=15, seed=9).complete(
            measured, mask
        )
        assert np.allclose(r1.estimate, r2.estimate)

    def test_tol_early_stop(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.6, seed=8)
        measured = np.where(mask, low_rank_matrix, 0.0)
        full = CompressiveSensingCompleter(rank=2, lam=1e-6, iterations=300, seed=0)
        early = CompressiveSensingCompleter(
            rank=2, lam=1e-6, iterations=300, tol=1e-4, seed=0
        )
        assert (
            early.complete(measured, mask).iterations_run
            < full.complete(measured, mask).iterations_run
        )

    def test_rank_capped_by_shape(self):
        x = make_low_rank(5, 4, 1)
        mask = np.ones(x.shape, dtype=bool)
        completer = CompressiveSensingCompleter(rank=50, lam=0.1, iterations=5, seed=0)
        result = completer.complete(x, mask)
        assert result.rank_bound <= 4

    def test_accepts_tcm_input(self, masked_tcm):
        completer = CompressiveSensingCompleter(rank=2, iterations=15, seed=0)
        result = completer.complete(masked_tcm)
        assert result.estimate.shape == masked_tcm.shape

    def test_unmasked_solver_runs(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.7, seed=9)
        completer = CompressiveSensingCompleter(
            rank=2, lam=1.0, iterations=20, mask_aware=False, seed=0
        )
        result = completer.complete(np.where(mask, low_rank_matrix, 0.0), mask)
        assert np.all(np.isfinite(result.estimate))

    def test_mask_aware_beats_literal_on_missing_data(self, low_rank_matrix):
        # The paper-literal solver treats missing cells as zeros and
        # biases the estimate; the mask-aware solver must do better.
        mask = random_integrity_mask(low_rank_matrix.shape, 0.4, seed=10)
        measured = np.where(mask, low_rank_matrix, 0.0)
        aware = CompressiveSensingCompleter(
            rank=2, lam=0.1, iterations=60, mask_aware=True, seed=0
        ).complete(measured, mask)
        literal = CompressiveSensingCompleter(
            rank=2, lam=0.1, iterations=60, mask_aware=False, seed=0
        ).complete(measured, mask)
        assert nmae(low_rank_matrix, aware.estimate, ~mask) < nmae(
            low_rank_matrix, literal.estimate, ~mask
        )


class TestRestarts:
    def test_restarts_validated(self):
        with pytest.raises(ValueError):
            CompressiveSensingCompleter(restarts=0)

    def test_restarts_never_worse(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=11)
        measured = np.where(mask, low_rank_matrix, 0.0)
        single = CompressiveSensingCompleter(
            rank=2, lam=1e-4, iterations=60, restarts=1, seed=0
        ).complete(measured, mask)
        multi = CompressiveSensingCompleter(
            rank=2, lam=1e-4, iterations=60, restarts=4, seed=0
        ).complete(measured, mask)
        assert multi.objective <= single.objective + 1e-9

    def test_restarts_counted_in_iterations_run(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=12)
        measured = np.where(mask, low_rank_matrix, 0.0)
        result = CompressiveSensingCompleter(
            rank=2, lam=0.1, iterations=10, restarts=3, seed=0
        ).complete(measured, mask)
        assert result.iterations_run == 30

    def test_escapes_local_minimum(self):
        """The seed-0 instance where a single ALS run gets stuck."""
        x = make_low_rank(20, 15, 2, seed=0)
        mask = random_integrity_mask(x.shape, 0.6, seed=1)
        measured = np.where(mask, x, 0.0)
        multi = CompressiveSensingCompleter(
            rank=2, lam=1e-4, iterations=120, restarts=3, seed=0
        ).complete(measured, mask)
        assert nmae(x, multi.estimate, ~mask) < 0.05


class TestEdgeCases:
    def test_single_observation(self):
        values = np.zeros((4, 4))
        values[1, 2] = 7.0
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = True
        completer = CompressiveSensingCompleter(rank=1, lam=0.1, iterations=10, seed=0)
        result = completer.complete(values, mask)
        assert np.all(np.isfinite(result.estimate))

    def test_empty_column_gets_finite_estimate(self):
        x = make_low_rank(10, 5, 2)
        mask = np.ones(x.shape, dtype=bool)
        mask[:, 3] = False
        completer = CompressiveSensingCompleter(rank=2, lam=0.5, iterations=20, seed=0)
        result = completer.complete(np.where(mask, x, 0.0), mask)
        assert np.all(np.isfinite(result.estimate[:, 3]))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_any_seed_finite(self, seed):
        x = make_low_rank(12, 9, 2, seed=1)
        mask = random_integrity_mask(x.shape, 0.5, seed=2)
        completer = CompressiveSensingCompleter(rank=2, lam=1.0, iterations=8, seed=seed)
        result = completer.complete(np.where(mask, x, 0.0), mask)
        assert np.all(np.isfinite(result.estimate))


class TestSolverEquivalence:
    """The vectorized solvers must reproduce the loop reference."""

    @staticmethod
    def _complete_all(measured, mask, **params):
        return {
            solver: CompressiveSensingCompleter(
                solver=solver, seed=0, **params
            ).complete(measured, mask)
            for solver in ("loop", "batched", "grouped")
        }

    @staticmethod
    def _assert_match(results, tol=1e-8):
        reference = results["loop"].estimate
        for solver in ("batched", "grouped"):
            diff = np.max(np.abs(results[solver].estimate - reference))
            assert diff <= tol, f"{solver} deviates by {diff}"
            assert results[solver].objective == pytest.approx(
                results["loop"].objective, rel=1e-9, abs=1e-9
            )

    @settings(max_examples=20, deadline=None)
    @given(
        mask_seed=st.integers(0, 2**31 - 1),
        integrity=st.floats(0.05, 0.95),
        rank=st.integers(1, 5),
        mask_aware=st.booleans(),
    )
    def test_random_masks(self, mask_seed, integrity, rank, mask_aware):
        x = make_low_rank(14, 10, 2, seed=3)
        mask = random_integrity_mask(x.shape, integrity, seed=mask_seed)
        results = self._complete_all(
            np.where(mask, x, 0.0),
            mask,
            rank=rank,
            lam=0.7,
            iterations=6,
            mask_aware=mask_aware,
        )
        self._assert_match(results)

    def test_all_unobserved_columns(self):
        x = make_low_rank(12, 8, 2, seed=4)
        mask = random_integrity_mask(x.shape, 0.6, seed=5)
        mask[:, [1, 6]] = False
        results = self._complete_all(
            np.where(mask, x, 0.0), mask, rank=2, lam=0.3, iterations=8
        )
        self._assert_match(results)

    def test_all_unobserved_rows(self):
        x = make_low_rank(12, 8, 2, seed=6)
        mask = random_integrity_mask(x.shape, 0.6, seed=7)
        mask[[0, 5, 11], :] = False
        results = self._complete_all(
            np.where(mask, x, 0.0), mask, rank=2, lam=0.3, iterations=8
        )
        self._assert_match(results)

    def test_rank_above_observed_rows(self):
        # Fewer observations per column than factor columns: the Gram
        # matrix is rank-deficient and only the ridge term makes the
        # solve well-posed — all solvers must agree on that solution.
        x = make_low_rank(9, 7, 2, seed=8)
        mask = random_integrity_mask(x.shape, 0.25, seed=9)
        results = self._complete_all(
            np.where(mask, x, 0.0), mask, rank=6, lam=0.5, iterations=6
        )
        self._assert_match(results)

    def test_mask_oblivious_literal_mode(self):
        x = make_low_rank(10, 6, 2, seed=10)
        mask = random_integrity_mask(x.shape, 0.5, seed=11)
        results = self._complete_all(
            np.where(mask, x, 0.0),
            mask,
            rank=2,
            lam=1.0,
            iterations=10,
            mask_aware=False,
        )
        self._assert_match(results)

    def test_centered_mode(self):
        x = make_low_rank(10, 6, 2, seed=12)
        mask = random_integrity_mask(x.shape, 0.5, seed=13)
        results = self._complete_all(
            np.where(mask, x, 0.0),
            mask,
            rank=2,
            lam=1.0,
            iterations=10,
            center=True,
        )
        self._assert_match(results)


class TestParallelRestarts:
    """Worker pools must not change numbers: parallel == serial, bitwise."""

    def _completer(self, max_workers):
        return CompressiveSensingCompleter(
            rank=2, lam=0.2, iterations=15, restarts=4, max_workers=max_workers, seed=0
        )

    def test_parallel_bit_identical_to_serial(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=21)
        measured = np.where(mask, low_rank_matrix, 0.0)
        serial = self._completer(None).complete(measured, mask)
        parallel = self._completer(4).complete(measured, mask)
        assert np.array_equal(serial.estimate, parallel.estimate)
        assert serial.objective == parallel.objective
        assert serial.objective_history == parallel.objective_history
        assert serial.restart_histories == parallel.restart_histories
        assert serial.best_restart == parallel.best_restart

    def test_restart_histories_structure(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.5, seed=22)
        measured = np.where(mask, low_rank_matrix, 0.0)
        result = self._completer(None).complete(measured, mask)
        assert result.num_restarts == 4
        assert 0 <= result.best_restart < 4
        assert result.objective_history == result.restart_histories[result.best_restart]
        assert result.iterations_run == sum(
            len(h) for h in result.restart_histories
        )
        # The winner is the restart with the lowest final objective.
        finals = [h[-1] for h in result.restart_histories]
        assert result.objective == pytest.approx(min(finals))
        assert result.best_restart == finals.index(min(finals))

    def test_max_workers_validated(self):
        with pytest.raises(ValueError):
            CompressiveSensingCompleter(max_workers=-2)
