"""Tests for repro.analysis.engine (symbol table + dataflow)."""

import ast
import textwrap

from repro.analysis.engine import (
    SymbolTable,
    find_workers,
    is_rng_expr,
    is_unordered_expr,
    scope_mutations,
)


def build(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree, SymbolTable.build(tree)


def function_scope(table, name):
    for scope, func in table.functions():
        if func.name == name:
            return table.scope_of(func)
    raise AssertionError(f"no function {name!r}")


class TestScopeResolution:
    SOURCE = """
        import os
        SHARED = {}

        def outer(param):
            local = 1

            def inner():
                return param + local + SHARED["k"] + os.sep + missing
            return inner
    """

    def test_resolution_kinds(self):
        _, table = build(self.SOURCE)
        inner = function_scope(table, "inner")
        assert inner.resolve("param") == "closure"
        assert inner.resolve("local") == "closure"
        assert inner.resolve("SHARED") == "global"
        assert inner.resolve("os") == "global"
        assert inner.resolve("missing") == "unknown"
        outer = function_scope(table, "outer")
        assert outer.resolve("param") == "param"
        assert outer.resolve("local") == "local"

    def test_global_and_nonlocal_declarations(self):
        _, table = build(
            """
            COUNT = 0

            def bump():
                global COUNT
                COUNT += 1

            def outer():
                x = 0

                def inner():
                    nonlocal x
                    x += 1
            """
        )
        assert function_scope(table, "bump").resolve("COUNT") == "global"
        assert function_scope(table, "inner").resolve("x") == "closure"

    def test_mutable_default_params_tracked(self):
        _, table = build("def f(a, cache={}, names=[]): ...")
        scope = function_scope(table, "f")
        assert scope.mutable_default_params == {"cache", "names"}


class TestDataflowFacts:
    def test_set_like_bindings(self):
        _, table = build(
            """
            def f(values):
                seen = set(values)
                frozen = frozenset(values)
                literal = {1, 2}
                comp = {v for v in values}
                plain = list(values)
            """
        )
        scope = function_scope(table, "f")
        assert {"seen", "frozen", "literal", "comp"} <= scope.set_like
        assert "plain" not in scope.set_like

    def test_rng_bindings(self):
        _, table = build(
            """
            import numpy as np
            from repro.utils.rng import ensure_rng

            def f(seed):
                rng = ensure_rng(seed)
                gen = np.random.default_rng(seed)
                other = seed + 1
            """
        )
        scope = function_scope(table, "f")
        assert {"rng", "gen"} <= set(scope.rng_bound)
        assert "other" not in scope.rng_bound

    def test_is_rng_expr(self):
        assert is_rng_expr(ast.parse("ensure_rng(0)", mode="eval").body)
        assert is_rng_expr(
            ast.parse("np.random.default_rng(0)", mode="eval").body
        )
        assert not is_rng_expr(ast.parse("make_data(0)", mode="eval").body)

    def test_is_unordered_expr(self):
        _, table = build("def f(x):\n    s = set(x)\n    l = list(x)\n")
        scope = function_scope(table, "f")

        def expr(text):
            return ast.parse(text, mode="eval").body

        assert is_unordered_expr(expr("set(x)"), scope)
        assert is_unordered_expr(expr("{1, 2}"), scope)
        assert is_unordered_expr(expr("os.listdir(p)"), scope)
        assert is_unordered_expr(expr("glob.glob('*.py')"), scope)
        assert is_unordered_expr(expr("s"), scope)
        assert not is_unordered_expr(expr("l"), scope)
        assert not is_unordered_expr(expr("sorted(s)"), scope)


class TestScopeMutations:
    def test_mutation_kinds(self):
        _, table = build(
            """
            TOTALS = {}

            def work(item, acc=[]):
                TOTALS[item] = 1
                acc.append(item)
                local = []
                local.append(item)
            """
        )
        scope = function_scope(table, "work")
        facts = {
            (m.name, m.resolution, m.kind) for m in scope_mutations(scope)
        }
        assert ("TOTALS", "global", "item-assign") in facts
        assert ("acc", "param", "method") in facts
        assert ("local", "local", "method") in facts


class TestFindWorkers:
    def test_parallel_map_worker(self):
        tree, table = build(
            """
            from repro.utils.parallel import parallel_map

            def work(item):
                return item

            def run(items):
                return parallel_map(work, items, max_workers=4)
            """
        )
        workers = find_workers(tree, table)
        assert len(workers) == 1
        assert workers[0].fn_def is not None
        assert workers[0].fn_def.name == "work"
        assert workers[0].backend == "thread"

    def test_parallel_map_process_backend(self):
        tree, table = build(
            """
            from repro.utils.parallel import parallel_map

            def work(item):
                return item

            def run(items):
                return parallel_map(
                    work, items, backend="process", max_workers=4
                )
            """
        )
        (worker,) = find_workers(tree, table)
        assert worker.backend == "process"

    def test_executor_submit_and_trampoline(self):
        tree, table = build(
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(item):
                return item

            def run(items):
                with ProcessPoolExecutor() as pool:
                    futures = [
                        pool.submit(lambda it: work(it), item)
                        for item in items
                    ]
                return futures
            """
        )
        (worker,) = find_workers(tree, table)
        assert worker.backend == "process"
        assert worker.fn_def is not None and worker.fn_def.name == "work"

    def test_no_workers_in_plain_code(self):
        tree, table = build(
            """
            def run(items):
                return [item * 2 for item in items]
            """
        )
        assert find_workers(tree, table) == []
