"""Tests for repro.core.streaming."""

import numpy as np
import pytest

from repro.core.streaming import SlotEstimate, StreamingEstimator
from repro.probes.report import ProbeReport


def report(t, seg, speed, vid=0):
    return ProbeReport(vehicle_id=vid, time_s=t, x=0.0, y=0.0, speed_kmh=speed, segment_id=seg)


def make_estimator(**overrides):
    params = dict(
        segment_ids=[0, 1, 2],
        slot_s=60.0,
        window_slots=6,
        rank=1,
        lam=1.0,
        cold_iterations=20,
        warm_iterations=5,
        seed=0,
    )
    params.update(overrides)
    return StreamingEstimator(**params)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slot_s": 0.0},
            {"window_slots": 1},
            {"warm_iterations": 0},
            {"segment_ids": [1, 1]},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_estimator(**kwargs)


class TestIngest:
    def test_no_estimate_until_slot_closes(self):
        est = make_estimator()
        assert est.ingest(report(10.0, 0, 30.0)) == []
        assert est.ingest(report(50.0, 1, 40.0)) == []

    def test_slot_closes_on_next_slot_report(self):
        est = make_estimator()
        est.ingest(report(10.0, 0, 30.0))
        closed = est.ingest(report(70.0, 1, 40.0))
        assert len(closed) == 1
        assert closed[0].slot_start_s == 0.0

    def test_gap_closes_multiple_slots(self):
        est = make_estimator()
        est.ingest(report(10.0, 0, 30.0))
        closed = est.ingest(report(200.0, 1, 40.0))
        assert len(closed) == 3  # slots 0, 1, 2 close

    def test_late_report_dropped(self):
        est = make_estimator()
        est.ingest(report(70.0, 0, 30.0))  # now in slot 1
        est.flush()  # close slot 1, current = 2
        assert est.ingest(report(10.0, 1, 99.0)) == []

    def test_observed_cells_published_verbatim(self):
        est = make_estimator(min_speed_kmh=0.0)
        est.ingest(report(10.0, 0, 30.0))
        est.ingest(report(20.0, 0, 50.0))
        result = est.flush()
        assert result.speeds_kmh[0] == pytest.approx(40.0)

    def test_observed_fraction(self):
        est = make_estimator()
        est.ingest(report(10.0, 0, 30.0))
        est.ingest(report(20.0, 2, 30.0))
        result = est.flush()
        assert result.observed_fraction == pytest.approx(2 / 3)

    def test_idle_reports_filtered(self):
        est = make_estimator(min_speed_kmh=2.0)
        est.ingest(report(10.0, 0, 0.5))
        result = est.flush()
        assert result.observed_fraction == 0.0

    def test_unknown_segment_skipped(self):
        est = make_estimator()
        est.ingest(report(10.0, 99, 30.0))
        result = est.flush()
        assert result.observed_fraction == 0.0

    def test_ingest_many_sorts(self):
        est = make_estimator()
        closed = est.ingest_many(
            [report(130.0, 0, 30.0), report(10.0, 1, 40.0), report(70.0, 2, 50.0)]
        )
        assert len(closed) == 2


class TestEstimation:
    def test_missing_cells_estimated(self):
        est = make_estimator()
        # Feed several slots observing segments 0 and 1 at ~30 km/h.
        for k in range(5):
            t = k * 60.0
            est.ingest(report(t + 5, 0, 30.0))
            est.ingest(report(t + 10, 1, 30.0))
        result = est.flush()
        # Segment 2 never observed: the completion must still produce a
        # finite, plausible estimate.
        assert np.isfinite(result.speeds_kmh[2])

    def test_estimates_track_stream(self):
        est = make_estimator()
        for k in range(8):
            t = k * 60.0
            est.ingest(report(t + 5, 0, 40.0))
            est.ingest(report(t + 15, 1, 40.0))
            if k % 2 == 0:
                est.ingest(report(t + 25, 2, 40.0))
        est.flush()
        finals = est.estimates[-1].speeds_kmh
        assert np.all(np.abs(finals - 40.0) < 10.0)

    def test_window_slides(self):
        est = make_estimator(window_slots=3)
        for k in range(6):
            est.ingest(report(k * 60.0 + 5, 0, 30.0))
        est.flush()
        tcm = est.window_tcm()
        assert tcm.num_slots == 3

    def test_window_tcm_before_any_slot_rejected(self):
        with pytest.raises(ValueError):
            make_estimator().window_tcm()

    def test_estimates_accumulate(self):
        est = make_estimator()
        for k in range(4):
            est.ingest(report(k * 60.0 + 5, 0, 30.0))
        est.flush()
        assert len(est.estimates) == 4
        starts = [e.slot_start_s for e in est.estimates]
        assert starts == [0.0, 60.0, 120.0, 180.0]

    def test_warm_start_activates(self):
        est = make_estimator(window_slots=3)
        for k in range(8):
            est.ingest(report(k * 60.0 + 5, 0, 30.0))
            est.ingest(report(k * 60.0 + 15, 1, 35.0))
        est.flush()
        assert est._window._warm_left is not None
        assert est._window._warm_left.shape[0] == 3


class TestEdgeCases:
    def test_empty_window_flush_publishes_zeros(self):
        # Closing a slot with no observations at all: the window mask is
        # entirely empty, so completion is skipped and zeros published.
        est = make_estimator()
        result = est.flush()
        assert result.observed_fraction == 0.0
        assert np.array_equal(result.speeds_kmh, np.zeros(3))
        tcm = est.window_tcm()
        assert tcm.num_slots == 1
        assert not tcm.mask.any()

    def test_single_slot_update(self):
        # One observed slot (fewer rows than the window): the cold solve
        # runs on the 1-row window and publishes the observation verbatim
        # where measured, a finite non-negative estimate elsewhere.
        est = make_estimator()
        est.ingest(report(5.0, 0, 30.0))
        result = est.flush()
        assert result.slot_start_s == 0.0
        assert result.speeds_kmh[0] == pytest.approx(30.0)
        assert np.all(np.isfinite(result.speeds_kmh))
        assert np.all(result.speeds_kmh >= 0.0)
        assert est._window._warm_left is not None
        assert est._window._warm_left.shape[0] == 1

    def test_empty_slot_between_observed_slots(self):
        # A fully unobserved slot inside an observed stream still gets a
        # (completed) estimate rather than zeros.
        est = make_estimator()
        for k in (0, 1, 3, 4):
            est.ingest(report(k * 60.0 + 5, 0, 30.0))
            est.ingest(report(k * 60.0 + 15, 1, 30.0))
        est.flush()
        gap = est.estimates[2]
        assert gap.observed_fraction == 0.0
        assert np.all(np.isfinite(gap.speeds_kmh))

    def test_obs_metrics_record_cold_and_warm_starts(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.reset()
        obs_metrics.reset()
        obs_trace.enable()
        try:
            est = make_estimator(window_slots=3)
            for k in range(6):
                est.ingest(report(k * 60.0 + 5, 0, 30.0))
            est.flush()
            snap = obs_metrics.registry().snapshot()
            assert snap["counters"]["stream.recompletions"] == 6.0
            assert snap["counters"]["stream.cold_starts"] >= 1.0
            assert snap["counters"]["stream.warm_starts"] >= 1.0
            names = {s.name for s in obs_trace.collector().snapshot()}
            assert "stream.close_slot" in names
        finally:
            obs_trace.disable()
            obs_trace.reset()
            obs_metrics.reset()

    def test_instrumentation_does_not_change_estimates(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        def run():
            est = make_estimator()
            for k in range(5):
                est.ingest(report(k * 60.0 + 5, 0, 30.0))
                est.ingest(report(k * 60.0 + 15, 1, 35.0))
            est.flush()
            return np.vstack([e.speeds_kmh for e in est.estimates])

        baseline = run()
        obs_trace.enable()
        try:
            traced = run()
        finally:
            obs_trace.disable()
            obs_trace.reset()
            obs_metrics.reset()
        assert np.array_equal(baseline, traced)
