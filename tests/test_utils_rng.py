"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(
            a.integers(0, 10**9, size=20), b.integers(0, 10**9, size=20)
        )

    def test_deterministic_from_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3


def test_derive_seed_in_range():
    seed = derive_seed(np.random.default_rng(0))
    assert 0 <= seed < 2**63
