"""Tests for repro.mobility.vehicle."""

import numpy as np
import pytest

from repro.mobility.dropout import LOSSLESS, DropoutModel
from repro.mobility.reporting import ReportingConfig
from repro.mobility.trips import TripPlanner
from repro.mobility.vehicle import ProbeVehicle, VehicleConfig


def make_vehicle(ground_truth, seed=0, **overrides):
    params = dict(
        vehicle_id=7,
        traffic=ground_truth,
        planner=TripPlanner(ground_truth.network),
        reporting=ReportingConfig(interval_range_s=(60.0, 60.0)),
        dropout=LOSSLESS,
        config=VehicleConfig(),
        rng=np.random.default_rng(seed),
        start_node=0,
    )
    params.update(overrides)
    return ProbeVehicle(**params)


class TestVehicleConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"driver_factor_sigma": -0.1},
            {"mean_dwell_s": 0.0},
            {"min_speed_kmh": 0.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            VehicleConfig(**kwargs)


class TestSimulate:
    def test_produces_reports(self, ground_truth):
        vehicle = make_vehicle(ground_truth)
        reports = vehicle.simulate(0.0, 3 * 3600.0)
        assert len(reports) > 0

    def test_reports_within_window(self, ground_truth):
        vehicle = make_vehicle(ground_truth)
        reports = vehicle.simulate(100.0, 7200.0)
        for r in reports:
            assert 100.0 <= r.time_s < 7200.0

    def test_reports_carry_vehicle_id(self, ground_truth):
        reports = make_vehicle(ground_truth).simulate(0.0, 3600.0)
        assert all(r.vehicle_id == 7 for r in reports)

    def test_reporting_interval_respected(self, ground_truth):
        vehicle = make_vehicle(ground_truth)
        reports = sorted(vehicle.simulate(0.0, 4 * 3600.0), key=lambda r: r.time_s)
        gaps = np.diff([r.time_s for r in reports])
        # Fixed 60 s schedule: every gap is a multiple of 60 s (reports
        # may be dropped only by dropout, which is off here).
        remainder = gaps % 60.0
        remainder = np.minimum(remainder, 60.0 - remainder)
        assert np.allclose(remainder, 0.0, atol=1e-6)

    def test_driving_reports_have_segments(self, ground_truth):
        reports = make_vehicle(ground_truth).simulate(0.0, 2 * 3600.0)
        driving = [r for r in reports if r.segment_id >= 0]
        assert driving
        valid = set(ground_truth.network.segment_ids)
        assert all(r.segment_id in valid for r in driving)

    def test_driving_speed_plausible(self, ground_truth):
        reports = make_vehicle(ground_truth).simulate(0.0, 4 * 3600.0)
        driving = [r for r in reports if r.segment_id >= 0]
        speeds = np.array([r.speed_kmh for r in driving])
        assert speeds.max() < 120.0
        assert speeds.mean() > 5.0

    def test_idle_reports_slow(self, ground_truth):
        config = VehicleConfig(mean_dwell_s=3600.0)
        vehicle = make_vehicle(ground_truth, config=config)
        reports = vehicle.simulate(0.0, 6 * 3600.0)
        idle = [r for r in reports if r.segment_id < 0]
        assert idle
        assert max(r.speed_kmh for r in idle) < 3.0

    def test_idle_reporting_disabled(self, ground_truth):
        reporting = ReportingConfig(
            interval_range_s=(60.0, 60.0), report_when_idle=False
        )
        vehicle = make_vehicle(ground_truth, reporting=reporting)
        reports = vehicle.simulate(0.0, 4 * 3600.0)
        assert all(r.segment_id >= 0 for r in reports)

    def test_dropout_reduces_reports(self, ground_truth):
        lossless = make_vehicle(ground_truth, seed=11)
        lossy = make_vehicle(
            ground_truth,
            seed=11,
            dropout=DropoutModel(base_loss=0.8, canyon_loss=0.0),
        )
        n_lossless = len([r for r in lossless.simulate(0.0, 6 * 3600.0) if r.segment_id >= 0])
        n_lossy = len([r for r in lossy.simulate(0.0, 6 * 3600.0) if r.segment_id >= 0])
        assert n_lossy < n_lossless * 0.6

    def test_empty_window_rejected(self, ground_truth):
        with pytest.raises(ValueError):
            make_vehicle(ground_truth).simulate(100.0, 100.0)

    def test_driver_factor_positive(self, ground_truth):
        vehicle = make_vehicle(ground_truth)
        assert vehicle.driver_factor > 0

    def test_positions_on_network(self, ground_truth):
        reports = make_vehicle(ground_truth).simulate(0.0, 2 * 3600.0)
        min_x, min_y, max_x, max_y = ground_truth.network.bounding_box()
        pad = 100.0  # GPS noise
        for r in reports:
            assert min_x - pad <= r.x <= max_x + pad
            assert min_y - pad <= r.y <= max_y + pad
