"""Tests for repro.traffic.congestion."""

import numpy as np
import pytest

from repro.traffic.congestion import (
    CongestionIncident,
    IncidentModel,
    incident_speed_factor,
)


class TestCongestionIncident:
    def test_active_window(self):
        inc = CongestionIncident(100.0, 50.0, 0, {0: 0.5})
        assert inc.active_at(100.0)
        assert inc.active_at(149.9)
        assert not inc.active_at(150.0)
        assert not inc.active_at(99.9)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            CongestionIncident(0.0, 0.0, 0, {0: 0.5})

    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            CongestionIncident(0.0, 10.0, 0, {0: 1.5})


class TestIncidentModel:
    def test_sample_count_scales_with_rate(self, small_network):
        low = IncidentModel(small_network, rate_per_day=1.0)
        high = IncidentModel(small_network, rate_per_day=50.0)
        n_low = len(low.sample(0.0, 86_400.0, seed=0))
        n_high = len(high.sample(0.0, 86_400.0, seed=0))
        assert n_high > n_low

    def test_zero_rate_yields_nothing(self, small_network):
        model = IncidentModel(small_network, rate_per_day=0.0)
        assert model.sample(0.0, 86_400.0, seed=0) == []

    def test_incidents_sorted_and_in_window(self, small_network):
        model = IncidentModel(small_network, rate_per_day=30.0)
        incidents = model.sample(1000.0, 86_400.0, seed=1)
        starts = [i.start_s for i in incidents]
        assert starts == sorted(starts)
        assert all(1000.0 <= s < 1000.0 + 86_400.0 for s in starts)

    def test_spread_decays(self, small_network):
        model = IncidentModel(
            small_network, rate_per_day=50.0, spatial_decay=0.5, spread_hops=1
        )
        incidents = model.sample(0.0, 86_400.0, seed=2)
        spread = next(i for i in incidents if len(i.affected) > 1)
        core_sev = spread.affected[spread.core_segment]
        for sid, sev in spread.affected.items():
            if sid != spread.core_segment:
                assert sev == pytest.approx(core_sev * 0.5)

    def test_no_spread_with_zero_hops(self, small_network):
        model = IncidentModel(small_network, rate_per_day=50.0, spread_hops=0)
        incidents = model.sample(0.0, 86_400.0, seed=3)
        assert all(len(i.affected) == 1 for i in incidents)

    def test_deterministic_by_seed(self, small_network):
        model = IncidentModel(small_network, rate_per_day=10.0)
        a = model.sample(0.0, 86_400.0, seed=7)
        b = model.sample(0.0, 86_400.0, seed=7)
        assert [i.core_segment for i in a] == [i.core_segment for i in b]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_day": -1},
            {"mean_duration_s": 0},
            {"severity_range": (0.9, 0.1)},
            {"severity_range": (-0.1, 0.5)},
            {"spatial_decay": 1.5},
            {"spread_hops": -1},
        ],
    )
    def test_bad_params_rejected(self, small_network, kwargs):
        with pytest.raises(ValueError):
            IncidentModel(small_network, **kwargs)


class TestSpeedFactor:
    def test_no_incidents(self):
        assert incident_speed_factor([], 0, 0.0) == 1.0

    def test_single_active_incident(self):
        inc = CongestionIncident(0.0, 100.0, 3, {3: 0.4})
        assert incident_speed_factor([inc], 3, 50.0) == pytest.approx(0.6)

    def test_inactive_incident_ignored(self):
        inc = CongestionIncident(0.0, 100.0, 3, {3: 0.4})
        assert incident_speed_factor([inc], 3, 200.0) == 1.0

    def test_unaffected_segment_ignored(self):
        inc = CongestionIncident(0.0, 100.0, 3, {3: 0.4})
        assert incident_speed_factor([inc], 9, 50.0) == 1.0

    def test_overlapping_incidents_compose(self):
        a = CongestionIncident(0.0, 100.0, 3, {3: 0.5})
        b = CongestionIncident(0.0, 100.0, 3, {3: 0.5})
        assert incident_speed_factor([a, b], 3, 10.0) == pytest.approx(0.25)
