"""Tests for repro.analysis.sarif (SARIF 2.1.0 serialisation)."""

import json
import textwrap

from repro.analysis import REGISTRY, lint_source, render_sarif, to_sarif
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION

FIXTURE = textwrap.dedent(
    """
    from repro.utils.parallel import parallel_map

    TOTALS = {}

    def work(item):
        TOTALS[item] = item * 2
        return item

    def run(items):
        return parallel_map(work, items, max_workers=4)

    def total(values):
        # repro-lint: disable-next-line=unordered-iteration
        return sum(v for v in set(values))
    """
)


def fixture_report():
    return lint_source(FIXTURE, path="pkg/fixture.py")


class TestSarifShape:
    def test_golden_schema_fields(self):
        log = to_sarif(fixture_report())
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        # Every registered rule is declared, with metadata.
        declared = {rule["id"] for rule in driver["rules"]}
        assert declared == set(REGISTRY)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

    def test_results_reference_declared_rules(self):
        log = to_sarif(fixture_report())
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "fixture should produce findings"
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1  # SARIF columns are 1-based
            uri = result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]
            assert uri["uri"] == "pkg/fixture.py"
            assert uri["uriBaseId"] == "%SRCROOT%"

    def test_active_finding_level_and_message(self):
        log = to_sarif(fixture_report())
        shared = next(
            r
            for r in log["runs"][0]["results"]
            if r["ruleId"] == "worker-shared-state"
        )
        assert shared["level"] == "error"
        assert "Fix:" in shared["message"]["text"]
        assert "suppressions" not in shared

    def test_suppressed_finding_is_marked(self):
        log = to_sarif(fixture_report())
        suppressed = [
            r for r in log["runs"][0]["results"] if "suppressions" in r
        ]
        assert suppressed, "fixture contains a suppressed finding"
        assert all(
            s["suppressions"][0]["kind"] == "inSource" for s in suppressed
        )
        assert {s["ruleId"] for s in suppressed} == {"unordered-iteration"}

    def test_render_is_valid_json_roundtrip(self):
        report = fixture_report()
        assert json.loads(render_sarif(report)) == to_sarif(report)

    def test_rules_subset_still_declares_fired_rules(self):
        from repro.analysis import get_rules

        report = fixture_report()
        log = to_sarif(report, rules=get_rules(["float-equality"]))
        declared = {
            rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        # The subset plus every rule that actually fired in the report.
        assert "float-equality" in declared
        assert {f.rule for f in report.findings} <= declared
