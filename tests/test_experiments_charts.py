"""Tests for repro.experiments.charts."""

import numpy as np
import pytest

from repro.experiments.charts import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_basic_render(self):
        text = ascii_line_chart(
            [1, 2, 3, 4],
            {"err": [0.5, 0.3, 0.2, 0.25]},
            title="U-curve",
        )
        assert "U-curve" in text
        assert "o=err" in text
        assert text.count("o") >= 4

    def test_multiple_series_distinct_marks(self):
        text = ascii_line_chart(
            [1, 2, 3],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
        )
        assert "o=a" in text
        assert "x=b" in text

    def test_extremes_at_edges(self):
        text = ascii_line_chart([0, 1], {"s": [0.0, 1.0]}, height=5, width=12)
        rows = [l for l in text.splitlines() if "|" in l]
        # Max lands on the top plot row, min on the bottom one.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_constant_series_ok(self):
        text = ascii_line_chart([0, 1, 2], {"flat": [2.0, 2.0, 2.0]})
        assert "o" in text

    def test_nan_skipped(self):
        text = ascii_line_chart([0, 1, 2], {"s": [1.0, float("nan"), 2.0]})
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert sum(row.count("o") for row in plot_rows) == 2

    def test_axis_labels(self):
        text = ascii_line_chart([0.05, 0.95], {"s": [0.1, 0.9]})
        assert "0.05" in text
        assert "0.95" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"x_values": [], "series": {"s": []}},
            {"x_values": [1], "series": {}},
            {"x_values": [1, 2], "series": {"s": [1.0]}},
            {"x_values": [1], "series": {"s": [1.0]}, "width": 5},
            {"x_values": [1], "series": {"s": [float("nan")]}},
        ],
    )
    def test_bad_input_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ascii_line_chart(**kwargs)


class TestBarChart:
    def test_basic_render(self):
        text = ascii_bar_chart(["cs", "knn"], [0.1, 0.2], title="NMAE")
        assert "NMAE" in text
        assert "cs" in text and "knn" in text
        assert "0.1" in text and "0.2" in text

    def test_bars_proportional(self):
        text = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_nan_handled(self):
        text = ascii_bar_chart(["a", "b"], [1.0, float("nan")])
        assert "(n/a)" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])
