"""Tests for repro.probes.privacy."""

import numpy as np
import pytest

from repro.probes.privacy import (
    PseudonymRotator,
    TripLineDeployment,
    privacy_impact,
)
from repro.probes.report import ProbeReport, ReportBatch


def report(vid, t, seg=0, speed=30.0):
    return ProbeReport(vehicle_id=vid, time_s=t, x=0.0, y=0.0, speed_kmh=speed, segment_id=seg)


class TestPseudonymRotator:
    def test_stable_within_epoch(self):
        rotator = PseudonymRotator(rotation_s=3600.0, seed=0)
        a = rotator.pseudonym(7, 100.0)
        b = rotator.pseudonym(7, 200.0)
        assert a == b

    def test_rotates_across_epochs(self):
        rotator = PseudonymRotator(rotation_s=60.0, seed=0)
        # Far apart in time: must be different pseudonyms.
        assert rotator.pseudonym(7, 0.0) != rotator.pseudonym(7, 10_000.0)

    def test_vehicles_never_collide(self):
        rotator = PseudonymRotator(rotation_s=3600.0, seed=0)
        pseudos = {rotator.pseudonym(v, 100.0) for v in range(50)}
        assert len(pseudos) == 50

    def test_anonymize_preserves_payload(self):
        rotator = PseudonymRotator(rotation_s=3600.0, seed=0)
        batch = ReportBatch([report(1, 10.0, seg=3, speed=42.0)])
        out = rotator.anonymize(batch)
        assert len(out) == 1
        assert out[0].segment_id == 3
        assert out[0].speed_kmh == 42.0

    def test_anonymize_breaks_long_linkage(self):
        rotator = PseudonymRotator(rotation_s=600.0, seed=0)
        batch = ReportBatch([report(1, t * 300.0) for t in range(20)])
        out = rotator.anonymize(batch)
        # One real vehicle appears as several pseudonymous ones.
        assert out.num_vehicles > 1

    def test_aggregation_unchanged(self, ground_truth):
        """TCM aggregation only uses (slot, segment, speed): identical."""
        from repro.mobility.fleet import FleetConfig, FleetSimulator
        from repro.probes.aggregation import aggregate_reports

        batch = FleetSimulator(
            ground_truth, FleetConfig(num_vehicles=10), seed=0
        ).run(0.0, 4 * 3600.0)
        anon = PseudonymRotator(rotation_s=1800.0, seed=1).anonymize(batch)
        grid = ground_truth.grid
        ids = ground_truth.network.segment_ids
        raw_tcm = aggregate_reports(batch, grid, ids)
        anon_tcm = aggregate_reports(anon, grid, ids)
        assert np.array_equal(raw_tcm.mask, anon_tcm.mask)
        assert np.allclose(raw_tcm.values, anon_tcm.values)

    def test_bad_rotation_rejected(self):
        with pytest.raises(ValueError):
            PseudonymRotator(rotation_s=0.0)


class TestTripLineDeployment:
    def test_sample_fraction(self, small_network):
        deployment = TripLineDeployment.sample(small_network, 0.5, seed=0)
        assert deployment.num_lines == round(0.5 * small_network.num_segments)

    def test_full_deployment(self, small_network):
        deployment = TripLineDeployment.sample(small_network, 1.0, seed=0)
        assert deployment.num_lines == small_network.num_segments

    def test_filter_keeps_instrumented_only(self, small_network):
        deployment = TripLineDeployment(segment_ids=frozenset({3}))
        batch = ReportBatch([report(0, 1.0, seg=3), report(0, 2.0, seg=4),
                             report(0, 3.0, seg=-1)])
        out = deployment.filter(batch)
        assert len(out) == 1
        assert out[0].segment_id == 3

    def test_zero_fraction_suppresses_all(self, small_network):
        deployment = TripLineDeployment.sample(small_network, 0.0, seed=0)
        batch = ReportBatch([report(0, 1.0, seg=s) for s in range(5)])
        assert len(deployment.filter(batch)) == 0

    def test_bad_fraction_rejected(self, small_network):
        with pytest.raises(ValueError):
            TripLineDeployment.sample(small_network, 1.5)


class TestPrivacyImpact:
    def test_coverage_monotone_in_deployment(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        batch = FleetSimulator(
            ground_truth, FleetConfig(num_vehicles=30), seed=0
        ).run()
        results = privacy_impact(
            ground_truth, batch, fractions=(1.0, 0.5, 0.2), seed=0
        )
        assert [r.deployment_fraction for r in results] == [1.0, 0.5, 0.2]
        integrities = [r.integrity for r in results]
        assert integrities == sorted(integrities, reverse=True)
        kept = [r.reports_kept for r in results]
        assert kept == sorted(kept, reverse=True)

    def test_estimation_survives_partial_deployment(self, ground_truth):
        from repro.mobility.fleet import FleetConfig, FleetSimulator

        batch = FleetSimulator(
            ground_truth, FleetConfig(num_vehicles=40), seed=1
        ).run()
        results = privacy_impact(ground_truth, batch, fractions=(0.5,), seed=0)
        assert np.isfinite(results[0].estimate_nmae)
        assert results[0].estimate_nmae < 1.0
