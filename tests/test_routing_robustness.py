"""Robustness of routing and simulation on irregular networks.

The named city generators trim grids to exact segment counts, which can
leave one-way stubs and dead ends; routing and the fleet simulator must
degrade gracefully rather than hang or crash.
"""

import numpy as np
import pytest

from repro.core.tcm import TimeGrid
from repro.mobility.fleet import FleetConfig, FleetSimulator
from repro.mobility.trips import GreedyRouter, TripPlanner
from repro.roadnet.generators import shanghai_downtown_like, shenzhen_downtown_like
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.segment import Intersection, RoadSegment
from repro.traffic.groundtruth import GroundTruthTraffic


def dead_end_network():
    """0 <-> 1 -> 2 (node 2 is a trap: no outgoing segments)."""
    nodes = [Intersection(i, Point(i * 100.0, 0.0)) for i in range(3)]
    segs = [
        RoadSegment(0, 0, 1, nodes[0].location, nodes[1].location, 100.0),
        RoadSegment(1, 1, 0, nodes[1].location, nodes[0].location, 100.0),
        RoadSegment(2, 1, 2, nodes[1].location, nodes[2].location, 100.0),
    ]
    return RoadNetwork(nodes, segs, name="dead-end")


class TestGreedyRouterDeadEnds:
    def test_route_into_dead_end_reaches_it(self, rng):
        net = dead_end_network()
        route = GreedyRouter(net).route(0, 2, rng)
        assert route[-1].end == 2

    def test_route_out_of_trap_truncates(self, rng):
        net = dead_end_network()
        route = GreedyRouter(net).route(2, 0, rng)
        assert route == []  # no outgoing segments: empty, not a hang

    def test_planner_survives_trap_origin(self, rng):
        net = dead_end_network()
        planner = TripPlanner(net, min_trip_m=50.0)
        assert planner.plan_trip(2, rng) == []


class TestTrimmedCityRouting:
    @pytest.mark.parametrize("factory", [shanghai_downtown_like, shenzhen_downtown_like])
    def test_greedy_routes_mostly_succeed(self, factory, rng):
        net = factory()
        router = GreedyRouter(net)
        nodes = [n.node_id for n in net.intersections()]
        reached = 0
        trials = 40
        for _ in range(trials):
            a, b = rng.choice(nodes, size=2, replace=False)
            route = router.route(int(a), int(b), rng)
            if route and route[-1].end == int(b):
                reached += 1
        assert reached / trials > 0.7

    def test_fleet_simulates_on_trimmed_network(self):
        net = shanghai_downtown_like()
        grid = TimeGrid.over_days(0.125, 900.0)  # 3 hours
        truth = GroundTruthTraffic.synthesize(net, grid, seed=0)
        batch = FleetSimulator(truth, FleetConfig(num_vehicles=20), seed=0).run()
        assert len(batch) > 0
        valid = set(net.segment_ids)
        driving = batch.segment_ids[batch.segment_ids >= 0]
        assert set(int(s) for s in driving) <= valid
