"""Tests for the experiment drivers (small-scale runs of every study).

Each test runs the driver at a deliberately reduced scale and asserts
the paper's qualitative shape, not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments.config import AlgorithmSpec, make_completer
from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    build_city_truth,
    run_error_vs_integrity,
)
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_algorithm2,
    run_param_sensitivity,
)
from repro.experiments.runtimes import RuntimeStudyConfig, run_runtime_study
from repro.experiments.sampling_study import SamplingStudyConfig, run_sampling_study
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)


@pytest.fixture(scope="module")
def integrity_result():
    return run_integrity_study(
        IntegrityStudyConfig(
            fleet_sizes=(200, 600),  # scaled to 10 / 30 vehicles
            duration_days=0.5,
            scale=0.05,
            seed=0,
        )
    )


class TestIntegrityStudy:
    def test_integrity_grows_with_fleet(self, integrity_result):
        for gran in integrity_result.config.granularities_s:
            small = integrity_result.table1[(gran, 200)]
            large = integrity_result.table1[(gran, 600)]
            assert large > small

    def test_integrity_grows_with_granularity(self, integrity_result):
        grans = sorted(integrity_result.config.granularities_s)
        for size in (200, 600):
            values = [integrity_result.table1[(g, size)] for g in grans]
            assert values == sorted(values)

    def test_renders(self, integrity_result):
        assert "Table 1" in integrity_result.render_table1()
        assert "Figure 2" in integrity_result.render_road_cdf()
        assert "Figure 3" in integrity_result.render_slot_cdf()

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            IntegrityStudyConfig(scale=0.0)
        with pytest.raises(ValueError):
            IntegrityStudyConfig(fleet_sizes=())


class TestStructureStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_structure_study(StructureStudyConfig(days=2.0, seed=0))

    def test_sharp_knee(self, result):
        # Figure 4: the first few components dominate.
        assert result.spectrum.knee_sharpness(5) > 0.9
        assert result.spectrum.magnitudes[5] < 0.2

    def test_rank5_reconstruction_close(self, result):
        # Figure 6: rank-5 reconstruction sketches the original series
        # (paper reports RMSE ~9.67 km/h on its data).
        assert result.reconstruction_rmse < 15.0

    def test_type1_carries_information(self, result):
        from repro.core.eigenflows import EigenflowType
        from repro.metrics.errors import rmse

        truth = result.segment_series[None]
        err_periodic = rmse(truth, result.type_series[EigenflowType.PERIODIC][None])
        err_noise = rmse(truth, result.type_series[EigenflowType.NOISE][None])
        assert err_periodic < err_noise

    def test_leading_flow_periodic(self, result):
        from repro.core.eigenflows import EigenflowType

        assert result.analysis.types[0] == EigenflowType.PERIODIC

    def test_renders(self, result):
        assert "Figure 4" in result.render_spectrum()
        assert "Figure 8" in result.render_type_occurrence()
        assert "reconstruction" in result.render_reconstruction_summary()

    def test_segment_index_validated(self, truth_tcm):
        with pytest.raises(ValueError):
            run_structure_study(
                StructureStudyConfig(segment_index=10_000), tcm=truth_tcm
            )


@pytest.fixture(scope="module")
def sweep_result():
    return run_error_vs_integrity(
        ErrorVsIntegrityConfig(
            city="shanghai",
            days=2.0,
            granularities_s=(1800.0,),
            integrities=(0.1, 0.3, 0.6),
            seed=0,
        )
    )


class TestErrorVsIntegrity:
    def test_cs_best_everywhere(self, sweep_result):
        for cell in sweep_result.errors.values():
            assert cell["compressive"] == min(cell.values())

    def test_naive_knn_worst_at_low_integrity(self, sweep_result):
        cell = sweep_result.errors[(1800.0, 0.1)]
        assert cell["naive-knn"] == max(cell.values())

    def test_cs_error_decreases_with_integrity(self, sweep_result):
        errs = [
            sweep_result.errors[(1800.0, i)]["compressive"] for i in (0.1, 0.3, 0.6)
        ]
        assert errs[0] >= errs[1] >= errs[2]

    def test_cs_relatively_flat(self, sweep_result):
        errs = sweep_result.series_for(1800.0)["compressive"]
        # "Relatively insensitive to integrity": < 2x spread over the sweep.
        assert max(errs) < 2.0 * min(errs)

    def test_renders(self, sweep_result):
        assert "Figure 11" in sweep_result.render()

    def test_shenzhen_excludes_mssa(self):
        config = ErrorVsIntegrityConfig(city="shenzhen")
        assert not config.mssa_included

    def test_config_validated(self):
        with pytest.raises(ValueError):
            ErrorVsIntegrityConfig(city="beijing")
        with pytest.raises(ValueError):
            ErrorVsIntegrityConfig(integrities=(0.0,))


class TestGranularityEffect:
    def test_finer_granularity_higher_error(self):
        result = run_error_vs_integrity(
            ErrorVsIntegrityConfig(
                city="shanghai",
                days=2.0,
                granularities_s=(900.0, 3600.0),
                integrities=(0.2,),
                seed=0,
            ),
            algorithms=[
                AlgorithmSpec("compressive", lambda: make_completer(seed=0))
            ],
        )
        fine = result.errors[(900.0, 0.2)]["compressive"]
        coarse = result.errors[(3600.0, 0.2)]["compressive"]
        assert fine > coarse


class TestErrorCdf:
    @pytest.fixture(scope="class")
    def result(self):
        return run_error_cdf(
            ErrorCdfConfig(days=2.0, granularities_s=(900.0, 3600.0), seed=0)
        )

    def test_cdf_monotone(self, result):
        thresholds = [0.1, 0.2, 0.4, 0.8]
        values = result.cdf_at(900.0, thresholds)
        assert np.all(np.diff(values) >= 0)

    def test_coarser_granularity_tighter_errors(self, result):
        # Figure 13: at every threshold the 60-min CDF dominates.
        thresholds = [0.1, 0.25, 0.5]
        fine = result.cdf_at(900.0, thresholds)
        coarse = result.cdf_at(3600.0, thresholds)
        assert np.all(coarse >= fine - 0.02)

    def test_majority_small_errors(self, result):
        # The paper's checkpoint: ~80 % of elements below ~0.38 even at
        # the finest granularity.
        assert result.cdf_at(900.0, [0.38])[0] > 0.8

    def test_renders(self, result):
        assert "Figure 13" in result.render()


class TestParamSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_param_sensitivity(
            ParamSensitivityConfig(
                days=2.0,
                rank_sweep=(1, 2, 8, 32),
                lambda_sweep=(0.001, 1.0, 10.0, 2000.0),
                seed=0,
            )
        )

    def test_small_rank_optimal(self, result):
        # Figure 15: the best rank is small; large ranks overfit.
        assert result.best_rank <= 4
        assert result.rank_errors[32] > result.rank_errors[result.best_rank]

    def test_lambda_u_shape(self, result):
        # Figure 16: extremes are worse than the middle.
        mid_best = min(result.lambda_errors[1.0], result.lambda_errors[10.0])
        assert result.lambda_errors[0.001] > mid_best
        assert result.lambda_errors[2000.0] > mid_best

    def test_renders(self, result):
        assert "Figure 15" in result.render_rank()
        assert "Figure 16" in result.render_lambda()


class TestAlgorithm2Driver:
    def test_tunes_reasonable_parameters(self):
        from repro.core.tuning import GeneticTuner

        tuner = GeneticTuner(
            rank_bounds=(1, 8),
            population_size=5,
            generations=2,
            completer_iterations=10,
            seed=0,
        )
        result = run_algorithm2(days=1.0, seed=0, tuner=tuner)
        assert 1 <= result.rank <= 8
        assert np.isfinite(result.fitness)


class TestMatrixSelection:
    @pytest.fixture(scope="class")
    def result(self):
        return run_matrix_selection(
            MatrixSelectionConfig(days=2.0, integrity=0.3, include_mssa=False, seed=0)
        )

    def test_all_sets_scored(self, result):
        assert len(result.errors) == 5

    def test_cs_improves_with_matrix_size(self, result):
        # Section 4.5's headline: larger matrices help the CS algorithm.
        small = result.errors["set1-connected"]["compressive"]
        large = result.errors["set2-two-blocks"]["compressive"]
        assert large < small

    def test_renders(self, result):
        assert "Figure" in result.render()


class TestRuntimes:
    def test_ordering(self):
        # The paper's Table 2 has naive KNN < CS < MSSA; the first leg
        # was an artifact of the 2007 MatLab CS implementation — the
        # optimized ALS (workspace kernels, buffered objective) is now
        # faster than naive KNN at these scales, so the shape that
        # remains implementation-robust is "everything far below MSSA".
        result = run_runtime_study(
            RuntimeStudyConfig(days=1.0, mssa_iterations=1, seed=0)
        )
        for gran in result.config.granularities_s:
            knn = result.seconds["Naive KNN"][gran]
            cs = result.seconds["Compressive"][gran]
            mssa = result.seconds["MSSA"][gran]
            assert knn < mssa and cs < mssa
        assert "Table 2" in result.render()


class TestSamplingStudy:
    def test_integrity_grows_with_fleet(self):
        result = run_sampling_study(
            SamplingStudyConfig(
                days=0.25,
                fleet_sizes=(20, 80),
                reporting_intervals_s=(120.0,),
                grid_rows=4,
                grid_cols=4,
                seed=0,
            )
        )
        by_fleet = {p.fleet_size: p for p in result.points}
        assert by_fleet[80].integrity > by_fleet[20].integrity
        assert "Sampling" in result.render()

    def test_shorter_interval_more_coverage(self):
        result = run_sampling_study(
            SamplingStudyConfig(
                days=0.25,
                fleet_sizes=(40,),
                reporting_intervals_s=(60.0, 300.0),
                grid_rows=4,
                grid_cols=4,
                seed=0,
            )
        )
        by_interval = {p.interval_s: p for p in result.points}
        assert by_interval[60.0].integrity >= by_interval[300.0].integrity
