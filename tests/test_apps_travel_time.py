"""Tests for repro.apps.travel_time."""

import numpy as np
import pytest

from repro.apps.travel_time import TravelTimeService
from repro.core.tcm import TimeGrid, TrafficConditionMatrix


@pytest.fixture()
def service(small_network):
    grid = TimeGrid(start_s=0.0, slot_s=3600.0, num_slots=4)
    # Constant 36 km/h in slot 0, halving each slot on segment 0.
    n = small_network.num_segments
    values = np.full((4, n), 36.0)
    values[1, 0] = 18.0
    values[2, 0] = 9.0
    tcm = TrafficConditionMatrix(
        values, grid=grid, segment_ids=small_network.segment_ids
    )
    return TravelTimeService(small_network, tcm)


class TestValidation:
    def test_requires_complete(self, small_network, masked_tcm):
        with pytest.raises(ValueError, match="complete"):
            TravelTimeService(small_network, masked_tcm)

    def test_segments_must_exist(self, small_network):
        tcm = TrafficConditionMatrix(np.full((2, 1), 30.0), segment_ids=[9999])
        with pytest.raises(ValueError, match="not in network"):
            TravelTimeService(small_network, tcm)


class TestLinkTimes:
    def test_speed_lookup(self, service):
        assert service.speed_kmh(0, 100.0) == 36.0
        assert service.speed_kmh(0, 3700.0) == 18.0

    def test_clamps_outside_grid(self, service):
        assert service.speed_kmh(0, -50.0) == 36.0
        assert service.speed_kmh(0, 10 * 3600.0) == 36.0  # last slot value

    def test_link_time(self, service, small_network):
        seg = small_network.segment(0)
        expected = seg.length_m / 10.0  # 36 km/h = 10 m/s
        assert service.link_time_s(0, 0.0) == pytest.approx(expected)

    def test_min_speed_floor(self, small_network):
        n = small_network.num_segments
        tcm = TrafficConditionMatrix(
            np.zeros((2, n)), segment_ids=small_network.segment_ids
        )
        service = TravelTimeService(small_network, tcm, min_speed_kmh=3.0)
        assert np.isfinite(service.link_time_s(0, 0.0))


class TestRouteTimes:
    def test_single_link_route(self, service, small_network):
        t = service.route_time_s([0], depart_s=0.0)
        assert t == pytest.approx(service.link_time_s(0, 0.0))

    def test_time_expansion(self, service, small_network):
        """A later departure on a slowing link takes longer."""
        early = service.route_time_s([0], depart_s=0.0)
        late = service.route_time_s([0], depart_s=2 * 3600.0 + 10)
        assert late > early

    def test_route_profile(self, service):
        profile = service.route_time_profile([0], [0.0, 3700.0, 7300.0])
        assert profile[0] < profile[1] < profile[2]

    def test_best_departure(self, service):
        depart, travel = service.best_departure(
            [0], window_start_s=0.0, window_end_s=4 * 3600.0, step_s=3600.0
        )
        # Slot 0 (or the equal-speed slot 3) is fastest; never slot 1/2.
        assert depart in (0.0, 3 * 3600.0)
        assert travel == pytest.approx(service.route_time_s([0], depart))

    def test_best_departure_empty_window(self, service):
        with pytest.raises(ValueError):
            service.best_departure([0], 100.0, 100.0)

    def test_multi_link_route(self, service, small_network):
        route = small_network.shortest_path_segments(0, 5)
        sids = [s.segment_id for s in route]
        t = service.route_time_s(sids, depart_s=0.0)
        total_len = sum(s.length_m for s in route)
        assert t == pytest.approx(total_len / 10.0, rel=0.01)
