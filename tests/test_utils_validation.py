"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_fraction,
    check_matrix_pair,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_in_range(self, ok):
        assert check_fraction(ok, "f") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_fraction(bad, "f")


class TestCheckProbability:
    def test_accepts(self):
        assert check_probability(0.3, "p") == 0.3

    def test_rejects(self):
        with pytest.raises(ValueError):
            check_probability(2.0, "p")


class TestCheckFinite:
    def test_accepts_finite(self):
        arr = check_finite(np.ones(3), "a")
        assert arr.shape == (3,)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, bad]), "a")


class TestCheckMatrixPair:
    def test_round_trip(self):
        values = np.arange(6, dtype=float).reshape(2, 3)
        mask = np.ones((2, 3), dtype=bool)
        v, m = check_matrix_pair(values, mask)
        assert v.dtype == np.float64
        assert m.dtype == bool

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix_pair(np.ones(3), np.ones(3))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_matrix_pair(np.ones((2, 3)), np.ones((3, 2)))

    def test_rejects_nan_in_observed(self):
        values = np.array([[1.0, np.nan]])
        mask = np.array([[True, True]])
        with pytest.raises(ValueError, match="finite"):
            check_matrix_pair(values, mask)

    def test_allows_nan_in_unobserved(self):
        values = np.array([[1.0, np.nan]])
        mask = np.array([[True, False]])
        v, m = check_matrix_pair(values, mask)
        assert v[0, 0] == 1.0

    def test_int_mask_coerced(self):
        values = np.ones((2, 2))
        mask = np.array([[1, 0], [0, 1]])
        _, m = check_matrix_pair(values, mask)
        assert m.dtype == bool
        assert m.sum() == 2
