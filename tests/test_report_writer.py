"""Tests for repro.experiments.report_writer."""

import pytest

from repro.experiments.report_writer import (
    SECTION_TITLES,
    render_report,
    write_report,
)


class TestRenderReport:
    def test_contains_titles_and_blocks(self):
        blocks = {"table1": "integrity table", "fig4": "knee values"}
        text = render_report(blocks, profile="quick", seed=3)
        assert "# Reproduction report" in text
        assert SECTION_TITLES["table1"] in text
        assert "integrity table" in text
        assert SECTION_TITLES["fig4"] in text
        assert "`quick`" in text and "`3`" in text

    def test_unknown_key_uses_key_as_title(self):
        text = render_report({"custom_study": "payload"})
        assert "## custom_study" in text

    def test_blocks_fenced(self):
        text = render_report({"table1": "row"})
        assert text.count("```") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_report({})


class TestWriteReport:
    def test_writes_given_blocks(self, tmp_path):
        out = tmp_path / "report.md"
        path = write_report(out, blocks={"table1": "hello"})
        assert path == out
        assert "hello" in out.read_text()

    def test_profile_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "x.md", profile="huge", blocks={"a": "b"})
