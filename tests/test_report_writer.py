"""Tests for repro.experiments.report_writer."""

import pytest

from repro.experiments.report_writer import (
    SECTION_TITLES,
    render_manifest_section,
    render_report,
    write_report,
)


class TestRenderReport:
    def test_contains_titles_and_blocks(self):
        blocks = {"table1": "integrity table", "fig4": "knee values"}
        text = render_report(blocks, profile="quick", seed=3)
        assert "# Reproduction report" in text
        assert SECTION_TITLES["table1"] in text
        assert "integrity table" in text
        assert SECTION_TITLES["fig4"] in text
        assert "`quick`" in text and "`3`" in text

    def test_unknown_key_uses_key_as_title(self):
        text = render_report({"custom_study": "payload"})
        assert "## custom_study" in text

    def test_blocks_fenced(self):
        text = render_report({"table1": "row"})
        assert text.count("```") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_report({})


class TestRenderManifestSection:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        from repro.obs import manifest, trace

        trace.reset()
        trace.enable()
        try:
            with trace.span("job.table1"):
                pass
        finally:
            trace.disable()
        payload = manifest.build_manifest(
            "run-all",
            config={"profile": "smoke"},
            spans=trace.collector().drain(),
        )
        return manifest.write_manifest(payload, tmp_path / "m.json")

    def test_renders_phase_table(self, manifest_path):
        text = render_manifest_section(manifest_path)
        assert "| phase | spans | total (s) | share |" in text
        assert "job.table1" in text
        assert "repro trace summarize" in text

    def test_spanless_manifest_falls_back(self, tmp_path):
        from repro.obs import manifest

        payload = manifest.build_manifest("bench", spans=[])
        path = manifest.write_manifest(payload, tmp_path / "empty.json")
        assert "No spans recorded" in render_manifest_section(path)

    def test_report_includes_manifest_section(self, manifest_path):
        text = render_report(
            {"table1": "rows"}, manifest_path=manifest_path
        )
        assert "## Run timing (per-phase rollup)" in text


class TestWriteReport:
    def test_writes_given_blocks(self, tmp_path):
        out = tmp_path / "report.md"
        path = write_report(out, blocks={"table1": "hello"})
        assert path == out
        assert "hello" in out.read_text()

    def test_profile_validated(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "x.md", profile="huge", blocks={"a": "b"})
