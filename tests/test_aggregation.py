"""Tests for repro.probes.aggregation."""

import numpy as np
import pytest

from repro.core.tcm import TimeGrid
from repro.probes.aggregation import (
    AggregationConfig,
    aggregate_reports,
    reports_per_cell,
)
from repro.probes.report import ProbeReport, ReportBatch


def grid3():
    return TimeGrid(start_s=0.0, slot_s=60.0, num_slots=3)


def report(t, seg, speed, vid=0):
    return ProbeReport(vehicle_id=vid, time_s=t, x=0.0, y=0.0, speed_kmh=speed, segment_id=seg)


class TestAggregationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_speed_kmh": -1.0},
            {"min_reports_per_cell": 0},
            {"max_speed_kmh": 1.0, "min_speed_kmh": 2.0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AggregationConfig(**kwargs)


class TestAggregateReports:
    def test_averages_per_cell(self):
        batch = ReportBatch([report(10.0, 0, 20.0), report(20.0, 0, 40.0)])
        tcm = aggregate_reports(batch, grid3(), [0, 1])
        assert tcm.values[0, 0] == pytest.approx(30.0)
        assert tcm.mask[0, 0]

    def test_unvisited_cells_missing(self):
        batch = ReportBatch([report(10.0, 0, 20.0)])
        tcm = aggregate_reports(batch, grid3(), [0, 1])
        assert not tcm.mask[1, 0]
        assert not tcm.mask[0, 1]
        assert tcm.values[1, 0] == 0.0

    def test_slot_assignment(self):
        batch = ReportBatch([report(65.0, 1, 25.0)])
        tcm = aggregate_reports(batch, grid3(), [0, 1])
        assert tcm.mask[1, 1]
        assert not tcm.mask[0, 1]

    def test_idle_reports_filtered(self):
        batch = ReportBatch([report(10.0, 0, 0.5), report(20.0, 0, 30.0)])
        tcm = aggregate_reports(batch, grid3(), [0])
        assert tcm.values[0, 0] == pytest.approx(30.0)

    def test_glitch_speeds_filtered(self):
        batch = ReportBatch([report(10.0, 0, 500.0)])
        tcm = aggregate_reports(batch, grid3(), [0])
        assert not tcm.mask[0, 0]

    def test_unknown_segment_skipped(self):
        batch = ReportBatch([report(10.0, 99, 30.0), report(20.0, -1, 30.0)])
        tcm = aggregate_reports(batch, grid3(), [0, 1])
        assert tcm.integrity == 0.0

    def test_out_of_window_skipped(self):
        batch = ReportBatch([report(-10.0, 0, 30.0), report(500.0, 0, 30.0)])
        tcm = aggregate_reports(batch, grid3(), [0])
        assert tcm.integrity == 0.0

    def test_min_reports_per_cell(self):
        batch = ReportBatch([report(10.0, 0, 30.0), report(70.0, 0, 30.0), report(80.0, 0, 40.0)])
        config = AggregationConfig(min_reports_per_cell=2)
        tcm = aggregate_reports(batch, grid3(), [0], config)
        assert not tcm.mask[0, 0]  # single report
        assert tcm.mask[1, 0]  # two reports

    def test_empty_batch(self):
        tcm = aggregate_reports(ReportBatch([]), grid3(), [0, 1])
        assert tcm.integrity == 0.0
        assert tcm.shape == (3, 2)

    def test_duplicate_segment_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            aggregate_reports(ReportBatch([]), grid3(), [0, 0])

    def test_column_order_follows_segment_ids(self):
        batch = ReportBatch([report(10.0, 5, 30.0)])
        tcm = aggregate_reports(batch, grid3(), [7, 5])
        assert tcm.mask[0, 1]
        assert not tcm.mask[0, 0]

    def test_matches_ground_truth_speeds(self, ground_truth):
        """Aggregated probe speeds track the generating ground truth."""
        from repro.mobility.fleet import FleetConfig, FleetSimulator
        from repro.mobility.reporting import ReportingConfig

        config = FleetConfig(
            num_vehicles=40,
            reporting=ReportingConfig(speed_noise_kmh=0.0),
        )
        batch = FleetSimulator(ground_truth, config, seed=0).run()
        tcm = aggregate_reports(
            batch, ground_truth.grid, ground_truth.network.segment_ids
        )
        mask = tcm.mask
        assert tcm.integrity > 0.05
        truth_vals = ground_truth.tcm.values[mask]
        measured = tcm.values[mask]
        rel = np.abs(measured - truth_vals) / truth_vals
        # Driver factors add ~10 % per-vehicle spread; averages stay close.
        assert np.median(rel) < 0.15


class TestReportsPerCell:
    def test_counts(self):
        batch = ReportBatch(
            [report(10.0, 0, 30.0), report(20.0, 0, 0.1), report(70.0, 1, 30.0)]
        )
        counts = reports_per_cell(batch, grid3(), [0, 1])
        assert counts[0, 0] == 2  # no speed filter here
        assert counts[1, 1] == 1
        assert counts.sum() == 3


class TestMethodEquivalence:
    def _random_batch(self, n, seed):
        rng = np.random.default_rng(seed)
        times = rng.uniform(-30.0, 210.0, n)  # spills past both window edges
        segs = rng.choice([-1, 0, 1, 2, 5, 99], size=n)  # 5/99 unknown
        speeds = rng.uniform(-5.0, 200.0, n)  # some outside the speed band
        return ReportBatch(
            ProbeReport(
                vehicle_id=i % 4,
                time_s=float(times[i]),
                x=0.0,
                y=0.0,
                speed_kmh=float(speeds[i]),
                segment_id=int(segs[i]),
            )
            for i in range(n)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bincount_matches_scalar(self, seed):
        batch = self._random_batch(500, seed)
        grid = grid3()
        ids = [0, 1, 2]
        fast = aggregate_reports(batch, grid, ids, method="bincount")
        slow = aggregate_reports(batch, grid, ids, method="scalar")
        np.testing.assert_array_equal(fast.mask, slow.mask)
        np.testing.assert_allclose(
            fast.values[fast.mask], slow.values[slow.mask], atol=1e-12
        )

    def test_bincount_matches_scalar_with_speed_filter(self):
        batch = self._random_batch(500, 3)
        grid = grid3()
        ids = [0, 1, 2]
        config = AggregationConfig(min_speed_kmh=20.0, max_speed_kmh=90.0)
        fast = aggregate_reports(batch, grid, ids, config, method="bincount")
        slow = aggregate_reports(batch, grid, ids, config, method="scalar")
        np.testing.assert_array_equal(fast.mask, slow.mask)
        np.testing.assert_allclose(
            fast.values[fast.mask], slow.values[slow.mask], atol=1e-12
        )

    def test_empty_cells_stay_empty_in_both(self):
        # Only segment 1 / slot 0 is visited; every other cell must be
        # missing under both methods.
        batch = ReportBatch([report(10.0, 1, 40.0)])
        grid = grid3()
        for method in ("bincount", "scalar"):
            tcm = aggregate_reports(batch, grid, [0, 1, 2], method=method)
            assert tcm.mask[0, 1]
            assert tcm.mask.sum() == 1

    def test_empty_batch_equivalent(self):
        grid = grid3()
        for method in ("bincount", "scalar"):
            tcm = aggregate_reports(ReportBatch([]), grid, [0, 1], method=method)
            assert not tcm.mask.any()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_reports_per_cell_matches_scalar(self, seed):
        batch = self._random_batch(400, seed)
        grid = grid3()
        ids = [0, 1, 2]
        fast = reports_per_cell(batch, grid, ids, method="bincount")
        slow = reports_per_cell(batch, grid, ids, method="scalar")
        np.testing.assert_array_equal(fast, slow)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            aggregate_reports(ReportBatch([]), grid3(), [0], method="nope")
