"""Integration tests: applications consuming estimated (not true) TCMs.

The apps' unit tests feed them clean matrices; these tests wire the
whole chain — simulate, estimate, consume — to catch contract drift
between the estimator's output and the application layer.
"""

import numpy as np
import pytest

from repro.apps import CongestionMonitor, TripPlannerService
from repro.core import TrafficEstimator
from repro.core.online_anomaly import OnlineAnomalyMonitor
from repro.core.streaming import StreamingEstimator
from repro.datasets.scenarios import rush_hour_incident


@pytest.fixture(scope="module")
def estimated_world():
    dataset, incident, window = rush_hour_incident(seed=0)
    output = TrafficEstimator(lam=10.0, seed=0).estimate(dataset.measurements)
    return dataset, output, incident, window


class TestPlannerOnEstimates:
    def test_plans_on_estimated_tcm(self, estimated_world):
        dataset, output, incident, _ = estimated_world
        planner = TripPlannerService(dataset.network, output.estimate)
        nodes = [n.node_id for n in dataset.network.intersections()]
        plan = planner.plan(nodes[0], nodes[-1], depart_s=9 * 3600.0)
        assert plan is not None
        assert plan.travel_time_s > 0

    def test_incident_lengthens_planned_time(self, estimated_world):
        dataset, output, incident, (first, last) = estimated_world
        planner = TripPlannerService(dataset.network, output.estimate)
        seg = dataset.network.segment(incident.core_segment)
        slot_s = output.estimate.grid.slot_s
        during = planner.plan(seg.start, seg.end, depart_s=(first + 0.5) * slot_s)
        before = planner.plan(seg.start, seg.end, depart_s=(first - 8) * slot_s)
        assert during is not None and before is not None
        # The planner either takes longer or routes around; when it has
        # to traverse anyway, its time must reflect the jam.
        assert during.travel_time_s >= before.travel_time_s * 0.9


class TestMonitorOnEstimates:
    def test_peak_slot_near_incident_or_rush(self, estimated_world):
        dataset, output, _, (first, last) = estimated_world
        monitor = CongestionMonitor(dataset.network, output.estimate)
        peak = monitor.peak_slot()
        slots_per_day = int(86_400.0 / output.estimate.grid.slot_s)
        # Peak congestion lands in the day's second half (evening rush
        # plus the planted incident), not at 3 am.
        assert peak > slots_per_day * 0.3

    def test_incident_segment_ranks_high(self, estimated_world):
        dataset, output, incident, (first, last) = estimated_world
        monitor = CongestionMonitor(dataset.network, output.estimate)
        ranking = monitor.segment_ranking(slot_range=(first, last + 1))
        top_ids = ranking.segment_ids[:5]
        assert incident.core_segment in top_ids


class TestStreamingWithOnlineMonitor:
    def test_pipeline_runs_end_to_end(self, estimated_world):
        dataset, _, _, _ = estimated_world
        grid = dataset.ground_truth.grid
        streamer = StreamingEstimator(
            segment_ids=dataset.network.segment_ids,
            slot_s=grid.slot_s,
            window_slots=12,
            seed=0,
        )
        monitor = OnlineAnomalyMonitor(
            dataset.network.segment_ids,
            slot_s=grid.slot_s,
            slots_per_day=int(86_400.0 / grid.slot_s),
            warmup_days=1,
        )
        for report in dataset.reports:
            for est in streamer.ingest(report):
                monitor.observe(est)
        streamer.flush()
        assert len(streamer.estimates) >= grid.num_slots - 1
