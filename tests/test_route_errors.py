"""Tests for repro.metrics.route_errors."""

import numpy as np
import pytest

from repro.core.completion import CompressiveSensingCompleter
from repro.core.tcm import TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.metrics.route_errors import route_travel_time_errors


class TestRouteErrors:
    def test_perfect_estimate_zero_error(self, small_network, truth_tcm):
        summary = route_travel_time_errors(
            small_network, truth_tcm, truth_tcm, num_routes=10, seed=0
        )
        assert summary.mean_relative_error == 0.0
        assert summary.num_routes == 10
        assert summary.mean_true_minutes > 0

    def test_estimate_error_small_on_good_completion(self, small_network, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.3, seed=1)
        masked = truth_tcm.with_mask(mask)
        completer = CompressiveSensingCompleter(
            rank=2, lam=10.0, iterations=60, clip_min=3.0, seed=0
        )
        estimate = TrafficConditionMatrix(
            completer.complete(masked).estimate,
            grid=truth_tcm.grid,
            segment_ids=truth_tcm.segment_ids,
        )
        summary = route_travel_time_errors(
            small_network, truth_tcm, estimate, num_routes=20, seed=0
        )
        assert summary.mean_relative_error < 0.25
        assert summary.p90_relative_error >= summary.mean_relative_error * 0.5

    def test_route_error_below_cell_error(self, small_network, truth_tcm):
        """Per-link errors partially cancel along routes."""
        from repro.metrics.errors import nmae

        mask = random_integrity_mask(truth_tcm.shape, 0.3, seed=2)
        masked = truth_tcm.with_mask(mask)
        completer = CompressiveSensingCompleter(
            rank=2, lam=10.0, iterations=60, clip_min=3.0, seed=0
        )
        est_values = completer.complete(masked).estimate
        estimate = TrafficConditionMatrix(
            est_values, grid=truth_tcm.grid, segment_ids=truth_tcm.segment_ids
        )
        cell_error = nmae(truth_tcm.values, est_values, ~mask)
        summary = route_travel_time_errors(
            small_network, truth_tcm, estimate, num_routes=30,
            min_links=6, max_links=20, seed=0,
        )
        assert summary.mean_relative_error < cell_error * 1.5

    def test_mismatched_ids_rejected(self, small_network, truth_tcm):
        other = truth_tcm.select_segments(truth_tcm.segment_ids[:-1])
        with pytest.raises(ValueError):
            route_travel_time_errors(small_network, truth_tcm, other)

    def test_params_validated(self, small_network, truth_tcm):
        with pytest.raises(ValueError):
            route_travel_time_errors(
                small_network, truth_tcm, truth_tcm, num_routes=0
            )
        with pytest.raises(ValueError):
            route_travel_time_errors(
                small_network, truth_tcm, truth_tcm, min_links=5, max_links=2
            )
