"""Tests for repro.baselines.knn (Naive KNN)."""

import numpy as np
import pytest

from repro.baselines.knn import NaiveKNN
from repro.datasets.masks import random_integrity_mask
from repro.metrics.errors import nmae
from tests.conftest import make_low_rank


class TestNaiveKNN:
    def test_observed_cells_pass_through(self):
        values = np.arange(9, dtype=float).reshape(3, 3) + 1
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        out = NaiveKNN(k=4).complete(np.where(mask, values, 0.0), mask)
        assert np.allclose(out[mask], values[mask])

    def test_missing_filled_with_neighbour_average(self):
        values = np.array(
            [
                [1.0, 2.0, 0.0],
                [3.0, 0.0, 4.0],
                [0.0, 5.0, 6.0],
            ]
        )
        mask = values > 0
        out = NaiveKNN(k=4).complete(values, mask)
        # Center cell has exactly 6 observed cells around; its 4 nearest
        # are the cross neighbours (2, 3, 4, 5).
        assert out[1, 1] == pytest.approx((2 + 3 + 4 + 5) / 4)

    def test_all_missing_fallback(self):
        out = NaiveKNN(k=2, fallback=7.0).complete(
            np.zeros((2, 2)), np.zeros((2, 2), dtype=bool)
        )
        assert np.all(out == 7.0)

    def test_fewer_observations_than_k(self):
        values = np.zeros((3, 3))
        values[0, 0] = 5.0
        mask = values > 0
        out = NaiveKNN(k=4).complete(values, mask)
        assert np.all(out == 5.0)

    def test_complete_input_unchanged(self):
        values = np.random.default_rng(0).uniform(1, 5, (4, 4))
        mask = np.ones((4, 4), dtype=bool)
        assert np.allclose(NaiveKNN().complete(values, mask), values)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            NaiveKNN(k=0)

    def test_reasonable_error_on_smooth_data(self, truth_tcm):
        mask = random_integrity_mask(truth_tcm.shape, 0.4, seed=0)
        measured = np.where(mask, truth_tcm.values, 0.0)
        out = NaiveKNN(k=4).complete(measured, mask)
        assert nmae(truth_tcm.values, out, ~mask) < 0.4

    def test_estimates_within_observed_range(self, low_rank_matrix):
        mask = random_integrity_mask(low_rank_matrix.shape, 0.3, seed=1)
        out = NaiveKNN(k=4).complete(np.where(mask, low_rank_matrix, 0.0), mask)
        observed = low_rank_matrix[mask]
        assert out.min() >= observed.min() - 1e-9
        assert out.max() <= observed.max() + 1e-9
