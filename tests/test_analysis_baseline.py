"""Tests for repro.analysis.baseline (the accepted-findings ratchet)."""

import json
import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.baseline import (
    BASELINE_VERSION,
    BaselineMismatch,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)

DIRTY = textwrap.dedent(
    """
    def total(values):
        return sum(v for v in set(values))
    """
)

DIRTIER = DIRTY + textwrap.dedent(
    """
    def total2(values):
        return sum(x for x in set(values)) * 2
    """
)


def report_of(source, path="pkg/mod.py"):
    return lint_source(source, path=path)


class TestFingerprint:
    def test_stable_across_line_moves(self):
        base = report_of(DIRTY).findings[0]
        shifted = report_of("\n\n\n" + DIRTY).findings[0]
        assert base.line != shifted.line
        assert fingerprint(base) == fingerprint(shifted)

    def test_changes_with_path_and_content(self):
        a = report_of(DIRTY, path="a.py").findings[0]
        b = report_of(DIRTY, path="b.py").findings[0]
        assert fingerprint(a) != fingerprint(b)


class TestRatchet:
    def test_accepted_findings_pass(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, report_of(DIRTY))
        new, accepted = apply_baseline(report_of(DIRTY), load_baseline(path))
        assert new == []
        assert len(accepted) == len(report_of(DIRTY).findings)

    def test_new_finding_fails(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, report_of(DIRTY))
        new, accepted = apply_baseline(
            report_of(DIRTIER), load_baseline(path)
        )
        assert new, "the extra finding must not be covered"
        assert accepted, "the original finding is still covered"

    def test_update_baseline_re_accepts(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, report_of(DIRTIER))
        new, _ = apply_baseline(report_of(DIRTIER), load_baseline(path))
        assert new == []

    def test_duplicate_lines_counted_as_multiset(self, tmp_path):
        doubled = DIRTY + DIRTY.replace("def total", "def total_again")
        path = tmp_path / "baseline.json"
        write_baseline(path, report_of(DIRTY))
        new, accepted = apply_baseline(
            report_of(doubled), load_baseline(path)
        )
        # Same snippet twice, only one accepted occurrence.
        assert len(accepted) == 1
        assert len(new) == 1

    def test_empty_baseline_file_shape(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, report_of("x = 1\n"))
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert payload["entries"] == {}


class TestBaselineValidation:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(BaselineMismatch):
            load_baseline(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(BaselineMismatch):
            load_baseline(path)

    def test_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"version": BASELINE_VERSION, "entries": {"abc": {"count": "x"}}}
            )
        )
        with pytest.raises(BaselineMismatch):
            load_baseline(path)


class TestCommittedBaseline:
    def test_repo_baseline_loads_and_src_is_covered(self):
        from pathlib import Path

        from repro.analysis import lint_paths

        root = Path(__file__).resolve().parents[1]
        baseline = load_baseline(root / ".lint-baseline.json")
        report = lint_paths([str(root / "src" / "repro")])
        new, _ = apply_baseline(report, baseline)
        assert new == []
