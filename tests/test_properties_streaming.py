"""Property-based tests for the streaming estimator and shift schedules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.streaming import StreamingEstimator
from repro.mobility.shifts import ShiftSchedule
from repro.probes.report import ProbeReport

fast_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

report_lists = st.lists(
    st.tuples(
        st.floats(0.0, 3600.0),   # time within an hour
        st.integers(0, 3),         # segment
        st.floats(5.0, 80.0),      # speed
    ),
    min_size=1,
    max_size=40,
)


def to_reports(raw):
    return [
        ProbeReport(i, t, 0.0, 0.0, speed, seg)
        for i, (t, seg, speed) in enumerate(sorted(raw))
    ]


class TestStreamingInvariants:
    @fast_settings
    @given(report_lists)
    def test_slot_count_matches_time_span(self, raw):
        streamer = StreamingEstimator(
            [0, 1, 2, 3], slot_s=600.0, window_slots=4,
            cold_iterations=5, warm_iterations=2, seed=0,
        )
        streamer.ingest_many(to_reports(raw))
        streamer.flush()
        last_time = max(t for t, _, _ in raw)
        expected_slots = int(last_time // 600.0) + 1
        assert len(streamer.estimates) == expected_slots

    @fast_settings
    @given(report_lists)
    def test_slot_starts_contiguous(self, raw):
        streamer = StreamingEstimator(
            [0, 1, 2, 3], slot_s=600.0, window_slots=4,
            cold_iterations=5, warm_iterations=2, seed=0,
        )
        streamer.ingest_many(to_reports(raw))
        streamer.flush()
        starts = [e.slot_start_s for e in streamer.estimates]
        assert starts == [600.0 * i for i in range(len(starts))]

    @fast_settings
    @given(report_lists)
    def test_estimates_finite_and_nonnegative(self, raw):
        streamer = StreamingEstimator(
            [0, 1, 2, 3], slot_s=600.0, window_slots=4,
            cold_iterations=5, warm_iterations=2, seed=0,
        )
        streamer.ingest_many(to_reports(raw))
        streamer.flush()
        for est in streamer.estimates:
            assert np.all(np.isfinite(est.speeds_kmh))
            assert np.all(est.speeds_kmh >= 0.0)
            assert 0.0 <= est.observed_fraction <= 1.0

    @fast_settings
    @given(report_lists)
    def test_observed_slot_average_published(self, raw):
        """Where a slot observed a segment, the published value is the
        aggregation-filtered report mean, not the model output."""
        streamer = StreamingEstimator(
            [0, 1, 2, 3], slot_s=600.0, window_slots=4,
            cold_iterations=5, warm_iterations=2,
            min_speed_kmh=2.0, seed=0,
        )
        streamer.ingest_many(to_reports(raw))
        streamer.flush()
        for t, seg, speed in raw:
            if speed < 2.0:
                continue
            slot = int(t // 600.0)
            expected = np.mean(
                [s for (tt, sg, s) in raw
                 if sg == seg and int(tt // 600.0) == slot and s >= 2.0]
            )
            published = streamer.estimates[slot].speeds_kmh[seg]
            assert published == pytest.approx(expected)


class TestShiftScheduleProperties:
    @fast_settings
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=24, max_size=24),
        st.floats(0.0, 7 * 86_400.0),
    )
    def test_duty_fraction_bounded(self, duty, t):
        schedule = ShiftSchedule(tuple(duty))
        assert 0.0 <= schedule.duty_fraction(t) <= 1.0

    @fast_settings
    @given(st.lists(st.floats(0.0, 1.0), min_size=24, max_size=24))
    def test_windows_partition_monotone_in_phase(self, duty):
        """A lower-phase vehicle is on duty whenever a higher one is."""
        schedule = ShiftSchedule(tuple(duty))
        low = schedule.duty_windows(0.1, 0.0, 86_400.0)
        high = schedule.duty_windows(0.9, 0.0, 86_400.0)

        def total(windows):
            return sum(e - s for s, e in windows)

        assert total(low) >= total(high)

    @fast_settings
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=24, max_size=24),
        st.floats(0.0, 0.999),
    )
    def test_windows_within_range_and_ordered(self, duty, phase):
        schedule = ShiftSchedule(tuple(duty))
        windows = schedule.duty_windows(phase, 1000.0, 90_000.0)
        prev_end = 1000.0
        for start, end in windows:
            assert 1000.0 <= start < end <= 90_000.0
            assert start >= prev_end
            prev_end = end
