"""Tests for the bottom-up effect-inference fixpoint and @effects contracts.

Covers direct-effect extraction for all seven effects, the transitive
fixpoint (chains, mutual recursion, obs transparency, the constructor
exemption), the interprocedural unordered-argument join, and the static
verification of ``@effects(...)`` declarations.
"""

import pytest

from repro.analysis.callgraph import FunctionId, Program
from repro.analysis.effects import (
    contract_findings,
    direct_effects,
    infer_effects,
    parse_contract,
    unordered_param_sinks,
)


def program_of(source, name="m"):
    return Program.from_sources({name: source})


def effects_of(source, qualname, name="m"):
    """(effect, kind) pairs reachable from one function."""
    program = program_of(source, name)
    pe = infer_effects(program)
    return set(pe.effects_of(FunctionId(name, qualname)))


def direct_of(source, qualname, name="m"):
    program = program_of(source, name)
    info = program.functions[FunctionId(name, qualname)]
    return {(s.effect, s.kind) for s in direct_effects(info)}


class TestDirectEffects:
    def test_global_mutation(self):
        src = "CACHE = {}\ndef f(k, v):\n    CACHE[k] = v\n"
        assert ("mutates-global", "global") in direct_of(src, "f")

    def test_global_rebind(self):
        src = "N = 0\ndef f():\n    global N\n    N = 1\n"
        assert ("mutates-global", "rebind") in direct_of(src, "f")

    def test_closure_mutation(self):
        src = (
            "def outer():\n"
            "    acc = []\n"
            "    def inner(x):\n"
            "        acc.append(x)\n"
            "    return inner\n"
        )
        assert ("mutates-nonlocal", "closure") in direct_of(src, "outer.inner")

    def test_mutable_default_mutation(self):
        src = "def f(x, cache={}):\n    cache[x] = 1\n"
        assert ("mutates-nonlocal", "mutable-default") in direct_of(src, "f")

    def test_instance_state_outside_init(self):
        src = (
            "class C:\n"
            "    def bump(self):\n"
            "        self.count = 1\n"
        )
        assert ("mutates-nonlocal", "instance-state") in direct_of(src, "C.bump")

    def test_constructor_self_mutation_exempt(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
        )
        assert direct_of(src, "C.__init__") == set()

    def test_rng_global_numpy(self):
        src = "import numpy as np\ndef f():\n    return np.random.random()\n"
        assert ("rng", "rng-global") in direct_of(src, "f")

    def test_rng_global_stdlib(self):
        src = "import random\ndef f():\n    return random.random()\n"
        assert ("rng", "rng-global") in direct_of(src, "f")

    def test_rng_create_local(self):
        src = (
            "from repro.utils.rng import ensure_rng\n"
            "def f(seed):\n"
            "    return ensure_rng(seed)\n"
        )
        assert ("rng", "rng-create") in direct_of(src, "f")

    def test_rng_draw_from_param(self):
        src = "def f(rng):\n    return rng.normal()\n"
        assert ("rng", "rng-draw") in direct_of(src, "f")

    def test_rng_shared_from_global(self):
        src = (
            "import numpy as np\n"
            "RNG = np.random.default_rng(0)\n"
            "def f():\n"
            "    return RNG.normal()\n"
        )
        assert ("rng", "rng-shared") in direct_of(src, "f")

    def test_wall_clock(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert ("wall-clock", "clock") in direct_of(src, "f")

    def test_io_open(self):
        src = "def f(p):\n    return open(p).read()\n"
        assert ("io", "stream") in direct_of(src, "f")

    def test_io_numpy_save(self):
        src = "import numpy as np\ndef f(p, arr):\n    np.save(p, arr)\n"
        assert ("io", "serialization") in direct_of(src, "f")

    def test_io_path_write(self):
        src = "def f(p, text):\n    p.write_text(text)\n"
        assert ("io", "filesystem") in direct_of(src, "f")

    def test_env_read(self):
        src = "import os\ndef f():\n    return os.environ['HOME']\n"
        assert ("env", "environ") in direct_of(src, "f")

    def test_unordered_loop_with_sink(self):
        src = (
            "def f(values):\n"
            "    total = 0.0\n"
            "    for v in set(values):\n"
            "        total += v\n"
            "    return total\n"
        )
        assert ("unordered-iteration", "loop") in direct_of(src, "f")

    def test_pure_numeric_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.linalg.solve(a.T @ a, a.T @ b)\n"
        )
        assert direct_of(src, "f") == set()


class TestFixpoint:
    def test_effect_propagates_one_hop(self):
        src = (
            "import numpy as np\n"
            "def noisy():\n"
            "    return np.random.random()\n"
            "def caller():\n"
            "    return noisy()\n"
        )
        assert ("rng", "rng-global") in effects_of(src, "caller")

    def test_chain_records_hops(self):
        src = (
            "import time\n"
            "def c():\n"
            "    return time.time()\n"
            "def b():\n"
            "    return c()\n"
            "def a():\n"
            "    return b()\n"
        )
        program = program_of(src)
        pe = infer_effects(program)
        entry = pe.effects_of(FunctionId("m", "a"))[("wall-clock", "clock")]
        assert entry.hops == 2
        assert [step.callee.qualname for step in entry.chain] == ["b", "c"]

    def test_mutual_recursion_converges_and_shares_effects(self):
        src = (
            "import numpy as np\n"
            "def ping(n):\n"
            "    return 0 if n == 0 else pong(n - 1)\n"
            "def pong(n):\n"
            "    np.random.random()\n"
            "    return ping(n - 1)\n"
        )
        assert ("rng", "rng-global") in effects_of(src, "ping")
        assert ("rng", "rng-global") in effects_of(src, "pong")

    def test_obs_calls_are_transparent(self):
        program = Program.from_sources(
            {
                "repro.obs.trace": (
                    "import time\n"
                    "def span(name):\n"
                    "    return time.perf_counter()\n"
                ),
                "app": (
                    "from repro.obs import trace\n"
                    "def instrumented():\n"
                    "    trace.span('x')\n"
                ),
            }
        )
        pe = infer_effects(program)
        assert pe.effects_of(FunctionId("app", "instrumented")) == {}
        # The obs function itself still owns its effect.
        assert ("wall-clock", "clock") in pe.effects_of(
            FunctionId("repro.obs.trace", "span")
        )

    def test_cross_module_propagation(self):
        program = Program.from_sources(
            {
                "pkg.util": "def touch(p):\n    p.write_text('x')\n",
                "pkg.main": (
                    "from pkg.util import touch\n"
                    "def run(p):\n"
                    "    touch(p)\n"
                ),
            }
        )
        pe = infer_effects(program)
        assert ("io", "filesystem") in pe.effects_of(FunctionId("pkg.main", "run"))


class TestUnorderedParamSinks:
    def test_numpy_mean_over_comprehension_of_param(self):
        src = (
            "import numpy as np\n"
            "def helper(cluster, row):\n"
            "    return float(np.mean([row[s] for s in cluster]))\n"
        )
        program = program_of(src)
        info = program.functions[FunctionId("m", "helper")]
        assert "cluster" in unordered_param_sinks(info)

    def test_sum_generator_over_param(self):
        src = "def helper(xs):\n    return sum(x for x in xs)\n"
        program = program_of(src)
        info = program.functions[FunctionId("m", "helper")]
        assert "xs" in unordered_param_sinks(info)

    def test_sorted_param_is_not_a_sink(self):
        src = "def helper(xs):\n    return [x for x in sorted(xs)]\n"
        program = program_of(src)
        info = program.functions[FunctionId("m", "helper")]
        assert unordered_param_sinks(info) == {}

    def test_set_argument_joins_into_callers_effects(self):
        src = (
            "def helper(xs):\n"
            "    return sum(x for x in xs)\n"
            "def caller(values):\n"
            "    distinct = set(values)\n"
            "    return helper(distinct)\n"
        )
        table = effects_of(src, "caller")
        assert ("unordered-iteration", "unordered-arg") in table

    def test_list_argument_is_clean(self):
        src = (
            "def helper(xs):\n"
            "    return sum(x for x in xs)\n"
            "def caller(values):\n"
            "    ordered = sorted(values)\n"
            "    return helper(ordered)\n"
        )
        assert ("unordered-iteration", "unordered-arg") not in effects_of(
            src, "caller"
        )


class TestContracts:
    def test_parse_pure(self):
        src = (
            "from repro.utils.contracts import effects\n"
            "@effects('pure')\n"
            "def f(x):\n"
            "    return x\n"
        )
        program = program_of(src)
        contract = parse_contract(program.functions[FunctionId("m", "f")])
        assert contract is not None
        assert contract.allowed == frozenset()

    def test_parse_allow_set(self):
        src = (
            "from repro.utils.contracts import effects\n"
            "@effects(allow={'rng', 'io'})\n"
            "def f(x):\n"
            "    return x\n"
        )
        program = program_of(src)
        contract = parse_contract(program.functions[FunctionId("m", "f")])
        assert contract.allowed == frozenset({"rng", "io"})

    def test_no_decorator_no_contract(self):
        program = program_of("def f(x):\n    return x\n")
        assert parse_contract(program.functions[FunctionId("m", "f")]) is None

    def test_pure_function_satisfies_pure(self):
        src = (
            "from repro.utils.contracts import effects\n"
            "@effects('pure')\n"
            "def f(a, b):\n"
            "    return a + b\n"
        )
        program = program_of(src)
        assert contract_findings(program, infer_effects(program)) == []

    def test_transitive_violation_reported_with_chain(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import effects\n"
            "def noisy():\n"
            "    return np.random.random()\n"
            "@effects('pure')\n"
            "def kernel(x):\n"
            "    return x + noisy()\n"
        )
        program = program_of(src)
        findings = contract_findings(program, infer_effects(program))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "effect-contract"
        assert finding.severity == "error"
        assert "reaches effect 'rng'" in finding.message
        # def line anchor + provenance through the helper
        assert finding.line == 6
        assert len(finding.trace) == 2
        assert "calls noisy()" in finding.trace[0].note

    def test_allowed_effect_passes(self):
        src = (
            "import numpy as np\n"
            "from repro.utils.contracts import effects\n"
            "@effects(allow={'rng'})\n"
            "def f(rng):\n"
            "    return rng.normal()\n"
        )
        program = program_of(src)
        assert contract_findings(program, infer_effects(program)) == []

    def test_one_finding_per_violated_effect(self):
        src = (
            "import numpy as np\n"
            "import time\n"
            "from repro.utils.contracts import effects\n"
            "@effects('pure')\n"
            "def f():\n"
            "    time.sleep(0)\n"
            "    t = time.time()\n"
            "    return np.random.random() + t\n"
        )
        program = program_of(src)
        findings = contract_findings(program, infer_effects(program))
        assert {f.message.split("effect ")[1][1:4] for f in findings} == {
            "rng",
            "wal",
        }
        assert len(findings) == 2


class TestRuntimeDecorator:
    def test_effects_decorator_is_zero_cost_marker(self):
        from repro.utils.contracts import effects

        @effects("pure")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__repro_effects__ == frozenset()

    def test_effects_allow_records_names(self):
        from repro.utils.contracts import effects

        @effects(allow={"rng"})
        def f():
            pass

        assert f.__repro_effects__ == frozenset({"rng"})

    def test_effects_rejects_unknown_name(self):
        from repro.utils.contracts import effects

        with pytest.raises(ValueError, match="unknown effect"):
            effects("definitely-not-an-effect")

    def test_effects_rejects_pure_plus_allow(self):
        from repro.utils.contracts import effects

        with pytest.raises(ValueError, match="pure"):
            effects("pure", allow={"rng"})

    def test_hot_path_marker(self):
        from repro.utils.contracts import hot_path

        @hot_path
        def f(x):
            return x * 2

        assert f(2) == 4
        assert f.__repro_hot_path__ is True
