"""Tests for repro.mobility.trips."""

import numpy as np
import pytest

from repro.mobility.trips import (
    DemandModel,
    GreedyRouter,
    ShortestPathRouter,
    TripPlanner,
)


class TestDemandModel:
    def test_probabilities_sum_to_one(self, small_network):
        demand = DemandModel(small_network)
        assert demand._probs.sum() == pytest.approx(1.0)

    def test_sample_nodes_valid(self, small_network, rng):
        demand = DemandModel(small_network)
        nodes = demand.sample_nodes(100, rng)
        valid = {n.node_id for n in small_network.intersections()}
        assert set(int(n) for n in nodes) <= valid

    def test_center_preferred(self, small_network, rng):
        demand = DemandModel(small_network, uniform_floor=0.0)
        center = small_network.centroid()
        nodes = demand.sample_nodes(500, rng)
        dists = [
            small_network.intersection(int(n)).location.distance_to(center)
            for n in nodes
        ]
        all_dists = [
            n.location.distance_to(center) for n in small_network.intersections()
        ]
        assert np.mean(dists) < np.mean(all_dists)

    def test_uniform_floor_one_is_uniform(self, small_network):
        demand = DemandModel(small_network, uniform_floor=1.0)
        assert np.allclose(demand._probs, demand._probs[0])

    def test_rejects_bad_floor(self, small_network):
        with pytest.raises(ValueError):
            DemandModel(small_network, uniform_floor=1.5)


class TestShortestPathRouter:
    def test_route_connects(self, small_network):
        router = ShortestPathRouter(small_network)
        route = router.route(0, 15)
        assert route[0].start == 0
        assert route[-1].end == 15
        for a, b in zip(route[:-1], route[1:]):
            assert a.end == b.start

    def test_same_node_empty(self, small_network):
        assert ShortestPathRouter(small_network).route(3, 3) == []


class TestGreedyRouter:
    def test_reaches_destination_on_grid(self, small_network, rng):
        router = GreedyRouter(small_network)
        for target in (5, 10, 15):
            route = router.route(0, target, rng)
            assert route, f"no route to {target}"
            assert route[-1].end == target

    def test_route_is_connected(self, small_network, rng):
        route = GreedyRouter(small_network).route(0, 15, rng)
        for a, b in zip(route[:-1], route[1:]):
            assert a.end == b.start

    def test_near_optimal_on_grid(self, small_network, rng):
        greedy = GreedyRouter(small_network)
        exact = ShortestPathRouter(small_network)
        g_len = sum(s.length_m for s in greedy.route(0, 15, rng))
        e_len = sum(s.length_m for s in exact.route(0, 15, rng))
        assert g_len <= e_len * 1.3

    def test_same_node_empty(self, small_network, rng):
        assert GreedyRouter(small_network).route(7, 7, rng) == []

    def test_max_steps_bounds_route(self, small_network, rng):
        router = GreedyRouter(small_network, max_steps=2)
        route = router.route(0, 15, rng)
        assert len(route) <= 2


class TestTripPlanner:
    def test_plans_valid_trip(self, small_network, rng):
        planner = TripPlanner(small_network)
        route = planner.plan_trip(0, rng)
        assert route
        assert route[0].start == 0

    def test_min_trip_length_respected(self, small_network, rng):
        planner = TripPlanner(small_network, min_trip_m=350.0)
        origin = 0
        origin_loc = small_network.intersection(origin).location
        for _ in range(10):
            route = planner.plan_trip(origin, rng)
            if not route:
                continue
            dest_loc = small_network.intersection(route[-1].end).location
            assert origin_loc.distance_to(dest_loc) >= 350.0 or len(route) > 1

    def test_deterministic_with_same_rng_state(self, small_network):
        p = TripPlanner(small_network)
        a = p.plan_trip(0, np.random.default_rng(5))
        b = p.plan_trip(0, np.random.default_rng(5))
        assert [s.segment_id for s in a] == [s.segment_id for s in b]
