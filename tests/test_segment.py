"""Tests for repro.roadnet.segment."""

import pytest

from repro.roadnet.geometry import Point
from repro.roadnet.segment import Intersection, RoadCategory, RoadSegment


def make_segment(**overrides):
    params = dict(
        segment_id=0,
        start=0,
        end=1,
        start_point=Point(0, 0),
        end_point=Point(100, 0),
        length_m=100.0,
    )
    params.update(overrides)
    return RoadSegment(**params)


class TestIntersection:
    def test_basic(self):
        node = Intersection(3, Point(1, 2))
        assert node.node_id == 3

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Intersection(-1, Point(0, 0))


class TestRoadCategory:
    def test_arterial_fastest(self):
        speeds = [c.default_free_flow_kmh for c in RoadCategory]
        assert RoadCategory.ARTERIAL.default_free_flow_kmh == max(speeds)

    def test_all_positive(self):
        for c in RoadCategory:
            assert c.default_free_flow_kmh > 0


class TestRoadSegment:
    def test_default_free_flow_from_category(self):
        seg = make_segment(category=RoadCategory.LOCAL)
        assert seg.free_flow_kmh == RoadCategory.LOCAL.default_free_flow_kmh

    def test_explicit_free_flow_kept(self):
        seg = make_segment(free_flow_kmh=72.0)
        assert seg.free_flow_kmh == 72.0

    def test_free_flow_ms(self):
        seg = make_segment(free_flow_kmh=36.0)
        assert seg.free_flow_ms == pytest.approx(10.0)

    def test_point_at(self):
        seg = make_segment()
        mid = seg.point_at(0.5)
        assert (mid.x, mid.y) == pytest.approx((50, 0))

    def test_point_at_bounds(self):
        seg = make_segment()
        assert seg.point_at(0.0).x == 0
        assert seg.point_at(1.0).x == 100
        with pytest.raises(ValueError):
            seg.point_at(1.1)

    def test_travel_time(self):
        seg = make_segment(length_m=100.0)
        assert seg.travel_time_s(36.0) == pytest.approx(10.0)

    def test_travel_time_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            make_segment().travel_time_s(0.0)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            make_segment(length_m=0.0)

    def test_rejects_bad_canyon(self):
        with pytest.raises(ValueError):
            make_segment(canyon_factor=1.5)

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            make_segment(segment_id=-2)

    def test_endpoints(self):
        seg = make_segment()
        a, b = seg.endpoints
        assert a.x == 0 and b.x == 100
