"""Tests for repro.mobility.fleet."""

import numpy as np
import pytest

from repro.mobility.fleet import FleetConfig, FleetSimulator, simulate_fleet


class TestFleetConfig:
    def test_rejects_zero_vehicles(self):
        with pytest.raises(ValueError):
            FleetConfig(num_vehicles=0)


class TestFleetSimulator:
    def test_all_vehicles_present(self, ground_truth):
        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=12), seed=0)
        batch = sim.run(0.0, 4 * 3600.0)
        assert batch.num_vehicles >= 10  # a couple may fail to report

    def test_vehicle_ids_dense(self, ground_truth):
        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=8), seed=1)
        batch = sim.run(0.0, 4 * 3600.0)
        assert set(np.unique(batch.vehicle_ids)) <= set(range(8))

    def test_deterministic_by_seed(self, ground_truth):
        a = FleetSimulator(ground_truth, FleetConfig(num_vehicles=5), seed=3).run(
            0.0, 2 * 3600.0
        )
        b = FleetSimulator(ground_truth, FleetConfig(num_vehicles=5), seed=3).run(
            0.0, 2 * 3600.0
        )
        assert len(a) == len(b)
        assert np.allclose(a.times_s, b.times_s)
        assert np.array_equal(a.segment_ids, b.segment_ids)

    def test_seed_changes_output(self, ground_truth):
        a = FleetSimulator(ground_truth, FleetConfig(num_vehicles=5), seed=3).run(
            0.0, 2 * 3600.0
        )
        b = FleetSimulator(ground_truth, FleetConfig(num_vehicles=5), seed=4).run(
            0.0, 2 * 3600.0
        )
        assert len(a) != len(b) or not np.allclose(a.times_s, b.times_s)

    def test_defaults_to_full_window(self, ground_truth):
        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=3), seed=5)
        batch = sim.run()
        assert batch.times_s.max() < ground_truth.grid.end_s

    def test_build_vehicles_count(self, ground_truth):
        sim = FleetSimulator(ground_truth, FleetConfig(num_vehicles=6), seed=0)
        assert len(sim.build_vehicles()) == 6

    def test_more_vehicles_more_reports(self, ground_truth):
        small = FleetSimulator(ground_truth, FleetConfig(num_vehicles=4), seed=0).run(
            0.0, 3 * 3600.0
        )
        large = FleetSimulator(ground_truth, FleetConfig(num_vehicles=16), seed=0).run(
            0.0, 3 * 3600.0
        )
        assert len(large) > len(small)


class TestSimulateFleet:
    def test_one_call(self, ground_truth):
        batch = simulate_fleet(ground_truth, num_vehicles=4, seed=0)
        assert len(batch) > 0

    def test_conflicting_config_rejected(self, ground_truth):
        with pytest.raises(ValueError, match="disagrees"):
            simulate_fleet(
                ground_truth,
                num_vehicles=4,
                config=FleetConfig(num_vehicles=8),
            )

    def test_matching_config_ok(self, ground_truth):
        batch = simulate_fleet(
            ground_truth, num_vehicles=4, config=FleetConfig(num_vehicles=4), seed=0
        )
        assert len(batch) > 0
