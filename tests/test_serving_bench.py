"""The serving-load benchmark (``repro bench --suite serving``).

Tier-1 coverage on a tiny workload: the request streams are seeded and
deterministic, every (app, level) pair produces one result with sane
latency/throughput numbers, the world builds from config or loads from
an attached store, and the records land in schema-5 bench payloads the
``--compare`` gate can diff on p95.
"""

import json

import pytest

from repro.experiments.perf_bench import (
    MIN_COMPARE_P95_MS,
    compare_payloads,
    run_perf_bench,
)
from repro.experiments.serving_bench import (
    SERVING_APPS,
    ServingBenchConfig,
    build_serving_world,
    default_serving_config,
    run_serving_bench,
)
from repro.experiments.store import ArtifactStore


TINY = ServingBenchConfig(
    rows=3,
    cols=3,
    days=0.25,
    concurrency_levels=(1, 2),
    requests_per_level=8,
    iterations=4,
)


def test_default_config_profiles():
    smoke = default_serving_config(smoke=True, seed=7)
    full = default_serving_config(seed=7)
    assert smoke.requests_per_level < full.requests_per_level
    assert len(smoke.concurrency_levels) >= 3
    assert len(full.concurrency_levels) >= 3
    assert smoke.seed == full.seed == 7


def test_run_covers_every_app_and_level():
    results = run_serving_bench(TINY)
    assert len(results) == len(SERVING_APPS) * len(TINY.concurrency_levels)
    seen = {(r.app, r.concurrency) for r in results}
    assert seen == {
        (app, level)
        for app in SERVING_APPS
        for level in TINY.concurrency_levels
    }
    for r in results:
        assert r.requests == TINY.requests_per_level
        assert r.wall_s > 0.0
        assert 0.0 <= r.p50_ms <= r.p95_ms
        assert r.throughput_rps > 0.0


def test_prebuilt_world_short_circuits_the_build():
    world = build_serving_world(TINY)
    network, tcm = world
    assert tcm.values.shape[0] == len(network.segment_ids)
    results = run_serving_bench(TINY, world=world)
    assert {r.app for r in results} == set(SERVING_APPS)


def test_rejects_degenerate_concurrency():
    with pytest.raises(ValueError, match="at least one"):
        run_serving_bench(
            ServingBenchConfig(concurrency_levels=()), world=None
        )
    with pytest.raises(ValueError, match=">= 1"):
        run_serving_bench(ServingBenchConfig(concurrency_levels=(0,)))


def test_bench_report_serving_records(tmp_path):
    report = run_perf_bench(
        cases=[],
        smoke=True,
        include_tune=False,
        include_baselines=False,
        include_ingestion=False,
        include_sharded=False,
        include_serving=True,
    )
    serving = [r for r in report.records if r.case.startswith("serving-")]
    smoke_cfg = default_serving_config(smoke=True)
    assert len(serving) == len(SERVING_APPS) * len(smoke_cfg.concurrency_levels)
    for rec in serving:
        assert rec.p50_ms is not None and rec.p95_ms is not None
        assert rec.throughput_rps is not None and rec.throughput_rps > 0.0
        assert rec.algorithm.startswith("c")
    assert report.serving["apps"] == sorted(SERVING_APPS)
    peaks = report.serving["peak_throughput_rps"]
    assert set(peaks) == set(SERVING_APPS)
    assert all(rps > 0.0 for rps in peaks.values())
    payload = json.loads(report.write_json(tmp_path / "bench.json").read_text())
    assert payload["schema"] == 5
    assert payload["serving"]["apps"] == sorted(SERVING_APPS)
    rec = next(
        r for r in payload["records"] if r["case"].startswith("serving-")
    )
    assert "p95_ms" in rec and "throughput_rps" in rec


def test_bench_serving_world_loads_from_store(tmp_path):
    store = ArtifactStore(root=tmp_path / "store")
    first = run_perf_bench(
        cases=[],
        smoke=True,
        include_tune=False,
        include_baselines=False,
        include_ingestion=False,
        include_sharded=False,
        serving_store=store,
    )
    assert first.serving["world"]["store_hit"] is False
    second = run_perf_bench(
        cases=[],
        smoke=True,
        include_tune=False,
        include_baselines=False,
        include_ingestion=False,
        include_sharded=False,
        serving_store=ArtifactStore(root=tmp_path / "store"),
    )
    assert second.serving["world"]["store_hit"] is True


def _serving_payload(p95_ms, wall_s=0.001):
    return {
        "schema": 5,
        "records": [
            {
                "case": "serving-travel_time",
                "algorithm": "c04",
                "wall_s": wall_s,
                "repeats": 1,
                "backend": "numpy",
                "p95_ms": p95_ms,
            }
        ],
    }


def test_compare_gates_on_p95_even_below_wall_noise_floor():
    base = _serving_payload(p95_ms=MIN_COMPARE_P95_MS * 2)
    cur = _serving_payload(p95_ms=MIN_COMPARE_P95_MS * 4)
    result = compare_payloads(cur, base)
    assert not result.ok
    assert "p95" in result.render()


def test_compare_ignores_sub_floor_p95():
    base = _serving_payload(p95_ms=MIN_COMPARE_P95_MS / 10)
    cur = _serving_payload(p95_ms=MIN_COMPARE_P95_MS / 4)
    assert compare_payloads(cur, base).ok


def test_compare_tolerates_p95_growth_below_threshold():
    base = _serving_payload(p95_ms=MIN_COMPARE_P95_MS * 2)
    cur = _serving_payload(p95_ms=MIN_COMPARE_P95_MS * 2 * 1.2)
    assert compare_payloads(cur, base).ok
