"""Tests for repro.core.tuning (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.tuning import GeneticTuner, TuningResult
from repro.datasets.masks import random_integrity_mask
from tests.conftest import make_low_rank


def quick_tuner(**overrides):
    params = dict(
        rank_bounds=(1, 6),
        population_size=5,
        generations=3,
        completer_iterations=10,
        seed=0,
    )
    params.update(overrides)
    return GeneticTuner(**params)


@pytest.fixture()
def measured_pair():
    x = make_low_rank(30, 20, 2, seed=11)
    mask = random_integrity_mask(x.shape, 0.6, seed=12)
    return np.where(mask, x, 0.0), mask


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank_bounds": (0, 5)},
            {"rank_bounds": (5, 2)},
            {"lam_bounds": (0.0, 1.0)},
            {"lam_bounds": (10.0, 1.0)},
            {"population_size": 2},
            {"generations": 0},
            {"elite_fraction": 0.8, "crossover_fraction": 0.5},
            {"validation_fraction": 0.0},
            {"validation_fraction": 1.0},
            {"stall_generations": 0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            quick_tuner(**kwargs)

    def test_requires_mask_for_raw_array(self, measured_pair):
        measured, _ = measured_pair
        with pytest.raises(ValueError, match="mask"):
            quick_tuner().tune(measured)


class TestTuning:
    def test_returns_result_within_bounds(self, measured_pair):
        measured, mask = measured_pair
        result = quick_tuner().tune(measured, mask)
        assert isinstance(result, TuningResult)
        assert 1 <= result.rank <= 6
        assert 1e-3 <= result.lam <= 2e3
        assert np.isfinite(result.fitness)

    def test_population_sorted_best_first(self, measured_pair):
        measured, mask = measured_pair
        result = quick_tuner().tune(measured, mask)
        fits = [c.fitness for c in result.population]
        assert fits == sorted(fits)

    def test_history_length_matches_generations(self, measured_pair):
        measured, mask = measured_pair
        result = quick_tuner(stall_generations=None).tune(measured, mask)
        assert result.generations_run == 3
        assert len(result.history) == 3

    def test_deterministic_by_seed(self, measured_pair):
        measured, mask = measured_pair
        a = quick_tuner(seed=5).tune(measured, mask)
        b = quick_tuner(seed=5).tune(measured, mask)
        assert (a.rank, a.lam) == (b.rank, b.lam)

    def test_finds_reasonable_rank_on_exact_low_rank(self, measured_pair):
        # On clean rank-2 data the tuner must not pick an absurd rank.
        measured, mask = measured_pair
        result = quick_tuner(
            population_size=8, generations=4, completer_iterations=25
        ).tune(measured, mask)
        # Validation NMAE at a good (r, lambda) on exact rank-2 data is tiny.
        assert result.fitness < 0.1

    def test_stall_early_stop(self, measured_pair):
        measured, mask = measured_pair
        result = quick_tuner(generations=30, stall_generations=2).tune(
            measured, mask
        )
        assert result.generations_run < 30

    def test_rank_bound_capped_by_matrix(self):
        x = make_low_rank(8, 4, 1, seed=1)
        mask = random_integrity_mask(x.shape, 0.8, seed=2)
        result = quick_tuner(rank_bounds=(1, 100)).tune(
            np.where(mask, x, 0.0), mask
        )
        assert result.rank <= 4

    def test_too_few_observations_rejected(self):
        values = np.zeros((4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        with pytest.raises(ValueError, match="validation"):
            quick_tuner().tune(values, mask)


class TestFitnessMemoization:
    def test_cache_stats_reported(self, measured_pair):
        measured, mask = measured_pair
        result = quick_tuner().tune(measured, mask)
        stats = result.cache_stats
        assert stats is not None
        assert stats.evaluations >= 1
        assert stats.hits >= 0
        assert stats.requested == stats.evaluations + stats.hits

    def test_elitism_and_convergence_hit_the_cache(self, measured_pair):
        # A tiny rank range concentrates the population on few genomes,
        # so later generations must re-request already-scored ones.
        measured, mask = measured_pair
        result = quick_tuner(
            rank_bounds=(1, 2),
            lam_bounds=(1.0, 10.0),
            generations=4,
            stall_generations=None,
        ).tune(measured, mask)
        assert result.cache_stats is not None
        assert result.cache_stats.hits >= 1
        # Memoization saves work; it must never *add* lookups.
        assert result.cache_stats.evaluations <= result.cache_stats.requested

    def test_genome_key_quantizes_lambda(self):
        from repro.core.tuning import _genome_key

        assert _genome_key(3, 10.0) == _genome_key(3, 10.0 * (1 + 1e-12))
        assert _genome_key(3, 10.0) != _genome_key(3, 10.1)
        assert _genome_key(3, 10.0) != _genome_key(4, 10.0)


class TestParallelTuning:
    def test_parallel_bit_identical_to_serial(self, measured_pair):
        measured, mask = measured_pair
        serial = quick_tuner(max_workers=None).tune(measured, mask)
        parallel = quick_tuner(max_workers=3).tune(measured, mask)
        assert serial.rank == parallel.rank
        assert serial.lam == parallel.lam
        assert serial.fitness == parallel.fitness
        assert serial.generations_run == parallel.generations_run
        assert serial.history == parallel.history

    def test_max_workers_validated(self):
        with pytest.raises(ValueError):
            quick_tuner(max_workers=-1)
