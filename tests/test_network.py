"""Tests for repro.roadnet.network."""

import pytest

from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.segment import Intersection, RoadSegment


def line_network(n_nodes=4, bidirectional=True):
    """A simple line of intersections 0-1-2-...-(n-1), 100 m apart."""
    nodes = [Intersection(i, Point(i * 100.0, 0.0)) for i in range(n_nodes)]
    segments = []
    sid = 0
    for i in range(n_nodes - 1):
        pairs = [(i, i + 1), (i + 1, i)] if bidirectional else [(i, i + 1)]
        for a, b in pairs:
            segments.append(
                RoadSegment(
                    segment_id=sid,
                    start=a,
                    end=b,
                    start_point=nodes[a].location,
                    end_point=nodes[b].location,
                    length_m=100.0,
                )
            )
            sid += 1
    return RoadNetwork(nodes, segments, name="line")


class TestConstruction:
    def test_counts(self):
        net = line_network(4)
        assert net.num_intersections == 4
        assert net.num_segments == 6

    def test_duplicate_intersection_rejected(self):
        nodes = [Intersection(0, Point(0, 0)), Intersection(0, Point(1, 1))]
        with pytest.raises(ValueError, match="duplicate"):
            RoadNetwork(nodes, [])

    def test_duplicate_segment_rejected(self):
        nodes = [Intersection(0, Point(0, 0)), Intersection(1, Point(100, 0))]
        seg = RoadSegment(0, 0, 1, nodes[0].location, nodes[1].location, 100.0)
        with pytest.raises(ValueError, match="duplicate"):
            RoadNetwork(nodes, [seg, seg])

    def test_unknown_endpoint_rejected(self):
        nodes = [Intersection(0, Point(0, 0)), Intersection(1, Point(100, 0))]
        seg = RoadSegment(0, 0, 5, nodes[0].location, nodes[1].location, 100.0)
        with pytest.raises(ValueError, match="unknown"):
            RoadNetwork(nodes, [seg])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork([Intersection(0, Point(0, 0))], [])

    def test_segment_ids_sorted(self):
        net = line_network(4)
        assert net.segment_ids == sorted(net.segment_ids)


class TestRouting:
    def test_shortest_path_nodes(self):
        net = line_network(4)
        assert net.shortest_path_nodes(0, 3) == [0, 1, 2, 3]

    def test_shortest_path_segments(self):
        net = line_network(4)
        route = net.shortest_path_segments(0, 3)
        assert [s.start for s in route] == [0, 1, 2]
        assert [s.end for s in route] == [1, 2, 3]

    def test_path_length(self):
        net = line_network(4)
        assert net.path_length_m([0, 1, 2]) == pytest.approx(200.0)

    def test_path_length_rejects_missing_edge(self):
        net = line_network(4)
        with pytest.raises(ValueError):
            net.path_length_m([0, 2])

    def test_strong_connectivity(self):
        assert line_network(4, bidirectional=True).is_strongly_connected()
        assert not line_network(4, bidirectional=False).is_strongly_connected()

    def test_segment_between(self):
        net = line_network(3)
        assert net.segment_between(0, 1) is not None
        assert net.segment_between(0, 2) is None


class TestNeighbourhoods:
    def test_adjacent_segments(self):
        net = line_network(4)
        seg01 = net.segment_between(0, 1)
        adjacent = net.adjacent_segments(seg01.segment_id)
        # Reverse (1->0) plus both directions of 1-2 touch it.
        assert net.segment_between(1, 0).segment_id in adjacent
        assert net.segment_between(1, 2).segment_id in adjacent
        assert seg01.segment_id not in adjacent

    def test_within_hops_grows(self):
        net = line_network(6)
        sid = net.segment_between(0, 1).segment_id
        one = net.segments_within_hops(sid, 1)
        two = net.segments_within_hops(sid, 2)
        assert one <= two
        assert len(two) > len(one)

    def test_within_hops_excludes_anchor(self):
        net = line_network(4)
        sid = net.segment_between(1, 2).segment_id
        assert sid not in net.segments_within_hops(sid, 2)

    def test_negative_hops_rejected(self):
        net = line_network(3)
        with pytest.raises(ValueError):
            net.segments_within_hops(0, -1)


class TestSpatial:
    def test_nearest_segment(self):
        net = line_network(4)
        seg = net.nearest_segment(Point(150.0, 5.0))
        assert {seg.start, seg.end} == {1, 2}

    def test_nearest_respects_max_distance(self):
        net = line_network(4)
        assert net.nearest_segment(Point(150.0, 500.0), max_distance_m=50.0) is None

    def test_bounding_box(self):
        net = line_network(4)
        assert net.bounding_box() == (0.0, 0.0, 300.0, 0.0)

    def test_centroid(self):
        c = line_network(3).centroid()
        assert c.x == pytest.approx(100.0)
        assert c.y == pytest.approx(0.0)

    def test_outgoing_segments(self):
        net = line_network(4)
        outs = net.outgoing_segments(1)
        assert {s.end for s in outs} == {0, 2}
