"""Figure 8: eigenflow-type occurrence in singular-value order.

Paper: "The most important information often comes from the eigenflows
of first type, which correspond to [the largest] singular values" —
periodic eigenflows concentrate at the head of the spectrum, noise
dominates the tail.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.core.eigenflows import EigenflowType
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)


def test_fig08_type_occurrence(once):
    result = once(
        lambda: run_structure_study(StructureStudyConfig(days=FULL_DAYS, seed=0))
    )
    print()
    print(result.render_type_occurrence())

    analysis = result.analysis
    periodic_positions = analysis.indices_of_type(EigenflowType.PERIODIC)
    noise_positions = analysis.indices_of_type(EigenflowType.NOISE)
    assert periodic_positions, "at least one periodic eigenflow expected"
    # Periodic flows sit earlier (larger singular values) than noise.
    assert np.mean(periodic_positions) < np.mean(noise_positions)
    # The very first (largest) component is periodic.
    assert analysis.types[0] == EigenflowType.PERIODIC
