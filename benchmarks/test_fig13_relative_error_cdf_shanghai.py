"""Figure 13: CDFs of relative errors at 20 % integrity, Shanghai.

Paper checkpoints: ~80 % of estimated elements have relative error
below 0.25 at the 60-minute granularity; below ~0.38 even at 15
minutes; coarser granularity dominates finer everywhere.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf


def test_fig13_relative_error_cdf_shanghai(once):
    result = once(
        lambda: run_error_cdf(
            ErrorCdfConfig(city="shanghai", days=FULL_DAYS, integrity=0.2, seed=0)
        )
    )
    print()
    print(result.render())

    assert result.cdf_at(3600.0, [0.25])[0] > 0.8
    assert result.cdf_at(900.0, [0.38])[0] > 0.8
    # Coarser granularity dominates finer at every threshold.
    thresholds = [0.1, 0.2, 0.3, 0.5]
    fine = result.cdf_at(900.0, thresholds)
    coarse = result.cdf_at(3600.0, thresholds)
    assert np.all(coarse >= fine - 0.02)
