"""Ablation and extension benchmarks beyond the paper's tables/figures.

* Mask-aware vs paper-literal inner solver (DESIGN.md's fidelity note).
* Structure ablation: CS vs baselines that only smooth (historical
  mean, temporal interpolation) — quantifies how much of the CS gain
  comes from exploiting cross-segment structure.
* Streaming extension: sliding-window online estimation throughput.
* Algorithm 2: genetic tuning cost and the parameters it selects.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.baselines import HistoricalMean, LinearInterpolation
from repro.core.completion import CompressiveSensingCompleter
from repro.core.streaming import StreamingEstimator
from repro.core.tuning import GeneticTuner
from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import make_completer
from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.param_sensitivity import run_algorithm2
from repro.metrics.errors import estimate_error
from repro.probes.report import ProbeReport


def _masked_truth(days=FULL_DAYS, integrity=0.2, slot_s=1800.0, seed=0):
    truth = build_city_truth("shanghai", days, seed=seed).resample(slot_s).tcm
    mask = random_integrity_mask(truth.shape, integrity, seed=seed + 1)
    return truth.values, mask


def test_ablation_mask_aware_solver(once):
    """Mask-aware ALS vs the paper-literal zero-filled solve."""
    x, mask = _masked_truth()
    measured = np.where(mask, x, 0.0)

    def run():
        aware = make_completer(seed=0).complete(measured, mask)
        literal = make_completer(seed=0, mask_aware=False).complete(measured, mask)
        return (
            estimate_error(x, aware.estimate, mask),
            estimate_error(x, literal.estimate, mask),
        )

    aware_err, literal_err = once(run)
    print()
    print("Ablation: inner solver at 20% integrity")
    print(f"  mask-aware ALS:         NMAE = {aware_err:.4f}")
    print(f"  paper-literal (zeros):  NMAE = {literal_err:.4f}")
    assert aware_err < literal_err


def test_ablation_structure_vs_smoothing(once):
    """CS vs pure-smoothing baselines: the gain is structural."""
    x, mask = _masked_truth()
    measured = np.where(mask, x, 0.0)

    def run():
        cs = make_completer(seed=0).complete(measured, mask).estimate
        return {
            "compressive": estimate_error(x, cs, mask),
            "historical-mean": estimate_error(
                x, HistoricalMean().complete(measured, mask), mask
            ),
            "linear-interp": estimate_error(
                x, LinearInterpolation().complete(measured, mask), mask
            ),
        }

    errs = once(run)
    print()
    print("Ablation: structure vs smoothing at 20% integrity")
    for name, err in errs.items():
        print(f"  {name:16s} NMAE = {err:.4f}")
    assert errs["compressive"] < errs["historical-mean"]
    assert errs["compressive"] < errs["linear-interp"]


def test_extension_streaming_throughput(once):
    """Online sliding-window estimation over a synthetic report stream."""
    rng = np.random.default_rng(0)
    segment_ids = list(range(60))
    reports = []
    for slot in range(96):
        for _ in range(40):
            reports.append(
                ProbeReport(
                    vehicle_id=int(rng.integers(100)),
                    time_s=slot * 900.0 + float(rng.uniform(0, 900)),
                    x=0.0,
                    y=0.0,
                    speed_kmh=float(rng.uniform(10, 60)),
                    segment_id=int(rng.integers(60)),
                )
            )
    reports.sort(key=lambda r: r.time_s)

    def run():
        streamer = StreamingEstimator(
            segment_ids, slot_s=900.0, window_slots=24, seed=0
        )
        streamer.ingest_many(reports)
        streamer.flush()
        return streamer

    streamer = once(run)
    print()
    print(
        f"Streaming extension: {len(reports)} reports -> "
        f"{len(streamer.estimates)} live slot estimates"
    )
    assert len(streamer.estimates) == 96


def test_ablation_confidence_weighting(once):
    """Weighted vs unweighted completion under heterogeneous cell noise.

    Cells backed by a single probe report carry the full measurement
    noise; cells averaging many reports are clean.  Confidence weights
    derived from report counts must beat uniform weighting.
    """
    from repro.core.weighted import ConfidenceWeightedCompleter, weights_from_counts

    truth = build_city_truth("shanghai", 3.0, seed=0).resample(1800.0).tcm
    x = truth.values
    rng = np.random.default_rng(1)
    mask = random_integrity_mask(x.shape, 0.3, seed=2)
    single = mask & (rng.random(x.shape) < 0.5)
    multi = mask & ~single
    # A lone probe's speed deviates from the flow mean by the driver
    # factor plus within-slot variation — far noisier than the matrix's
    # intrinsic structure noise.
    noisy = x * rng.lognormal(0.0, 0.35, size=x.shape)
    measured = np.where(single, noisy, np.where(multi, x, 0.0))
    counts = np.where(single, 1.0, np.where(multi, 12.0, 0.0))

    def run():
        weighted = ConfidenceWeightedCompleter(
            rank=2, lam=10.0, iterations=60, clip_min=0.0, seed=0
        ).complete(measured, weights_from_counts(counts))
        unweighted = make_completer(seed=0).complete(measured, mask)
        return (
            estimate_error(x, weighted.estimate, mask),
            estimate_error(x, unweighted.estimate, mask),
        )

    err_weighted, err_uniform = once(run)
    print()
    print("Ablation: confidence weighting under heterogeneous cell noise")
    print(f"  report-count weights: NMAE = {err_weighted:.4f}")
    print(f"  uniform weights:      NMAE = {err_uniform:.4f}")
    assert err_weighted < err_uniform


def test_extension_algorithm2_tuning(once):
    """Algorithm 2's genetic search on the Shanghai matrix."""
    tuner = GeneticTuner(
        rank_bounds=(1, 16),
        population_size=8,
        generations=4,
        completer_iterations=20,
        seed=0,
    )
    result = once(lambda: run_algorithm2(days=3.0, seed=0, tuner=tuner))
    print()
    print(
        f"Algorithm 2 selected r={result.rank}, lambda={result.lam:.2f} "
        f"(validation NMAE {result.fitness:.4f}; paper selected r=2, lambda=100)"
    )
    assert result.rank <= 8
    assert np.isfinite(result.fitness)
