"""Figure 18: matrix construction study at 40 % integrity (30-minute).

Paper: same study as Figure 17 with twice the observations — every
algorithm improves, and the relative conclusions are unchanged.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)


def test_fig18_matrix_selection_40(once):
    result = once(
        lambda: run_matrix_selection(
            MatrixSelectionConfig(days=FULL_DAYS, integrity=0.4, seed=0)
        )
    )
    print()
    print(result.render())

    # Composition-controlled size comparisons: the larger matrix beats
    # its own small subsample (Set 2 vs Set 4, Set 3 vs Set 5).
    cs = {name: cell["compressive"] for name, cell in result.errors.items()}
    assert cs["set2-two-blocks"] < cs["set4-sub-two-blocks"]
    assert cs["set3-random-remote"] < cs["set5-sub-remote"]

    # Cross-check against the 20 %-integrity study: more observations
    # must not hurt the large-matrix CS estimate.
    low = run_matrix_selection(
        MatrixSelectionConfig(days=FULL_DAYS, integrity=0.2, seed=0)
    )
    assert (
        cs["set2-two-blocks"]
        <= low.errors["set2-two-blocks"]["compressive"] * 1.1
    )
