"""Table 2: run times of the four algorithms (221 segments, one week).

Paper values (MatLab v7.4 on a 2009-era Core i7 870):

    Algorithm       | 15 Min  | 30 Min  | 60 Min
    Naive KNN       | 2.20e-2 | 1.56e-2 | 6.20e-3
    Correlation KNN | 3.10e-2 | 2.18e-2 | 1.60e-2
    Compressive     | 8.27e-1 | 4.99e-1 | 2.97e-1
    MSSA            | 5.32e+3 | 3.61e+3 | 2.59e+3

Absolute numbers are hardware-bound; the reproduced *shape* is CS
comfortably sub-second-scale, MSSA orders of magnitude slower, and the
decrease with coarser granularity.  The paper's "naive KNN beats CS"
leg was an artifact of its MatLab CS implementation: the optimized ALS
(workspace kernels, buffered objective pass) is faster than naive KNN
at this scale, so that leg is deliberately not asserted.  MSSA runs
the faithful full lag-covariance solver, capped at 2 refinement
iterations — its per-iteration cost is already ~2 orders of magnitude
above a full CS solve.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.runtimes import RuntimeStudyConfig, run_runtime_study


def test_table2_runtimes(once):
    result = once(
        lambda: run_runtime_study(
            RuntimeStudyConfig(days=FULL_DAYS, mssa_iterations=2, seed=0)
        )
    )
    print()
    print(result.render())

    for gran in result.config.granularities_s:
        knn = result.seconds["Naive KNN"][gran]
        cs = result.seconds["Compressive"][gran]
        mssa = result.seconds["MSSA"][gran]
        assert mssa > 10 * cs, "MSSA must be orders of magnitude slower"
        assert mssa > 10 * knn, "MSSA must be orders of magnitude slower"

    # Coarser granularity (fewer slots) -> faster CS and MSSA.
    grans = sorted(result.config.granularities_s)
    cs_times = [result.seconds["Compressive"][g] for g in grans]
    assert cs_times[0] > cs_times[-1]
