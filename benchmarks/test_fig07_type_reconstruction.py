"""Figure 7: per-type reconstructions of one segment's series.

Paper: the first type contains most information and sketches the
original series; the second type contributes spikes; the third type
carries little information with a mean close to zero.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.core.eigenflows import EigenflowType
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)
from repro.metrics.errors import rmse


def test_fig07_type_reconstruction(once):
    result = once(
        lambda: run_structure_study(
            StructureStudyConfig(days=FULL_DAYS, slot_s=1800.0, seed=0)
        )
    )
    print()
    print(result.render_reconstruction_summary())

    truth = result.segment_series[None]
    err = {
        t: rmse(truth, result.type_series[t][None]) for t in EigenflowType
    }
    # Type 1 alone reconstructs far better than either other type alone.
    assert err[EigenflowType.PERIODIC] < err[EigenflowType.SPIKE]
    assert err[EigenflowType.PERIODIC] < err[EigenflowType.NOISE]
    # The noise-type reconstruction has mean close to zero relative to
    # the series magnitude (it misses the baseline entirely).
    noise_mean = abs(result.type_series[EigenflowType.NOISE].mean())
    assert noise_mean < 0.2 * result.segment_series.mean()
