"""Figure 11: estimate error vs integrity, Shanghai, 4 algorithms.

Paper checkpoints (221 downtown segments, one week, r and lambda from
Algorithm 2, KNN K=4, MSSA M=24):

* the compressive-sensing algorithm is the best at every granularity
  and integrity; naive KNN is the worst;
* CS degrades only mildly as integrity drops ("relatively insensitive")
  — error stays around 20 % even at 20 % integrity at the 60-minute
  granularity;
* coarser granularity lowers the error of every algorithm.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    run_error_vs_integrity,
)


def test_fig11_error_vs_integrity_shanghai(once):
    result = once(
        lambda: run_error_vs_integrity(
            ErrorVsIntegrityConfig(city="shanghai", days=FULL_DAYS, seed=0)
        )
    )
    print()
    print(result.render())

    config = result.config
    for gran in config.granularities_s:
        for integ in config.integrities:
            cell = result.errors[(gran, integ)]
            assert cell["compressive"] == min(cell.values()), (
                f"CS must win at gran={gran}, integrity={integ}: {cell}"
            )

    # Naive KNN worst at low integrity.
    low = result.errors[(1800.0, 0.1)]
    assert low["naive-knn"] == max(low.values())

    # CS "relatively insensitive" to integrity.
    for gran in config.granularities_s:
        series = result.series_for(gran)["compressive"]
        assert max(series) < 2.0 * min(series)

    # Headline: <= ~20 % error at 20 % integrity, 60-minute granularity.
    assert result.errors[(3600.0, 0.2)]["compressive"] < 0.20

    # Coarser granularity -> lower CS error at fixed integrity.
    cs_by_gran = [
        result.errors[(g, 0.2)]["compressive"]
        for g in sorted(config.granularities_s)
    ]
    assert cs_by_gran == sorted(cs_by_gran, reverse=True)
