"""Robustness extension: structured missingness, GPS noise, GPS bias.

Stresses the algorithms beyond the paper's uniform random-discard
protocol.  Expected shapes: the CS algorithm stays best under every
condition; structured (heavy-tailed per-segment) missingness is harder
than uniform at equal integrity; additive noise and systematic bias
raise everyone's floor.
"""

from repro.experiments.robustness import RobustnessConfig, run_robustness


def test_extension_robustness(once):
    result = once(
        lambda: run_robustness(
            RobustnessConfig(
                days=3.0,
                noise_levels_kmh=(0.0, 2.0, 5.0),
                bias_levels_kmh=(0.0, -3.0),
                seed=0,
            )
        )
    )
    print()
    print(result.render())

    for label, cell in result.errors.items():
        best = min(cell.values())
        # Under structured missingness whole segments go dark and no
        # algorithm can recover them; CS ties with the field there, and
        # must remain within a small margin of the best everywhere.
        assert cell["compressive"] <= best * 1.05, (
            f"CS must stay within 5% of the best under '{label}': {cell}"
        )
    uniform = result.errors["uniform mask"]
    assert uniform["compressive"] == min(uniform.values())
    assert (
        result.errors["structured mask"]["compressive"]
        >= result.errors["uniform mask"]["compressive"]
    )
    assert (
        result.errors["noise 5 km/h"]["compressive"]
        > result.errors["noise 2 km/h"]["compressive"]
    )
