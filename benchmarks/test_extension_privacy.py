"""Privacy extension: estimation cost of virtual trip lines.

The paper cites virtual trip lines (Hoh et al.) as the
privacy-preserving reporting mechanism compatible with its approach.
This bench measures how thinning the report stream to instrumented
segments degrades coverage and end-to-end estimate quality — the
privacy/utility trade-off a deployment must budget.
"""

import numpy as np

from repro.core.tcm import TimeGrid
from repro.mobility.fleet import FleetConfig, FleetSimulator
from repro.probes.privacy import privacy_impact
from repro.roadnet.generators import grid_city
from repro.traffic.groundtruth import GroundTruthTraffic


def test_extension_privacy_trip_lines(once):
    network = grid_city(8, 8, seed=0)
    grid = TimeGrid.over_days(1.0, 1800.0)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=0)
    reports = FleetSimulator(truth, FleetConfig(num_vehicles=250), seed=1).run()

    result = once(
        lambda: privacy_impact(
            truth, reports, fractions=(1.0, 0.75, 0.5, 0.25), seed=0
        )
    )
    print()
    print("Privacy extension: virtual trip-line deployment vs estimate quality")
    print(f"{'deployed':>9} | {'reports kept':>12} | {'integrity':>9} | {'NMAE':>7}")
    for p in result:
        print(
            f"{p.deployment_fraction:>8.0%} | {p.reports_kept:>11.1%} | "
            f"{p.integrity:>8.1%} | {p.estimate_nmae:>7.4f}"
        )

    integrities = [p.integrity for p in result]
    assert integrities == sorted(integrities, reverse=True)
    # Estimation keeps working down to quarter deployment, at higher error.
    assert np.isfinite(result[-1].estimate_nmae)
    assert result[-1].estimate_nmae >= result[0].estimate_nmae
