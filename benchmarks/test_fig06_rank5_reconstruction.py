"""Figure 6: rank-5 reconstruction of one segment's series (30-minute).

Paper checkpoint: the first five principal components sketch the
original traffic conditions well, with an RMSE around 9.67 km/h.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)


def test_fig06_rank5_reconstruction(once):
    result = once(
        lambda: run_structure_study(
            StructureStudyConfig(days=FULL_DAYS, slot_s=1800.0, seed=0)
        )
    )
    print()
    print(result.render_reconstruction_summary())
    print(f"rank-5 RMSE: {result.reconstruction_rmse:.2f} km/h (paper: ~9.67)")

    assert result.reconstruction_rmse < 12.0
    # The reconstruction tracks the series, not just its mean.
    corr = np.corrcoef(result.segment_series, result.rank_r_series)[0, 1]
    assert corr > 0.8
