"""Sampling-process impact study (the paper's third future-work item).

Sweeps probe fleet size and reporting interval through the full
pipeline (fleet simulation -> aggregation -> completion) and reports
integrity, measurement error, and end-to-end estimate error.
"""

from repro.experiments.sampling_study import (
    SamplingStudyConfig,
    run_sampling_study,
)


def test_extension_sampling_study(once):
    result = once(
        lambda: run_sampling_study(
            SamplingStudyConfig(
                days=1.0,
                fleet_sizes=(100, 250, 500),
                reporting_intervals_s=(60.0, 300.0),
                seed=0,
            )
        )
    )
    print()
    print(result.render())

    # Integrity grows with fleet size at each reporting interval.
    for interval in result.config.reporting_intervals_s:
        points = sorted(
            (p for p in result.points if p.interval_s == interval),
            key=lambda p: p.fleet_size,
        )
        integrities = [p.integrity for p in points]
        assert integrities == sorted(integrities)

    # Denser sampling (shorter interval) covers at least as much.
    by_key = {(p.fleet_size, p.interval_s): p for p in result.points}
    for fleet in result.config.fleet_sizes:
        assert (
            by_key[(fleet, 60.0)].integrity >= by_key[(fleet, 300.0)].integrity
        )
