"""Figure 15: estimate error vs rank bound r (lambda=1, 30-minute).

Paper checkpoint: the error is lowest at a small rank (the paper's
optimum is r=2) and grows as larger ranks chase measurement noise.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_param_sensitivity,
)


def test_fig15_rank_sweep(once):
    result = once(
        lambda: run_param_sensitivity(
            ParamSensitivityConfig(days=FULL_DAYS, seed=0)
        )
    )
    print()
    print(result.render_rank())
    print(f"best rank: {result.best_rank} (paper: 2)")

    assert result.best_rank <= 4
    # Large ranks clearly overfit at lambda = 1.
    assert result.rank_errors[32] > 1.5 * result.rank_errors[result.best_rank]
    assert result.rank_errors[16] > result.rank_errors[2]
