"""Figure 2: CDF of per-road integrity by fleet size.

Paper checkpoints (15-minute granularity): with 500 probe vehicles
~95 % of roads have integrity below 60 % and nearly half the roads sit
near zero; with 2,000 vehicles ~80 % of roads are still below 60 %.
"""

from benchmarks.conftest import bench_scale
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)


def test_fig02_road_integrity_cdf(once):
    result = once(
        lambda: run_integrity_study(
            IntegrityStudyConfig(scale=bench_scale(), duration_days=1.0, seed=0)
        )
    )
    print()
    print(result.render_road_cdf())

    gran = min(result.config.granularities_s)
    sizes = sorted(result.config.fleet_sizes)
    small = result.reports[(gran, sizes[0])]
    large = result.reports[(gran, sizes[-1])]
    # Most roads stay poorly covered even with the small fleet...
    assert small.roads_below(0.6) > 0.8
    # ...a sizeable share is never observed at all...
    assert small.roads_near_zero(0.02) > 0.2
    # ...and larger fleets shift the CDF right (better coverage).
    assert large.roads_below(0.6) < small.roads_below(0.6)
