"""Figure 17: matrix construction study at 20 % integrity (30-minute).

Paper checkpoints: with small fixed-size segment sets the choice of
segments makes little difference and the CS advantage is modest; as the
matrix grows (Set 2's two-block neighbourhood, Set 3's 45 random
segments) the CS algorithm benefits from the richer hidden structure.

Reproduction note (documented in EXPERIMENTS.md): on the synthetic
data, CS on the tiny 7-column sets is noise-limited — each row factor
is estimated from ~1.4 observations — so unlike the paper's bars it can
trail KNN there; its error still drops sharply as the set grows, which
is the paper's operative claim.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)


def test_fig17_matrix_selection_20(once):
    result = once(
        lambda: run_matrix_selection(
            MatrixSelectionConfig(days=FULL_DAYS, integrity=0.2, seed=0)
        )
    )
    print()
    print(result.render())

    cs = {name: cell["compressive"] for name, cell in result.errors.items()}
    # Composition-controlled size comparisons: the larger matrix beats
    # its own small subsample (Set 2 vs Set 4, Set 3 vs Set 5).
    assert cs["set2-two-blocks"] < cs["set4-sub-two-blocks"]
    assert cs["set3-random-remote"] < cs["set5-sub-remote"]
    # Small same-size sets perform comparably regardless of which
    # segments were chosen (within 2x of each other).
    small = [cs["set1-connected"], cs["set4-sub-two-blocks"], cs["set5-sub-remote"]]
    assert max(small) < 2.0 * min(small)
