"""Table 1: integrity vs time granularity vs fleet size.

Paper values (Shanghai inner region, 5,812 segments, Feb 18 2007):

    Time gran. | N=500  | N=1,000 | N=2,000
    15 min     | 12.22% | 18.28%  | 24.80%
    30 min     | 18.57% | 25.18%  | 31.61%
    60 min     | 25.53% | 31.98%  | 37.64%

The simulation reproduces both magnitudes and monotonic trends.
"""

from benchmarks.conftest import bench_scale
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)


def test_table1_integrity(once):
    result = once(
        lambda: run_integrity_study(
            IntegrityStudyConfig(scale=bench_scale(), duration_days=1.0, seed=0)
        )
    )
    print()
    print(result.render_table1())

    sizes = result.config.fleet_sizes
    for gran in result.config.granularities_s:
        row = [result.table1[(gran, s)] for s in sizes]
        assert row == sorted(row), "integrity must grow with fleet size"
    for size in sizes:
        col = [result.table1[(g, size)] for g in sorted(result.config.granularities_s)]
        assert col == sorted(col), "integrity must grow with slot length"
