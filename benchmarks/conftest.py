"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  The heavyweight drivers
run a single measured round (their cost is dominated by deterministic
linear algebra / simulation, so repetition adds time without precision).

Scales: the downtown studies (221/198 segments, one week) run at the
paper's full size; the Table 1 metropolitan simulation defaults to the
paper's full 5,812-segment network — set REPRO_BENCH_SCALE=0.1 in the
environment for a proportionally scaled quick pass.
"""

import os

import pytest

FULL_DAYS = 7.0


def bench_scale() -> float:
    """Scale factor for the metropolitan (Table 1) simulation."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return run
