"""Figure 16: estimate error vs tradeoff coefficient lambda (r=32).

Paper checkpoint: error varies strongly over lambda in [0.001, 2000]
with a U-shape; the optimum sits around 100 when the rank bound is 32
(too small a lambda overfits, too large over-regularizes).
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_param_sensitivity,
)


def test_fig16_lambda_sweep(once):
    result = once(
        lambda: run_param_sensitivity(
            ParamSensitivityConfig(days=FULL_DAYS, seed=0)
        )
    )
    print()
    print(result.render_lambda())
    print(f"best lambda: {result.best_lambda} (paper: ~100)")

    errs = result.lambda_errors
    assert 1.0 <= result.best_lambda <= 500.0
    # U-shape: both extremes are much worse than the optimum.
    best = errs[result.best_lambda]
    assert errs[0.001] > 2.0 * best
    assert errs[2000.0] > 2.0 * best
