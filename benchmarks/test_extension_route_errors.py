"""Application-level ablation: route travel-time error by algorithm.

Cell-level NMAE is the paper's metric; the motivating consumer is trip
planning.  This bench asks whether the CS advantage survives when
estimates are consumed as *route travel times* (per-link errors
partially cancel along a route).  Expected shape: CS still best; every
algorithm's route error is comparable to or below its cell error.
"""

import numpy as np

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import default_algorithms
from repro.metrics.errors import estimate_error
from repro.metrics.route_errors import route_travel_time_errors
from repro.roadnet.generators import grid_city
from repro.traffic.groundtruth import GroundTruthTraffic


def test_extension_route_errors(once):
    network = grid_city(8, 8, seed=0)
    grid = TimeGrid.over_days(3.0, 1800.0)
    truth_gt = GroundTruthTraffic.synthesize(network, grid, seed=0)
    truth = truth_gt.tcm
    mask = random_integrity_mask(truth.shape, 0.2, seed=1)
    measured = np.where(mask, truth.values, 0.0)

    def run():
        rows = {}
        for spec in default_algorithms(seed=0, include_mssa=True):
            est_values = np.clip(spec.complete(measured, mask), 3.0, None)
            estimate = TrafficConditionMatrix(
                est_values, grid=truth.grid, segment_ids=truth.segment_ids
            )
            summary = route_travel_time_errors(
                network, truth, estimate, num_routes=40, seed=2
            )
            rows[spec.name] = (
                estimate_error(truth.values, est_values, mask),
                summary.mean_relative_error,
            )
        return rows

    rows = once(run)
    print()
    print("Route-level ablation (20% integrity, 30-min, 40 routes)")
    print(f"{'algorithm':18s} {'cell NMAE':>10} {'route rel. err':>15}")
    for name, (cell, route) in rows.items():
        print(f"{name:18s} {cell:>10.4f} {route:>15.4f}")

    route_errs = {name: route for name, (_, route) in rows.items()}
    assert route_errs["compressive"] == min(route_errs.values())
    # Route errors benefit from per-link cancellation.
    for name, (cell, route) in rows.items():
        assert route < cell * 1.2
