"""Figure 14: CDFs of relative errors at 20 % integrity, Shenzhen.

Paper: "consistent results" with Figure 13 on the Shenzhen subnetwork.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf


def test_fig14_relative_error_cdf_shenzhen(once):
    result = once(
        lambda: run_error_cdf(
            ErrorCdfConfig(city="shenzhen", days=FULL_DAYS, integrity=0.2, seed=0)
        )
    )
    print()
    print(result.render())

    # Same qualitative shape as Figure 13.
    assert result.cdf_at(3600.0, [0.25])[0] > 0.7
    for gran in result.config.granularities_s:
        values = result.cdf_at(gran, [0.1, 0.3, 0.6, 1.0])
        assert np.all(np.diff(values) >= 0)
