"""Figure 5: example time series of the three eigenflow types.

Paper: type-1 eigenflows are periodic (FFT spike), type-2 carry a
time-domain spike, type-3 are noise.  The benchmark extracts one
representative of each type from the downtown TCM and verifies its
classifying property.
"""

import numpy as np

from benchmarks.conftest import FULL_DAYS
from repro.core.eigenflows import EigenflowType, has_spike
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)


def test_fig05_eigenflow_types(once):
    result = once(
        lambda: run_structure_study(StructureStudyConfig(days=FULL_DAYS, seed=0))
    )
    analysis = result.analysis
    counts = analysis.type_counts()
    print()
    print(
        "Figure 5: eigenflow type examples — counts:",
        {t.name.lower(): n for t, n in counts.items()},
    )

    assert counts[EigenflowType.PERIODIC] >= 1
    assert counts[EigenflowType.NOISE] >= 1

    periodic = analysis.eigenflow(analysis.indices_of_type(EigenflowType.PERIODIC)[0])
    spectrum = np.abs(np.fft.rfft(periodic))[1:]
    assert has_spike(spectrum), "type-1 representative must have an FFT spike"

    noise = analysis.eigenflow(analysis.indices_of_type(EigenflowType.NOISE)[0])
    assert not has_spike(noise)
    assert not has_spike(np.abs(np.fft.rfft(noise))[1:])
