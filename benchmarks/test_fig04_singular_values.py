"""Figure 4: singular value magnitudes of the downtown TCM.

Paper checkpoint: a sharp knee — most of the energy is contributed by
the first few principal components, evidencing the low effective rank
compressive sensing exploits.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)


def test_fig04_singular_values(once):
    result = once(
        lambda: run_structure_study(StructureStudyConfig(days=FULL_DAYS, seed=0))
    )
    print()
    print(result.render_spectrum())

    mags = result.spectrum.magnitudes
    assert mags[0] == 1.0
    assert mags[5] < 0.15, "sharp knee: sixth component is marginal"
    assert result.spectrum.knee_sharpness(5) > 0.95
