"""Figure 3: CDF of per-slot integrity by fleet size.

Paper checkpoint (15-minute granularity): with 500 probe vehicles
nearly 100 % of slots have integrity below 18 % — i.e. in almost every
slot, more than 82 % of road segments have no probe measurement.
"""

from benchmarks.conftest import bench_scale
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)


def test_fig03_slot_integrity_cdf(once):
    result = once(
        lambda: run_integrity_study(
            IntegrityStudyConfig(scale=bench_scale(), duration_days=1.0, seed=0)
        )
    )
    print()
    print(result.render_slot_cdf())

    gran = min(result.config.granularities_s)
    sizes = sorted(result.config.fleet_sizes)
    small = result.reports[(gran, sizes[0])]
    large = result.reports[(gran, sizes[-1])]
    assert small.slots_below(0.18) > 0.9
    assert large.slots_below(0.18) <= small.slots_below(0.18)
