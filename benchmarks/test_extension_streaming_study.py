"""Streaming-vs-batch extension study.

Expected shapes: live (past-only, warm-started) estimates are close to
but not better than the offline batch completion, and warm starting is
meaningfully cheaper than cold restarts at equal estimates.
"""

from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    run_streaming_study,
)


def test_extension_streaming_study(once):
    result = once(
        lambda: run_streaming_study(
            StreamingStudyConfig(days=1.0, num_vehicles=150, seed=0)
        )
    )
    print()
    print(result.render())

    assert result.num_slots == 96
    assert result.warm_seconds < result.cold_seconds
    # Live estimates must stay within 2x of the hindsight batch error.
    assert result.streaming_nmae < 2.0 * max(result.batch_nmae, 1e-9)
