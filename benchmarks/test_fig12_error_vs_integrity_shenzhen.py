"""Figure 12: estimate error vs integrity, Shenzhen, MSSA excluded.

Paper: same qualitative results as Figure 11 on the 198-segment
Shenzhen subnetwork; MSSA is dropped ("runs very slowly"); errors run
somewhat higher than Shanghai because the probe fleet over the studied
subnetwork is effectively sparser.
"""

from benchmarks.conftest import FULL_DAYS
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    run_error_vs_integrity,
)


def test_fig12_error_vs_integrity_shenzhen(once):
    result = once(
        lambda: run_error_vs_integrity(
            ErrorVsIntegrityConfig(city="shenzhen", days=FULL_DAYS, seed=0)
        )
    )
    print()
    print(result.render())

    assert "mssa" not in result.algorithm_names()
    for gran in result.config.granularities_s:
        for integ in result.config.integrities:
            cell = result.errors[(gran, integ)]
            assert cell["compressive"] == min(cell.values())
