"""Seed-sensitivity extension: is the Figure 11 conclusion luck?

Replicates the headline 20 %-integrity comparison across five
independently generated synthetic worlds.  Expected shape: the
compressive-sensing algorithm wins in every (or nearly every) world and
by a stable margin — the conclusion is a property of the method, not of
one lucky seed.
"""

from repro.experiments.seed_sensitivity import (
    SeedSensitivityConfig,
    run_seed_sensitivity,
)


def test_extension_seed_sensitivity(once):
    result = once(
        lambda: run_seed_sensitivity(
            SeedSensitivityConfig(days=3.0, num_seeds=5, base_seed=0)
        )
    )
    print()
    print(result.render())

    assert result.cs_win_fraction() >= 0.8
    means = {name: result.mean(name) for name in result.errors}
    assert means["compressive"] == min(means.values())
    # Stable margin: CS mean beats the runner-up by a real gap.
    others = [v for k, v in means.items() if k != "compressive"]
    assert means["compressive"] < 0.95 * min(others)
