"""Smoke tests for the performance benchmark harness.

These keep ``repro bench --smoke`` honest in CI: the harness must run
in seconds, emit the documented JSON schema, and enforce the
batched-vs-loop equivalence bound.
"""

import json

import pytest

from repro.experiments.perf_bench import (
    EQUIVALENCE_TOL,
    BenchCase,
    default_cases,
    default_ingestion_reports,
    default_output_name,
    run_perf_bench,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_perf_bench(smoke=True, seed=0)


def test_smoke_profile_times_all_algorithms(smoke_report):
    algorithms = {r.algorithm for r in smoke_report.records}
    assert {"cs-batched", "cs-grouped", "cs-loop"} <= algorithms
    assert {"naive-knn", "correlation-knn", "ga-tune"} <= algorithms
    assert {"mapmatch-vectorized", "aggregate-bincount"} <= algorithms
    assert {"cs-monolithic", "cs-sharded", "sharded-stream-ingest"} <= algorithms
    assert all(r.wall_s >= 0.0 for r in smoke_report.records)


def test_smoke_profile_checks_equivalence(smoke_report):
    case = default_cases(smoke=True)[0]
    diff = smoke_report.equivalence_max_abs_diff[case.name]
    assert diff <= EQUIVALENCE_TOL
    assert case.name in smoke_report.speedups


def test_smoke_profile_checks_ingestion_equivalence(smoke_report):
    case = f"ingest-{default_ingestion_reports(smoke=True) // 1000}k"
    assert smoke_report.equivalence_max_abs_diff[f"{case}-mapmatch"] == 0.0
    assert (
        smoke_report.equivalence_max_abs_diff[f"{case}-aggregate"]
        <= EQUIVALENCE_TOL
    )
    assert smoke_report.speedups[f"{case}-pipeline"] > 0.0


def test_smoke_profile_checks_baseline_equivalence(smoke_report):
    case = default_cases(smoke=True)[0]
    for name in ("correlation-knn", "mssa"):
        key = f"{case.name}-{name}"
        assert smoke_report.equivalence_max_abs_diff[key] <= EQUIVALENCE_TOL


def test_payload_schema_roundtrips(smoke_report, tmp_path):
    out = smoke_report.write_json(tmp_path / "bench.json")
    payload = json.loads(out.read_text())
    assert payload["schema"] == 4
    assert payload["equivalence_tol"] == EQUIVALENCE_TOL
    assert payload["meta"]["smoke"] is True
    record = payload["records"][0]
    assert {"case", "algorithm", "wall_s", "repeats", "backend"} <= set(record)


def test_render_mentions_speedup(smoke_report):
    text = smoke_report.render()
    assert "Performance benchmark" in text
    assert "speedup" in text


def test_strict_mode_rejects_disagreeing_solvers(monkeypatch):
    # Force an artificial disagreement by lowering the tolerance to an
    # impossible level through the module constant.
    import repro.experiments.perf_bench as pb

    monkeypatch.setattr(pb, "EQUIVALENCE_TOL", -1.0)
    cases = [BenchCase(24, 10, 0.5)]
    with pytest.raises(RuntimeError, match="deviates from the loop reference"):
        pb.run_perf_bench(
            cases=cases,
            smoke=True,
            iterations=3,
            include_tune=False,
            include_baselines=False,
        )
    # Non-strict mode records the diff instead of raising.
    report = pb.run_perf_bench(
        cases=cases,
        smoke=True,
        iterations=3,
        include_tune=False,
        include_baselines=False,
        strict=False,
    )
    assert cases[0].name in report.equivalence_max_abs_diff


def test_rejects_unknown_solver():
    with pytest.raises(ValueError, match="unknown solver"):
        run_perf_bench(smoke=True, solvers=("batched", "nope"))


def test_default_output_name_is_dated():
    assert default_output_name().startswith("BENCH_")
    assert default_output_name().endswith(".json")
