"""Gate tests for the metropolitan sharded benchmark suite.

Two layers:

* run the sharded suite standalone in its smoke profile and check the
  record/summary schema (fast, every CI run);
* read the newest committed ``BENCH_<date>.json`` and hold the ISSUE's
  acceptance line against it — the full-profile sharded completion must
  beat the monolithic solve by >= 3x with an NMAE delta <= 1e-2, and
  the streaming leg must have ingested a million reports.  This gates
  the *committed* artifact, so a regression can't land silently by
  simply not re-running the bench.
"""

import json
import re
from pathlib import Path

import pytest

from repro.experiments.perf_bench import run_perf_bench

REPO_ROOT = Path(__file__).resolve().parents[2]

# The ISSUE's acceptance bounds for the committed full-profile run.
MIN_SPEEDUP = 3.0
MAX_NMAE_DELTA = 1e-2
MIN_STREAM_REPORTS = 1_000_000


def _latest_committed_payload() -> dict:
    candidates = sorted(
        p for p in REPO_ROOT.glob("BENCH_*.json")
        if re.fullmatch(r"BENCH_\d{4}-\d{2}-\d{2}\.json", p.name)
    )
    assert candidates, "no committed BENCH_<date>.json at the repo root"
    return json.loads(candidates[-1].read_text())


@pytest.fixture(scope="module")
def sharded_report():
    # Only the sharded suite: no matrix cases, no tuning/baselines.
    return run_perf_bench(
        cases=[],
        smoke=True,
        seed=0,
        backends=(),
        include_tune=False,
        include_baselines=False,
        include_ingestion=False,
    )


class TestShardedSuiteSmoke:
    def test_records_present(self, sharded_report):
        algorithms = {r.algorithm for r in sharded_report.records}
        assert {"cs-monolithic", "cs-sharded", "sharded-stream-ingest"} <= algorithms

    def test_summary_schema(self, sharded_report):
        summary = sharded_report.sharded
        assert summary["mode"] == "multilevel"
        assert summary["shards"] >= 2
        assert summary["halo"] == 1
        assert summary["speedup"] > 0.0
        assert summary["nmae_delta"] >= 0.0
        ingest = summary["ingestion"]
        assert ingest["reports"] == 20_000
        assert ingest["reports_per_s"] > 0.0
        assert ingest["slots_closed"] > 0

    def test_payload_carries_sharded_key(self, sharded_report):
        payload = sharded_report.to_payload()
        assert payload["schema"] == 4
        assert payload["sharded"]["case"].startswith("sharded-")

    def test_smoke_accuracy_delta_within_bound(self, sharded_report):
        # The acceptance bound is for the metro scale, but the small
        # profile should not be wildly off either.
        assert sharded_report.sharded["nmae_delta"] <= MAX_NMAE_DELTA


class TestCommittedBaselineGate:
    def test_committed_sharded_suite_meets_acceptance(self):
        payload = _latest_committed_payload()
        assert payload["schema"] >= 4, (
            "newest committed BENCH predates the sharded suite; "
            "re-run `repro bench` and commit the artifact"
        )
        summary = payload["sharded"]
        assert summary["segments"] >= 5_000
        assert summary["speedup"] >= MIN_SPEEDUP, (
            f"committed sharded speedup {summary['speedup']:.2f}x is below "
            f"the {MIN_SPEEDUP:.0f}x acceptance floor"
        )
        assert summary["nmae_delta"] <= MAX_NMAE_DELTA, (
            f"committed sharded NMAE delta {summary['nmae_delta']:.4f} "
            f"exceeds the {MAX_NMAE_DELTA:g} acceptance ceiling"
        )

    def test_committed_stream_leg_is_million_scale(self):
        payload = _latest_committed_payload()
        ingest = payload["sharded"]["ingestion"]
        assert ingest["reports"] >= MIN_STREAM_REPORTS
        assert ingest["reports_per_s"] > 0.0
        assert ingest["recompletions"] > 0
