#!/usr/bin/env python
"""Cold-then-warm smoke battery through the artifact store.

The incremental fabric's contract, asserted end to end on a throwaway
store: a cold ``run_all`` (smoke profile) builds and persists every
step, and an immediately repeated run — empty in-memory caches, fresh
store handle, same store directory — loads every step (zero rebuilt),
returns bit-identical rendered blocks, and finishes at least 5x faster.
The wall-clock cells (Table 2 runtimes, streaming latencies) are the
one sanctioned difference: a warm run serves their cached blocks behind
a staleness annotation, which this smoke asserts is present and strips
before the bit-identical comparison.  ``tools/check.sh`` runs this as
its store-smoke step (skipped under ``--fast``); CI runs it via
``--require-all``.
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import CACHED_TIMING_MARKER, run_all
from repro.experiments.scenario_cache import GLOBAL_SCENARIO_CACHE
from repro.experiments.store import ArtifactStore

MIN_WARM_SPEEDUP = 5.0

#: Blocks rendered by the ``wall_clock=True`` battery cells; a warm run
#: serves them annotated (see runner._annotate_cached_timings).
WALL_CLOCK_BLOCKS = frozenset({"table2", "streaming_extension"})


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as tmp:
        root = Path(tmp) / "store"

        GLOBAL_SCENARIO_CACHE.clear()
        cold_store = ArtifactStore(root=root)
        started = time.perf_counter()
        cold = run_all(profile="smoke", seed=0, store=cold_store)
        cold_s = time.perf_counter() - started
        cold_stats = cold_store.stats

        # A fresh process, in effect: empty memory caches, new handle.
        GLOBAL_SCENARIO_CACHE.clear()
        warm_store = ArtifactStore(root=root)
        started = time.perf_counter()
        warm = run_all(profile="smoke", seed=0, store=warm_store)
        warm_s = time.perf_counter() - started
        warm_stats = warm_store.stats

    speedup = cold_s / max(warm_s, 1e-9)
    print(
        f"    cold: {cold_s:.2f}s, {cold_stats['misses']} step(s) built, "
        f"{cold_stats['bytes_written']:,} B written"
    )
    print(
        f"    warm: {warm_s:.2f}s, {warm_stats['hits']} hit(s), "
        f"{warm_stats['misses']} rebuilt ({speedup:.0f}x faster)"
    )

    if cold_stats["misses"] == 0:
        failures.append("cold run built nothing (store was not empty?)")
    if warm_stats["misses"] != 0:
        failures.append(
            f"warm run rebuilt {warm_stats['misses']} step(s); expected 0"
        )
    # Wall-clock blocks must come back annotated as cached measurements;
    # everything else must be bit-identical as served.
    for block in sorted(WALL_CLOCK_BLOCKS & set(warm)):
        note, _, rest = warm[block].partition("\n")
        if not note.startswith(CACHED_TIMING_MARKER):
            failures.append(
                f"warm wall-clock block {block!r} lacks the "
                f"{CACHED_TIMING_MARKER} staleness annotation"
            )
        else:
            warm[block] = rest
    if warm != cold:
        changed = sorted(
            k for k in set(cold) | set(warm) if cold.get(k) != warm.get(k)
        )
        failures.append(f"warm blocks differ from cold: {changed}")
    if speedup < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm run only {speedup:.1f}x faster "
            f"(floor {MIN_WARM_SPEEDUP:.0f}x)"
        )

    for failure in failures:
        print(f"    store-smoke: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
