#!/usr/bin/env bash
# Static-analysis gate: tracked-bytecode guard + repro_lint (with the
# committed baseline) + the static @shapes contract proof + verify-
# determinism smoke + store-smoke (cold build, warm all-hit reuse) +
# ruff + mypy (when installed).
#
# Usage: tools/check.sh [--require-all] [--fast]
#
# repro_lint and the determinism harness are part of this package and
# always run.  ruff and mypy are optional dev dependencies; when they
# are not installed the step is skipped with a notice so the gate stays
# runnable in minimal environments.  Pass --require-all (CI does) to
# turn a missing tool into a failure instead of a skip.
#
# --fast scopes the lint to files changed vs origin/main (falling back
# to a full run when that ref does not exist, e.g. a fresh clone with no
# remote) and skips the determinism smoke.  The whole-program pass still
# loads every file, so transitive findings against unchanged helpers are
# not missed — only findings anchored in unchanged files are elided.
# CI always does the full run.

set -u -o pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

require_all=0
fast=0
for arg in "$@"; do
    case "$arg" in
        --require-all) require_all=1 ;;
        --fast) fast=1 ;;
        *)
            echo "usage: tools/check.sh [--require-all] [--fast]" >&2
            exit 2
            ;;
    esac
done

status=0

run_step() {
    local name="$1"
    shift
    echo "==> $name"
    if "$@"; then
        echo "    OK"
    else
        echo "    FAILED: $name" >&2
        status=1
    fi
}

maybe_step() {
    local name="$1"
    local module="$2"
    shift 2
    if python -c "import $module" >/dev/null 2>&1; then
        run_step "$name" "$@"
    elif [ "$require_all" = "1" ]; then
        echo "==> $name"
        echo "    FAILED: $module is not installed (required by --require-all)" >&2
        status=1
    else
        echo "==> $name: skipped ($module not installed)"
    fi
}

tracked_bytecode() {
    local tracked
    tracked=$(git ls-files '*.pyc' '*.pyo')
    if [ -n "$tracked" ]; then
        echo "    tracked bytecode files:" >&2
        echo "$tracked" | sed 's/^/      /' >&2
        return 1
    fi
    return 0
}

run_step "tracked-bytecode (no .pyc under version control)" \
    tracked_bytecode

if [ "$fast" = "1" ] && git rev-parse --verify --quiet origin/main >/dev/null; then
    run_step "repro_lint (changed files vs origin/main)" \
        python -m repro.cli lint src/repro --baseline .lint-baseline.json \
        --changed --base origin/main
else
    run_step "repro_lint (numerical-correctness + parallel-safety rules)" \
        python -m repro.cli lint src/repro --baseline .lint-baseline.json
fi

if [ "$fast" = "1" ]; then
    # The changed-files lint above already runs the shape rules (any
    # program rule keeps the whole-program pass on).
    echo "==> repro_shapecheck: skipped (--fast; covered by the changed-files lint)"
else
    run_step "repro_shapecheck (prove @shapes contracts statically)" \
        python -m repro.cli lint src/repro --rules \
        shape-mismatch,rank-mismatch,static-contract-violation,dtype-policy-violation
fi

if [ "$fast" = "1" ]; then
    echo "==> verify-determinism: skipped (--fast)"
else
    run_step "verify-determinism (serial == parallel, bit for bit)" \
        python -m repro.cli verify-determinism --smoke
fi

if [ "$fast" = "1" ]; then
    echo "==> store-smoke: skipped (--fast)"
else
    run_step "store-smoke (cold build, then warm all-hit reuse)" \
        python tools/store_smoke.py
fi

maybe_step "ruff (syntax + undefined names)" ruff \
    python -m ruff check src tests

maybe_step "mypy (strict on repro.core/utils/metrics/analysis/obs)" mypy \
    python -m mypy

if [ "$status" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
else
    echo "check.sh: all checks passed"
fi
exit "$status"
