#!/usr/bin/env python
"""Sharded completion of the full inner-Shanghai-sized network.

The paper's evaluation runs on downtown-sized TCMs (221/198 segments),
but the deployment target is the full 5,812-segment inner-Shanghai
network.  This example completes one week of 15-minute slots at 20 %
integrity over that network twice — monolithically with the paper's
full Algorithm 1 budget, and sharded (16 spatial tiles, 1-hop halo,
multilevel warm start) — then streams a million pre-matched probe
reports through the per-shard sliding-window estimator.

Run:  python examples/metropolitan_sharding.py          # ~1 min
      python examples/metropolitan_sharding.py --small  # downtown, seconds
"""

import sys
import time

import numpy as np

from repro.core.completion import PAPER_ITERATIONS, CompressiveSensingCompleter
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets import random_integrity_mask
from repro.metrics import nmae
from repro.probes import ReportBatch
from repro.roadnet import shanghai_downtown_like, shanghai_inner_like
from repro.scale import GridPartitioner, ShardedCompleter, ShardedStreamingEstimator

INTEGRITY = 0.2
RANK, LAM = 2, 10.0


def main() -> None:
    small = "--small" in sys.argv[1:]
    rng = np.random.default_rng(0)

    print("building the road network...")
    network = shanghai_downtown_like() if small else shanghai_inner_like()
    slots = 96 if small else 672
    num_shards = 4 if small else 16
    n = network.num_segments
    print(f"  {n} segments, {slots} slots of 15 min, "
          f"{INTEGRITY:.0%} integrity\n")

    # Low-rank-plus-noise truth on the km/h scale, masked to 20 %.
    base = rng.standard_normal((slots, 4)) @ rng.standard_normal((4, n))
    truth = 35.0 + 4.0 * base + 0.5 * rng.standard_normal((slots, n))
    mask = random_integrity_mask((slots, n), INTEGRITY, seed=rng)
    missing = ~mask
    tcm = TrafficConditionMatrix(
        np.where(mask, truth, 0.0),
        mask,
        grid=TimeGrid(0.0, 900.0, slots),
        segment_ids=network.segment_ids,
    )

    print(f"monolithic Algorithm 1 ({PAPER_ITERATIONS} sweeps)...")
    mono = CompressiveSensingCompleter(
        rank=RANK, lam=LAM, iterations=PAPER_ITERATIONS,
        center=True, clip_min=0.0, clip_max=150.0, seed=0,
    )
    start = time.perf_counter()
    mono_result = mono.complete(tcm.values, tcm.mask)
    mono_wall = time.perf_counter() - start
    mono_err = nmae(truth, mono_result.estimate, missing)
    print(f"  {mono_wall:.2f}s, NMAE on missing cells {mono_err:.4f}\n")

    print(f"sharded completion ({num_shards} tiles, halo 1, "
          f"5 seed + 8 warm sweeps)...")
    shards = GridPartitioner(num_shards, halo=1).partition(network)
    completer = ShardedCompleter(
        rank=RANK, lam=LAM, seed_iterations=5, warm_iterations=8,
        center=True, clip_min=0.0, clip_max=150.0, seed=0,
    )
    start = time.perf_counter()
    sharded_result = completer.complete(tcm, shards)
    sharded_wall = time.perf_counter() - start
    sharded_err = nmae(truth, sharded_result.estimate, missing)
    print(f"  {sharded_wall:.2f}s ({sharded_result.stitch_s:.3f}s stitching), "
          f"NMAE on missing cells {sharded_err:.4f}")
    print(f"  {mono_wall / sharded_wall:.1f}x faster, "
          f"NMAE delta {abs(sharded_err - mono_err):.4f}")
    widest = max(sharded_result.shards, key=lambda s: s.num_core)
    print(f"  largest tile: {widest.num_core} core + {widest.num_halo} halo "
          f"segments, {widest.observed_cells} observed cells\n")

    # ------------------------------------------------------------------
    num_reports = 100_000 if small else 1_000_000
    print(f"streaming {num_reports:,} pre-matched reports through "
          f"per-shard sliding windows...")
    times = np.sort(rng.uniform(0.0, 86_400.0, num_reports))
    segs = np.asarray(network.segment_ids, dtype=np.int64)[
        rng.integers(0, n, num_reports)
    ]
    batch = ReportBatch.from_columns(
        rng.integers(0, num_reports // 50, num_reports),
        times,
        np.zeros(num_reports),
        np.zeros(num_reports),
        rng.uniform(5.0, 70.0, num_reports),
        segment_ids=segs,
        assume_sorted=True,
    )
    streamer = ShardedStreamingEstimator(
        network, shards=num_shards, halo=0,
        slot_s=900.0, window_slots=24,
        warm_iterations=4, cold_iterations=8, seed=0,
    )
    start = time.perf_counter()
    streamer.ingest_batch(batch)
    streamer.flush()
    wall = time.perf_counter() - start
    print(f"  {wall:.2f}s ({num_reports / wall:,.0f} reports/s), "
          f"{len(streamer.estimates)} slots published, "
          f"{streamer.recompletions} re-completions "
          f"({streamer.recompletions_skipped} skipped on quiet tiles)")


if __name__ == "__main__":
    main()
