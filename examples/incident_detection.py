#!/usr/bin/env python
"""Incident detection from completed traffic matrices.

Section 3.1 of the paper observes that type-2 (spike) eigenflows track
localized events in the data.  This example closes the loop: inject
known incidents into the ground truth, estimate the TCM from sparse
probe observations, and detect the incidents on the *completed* matrix
with both detectors (low-rank residual and spike eigenflows), scoring
recall against the injected truth.

Run:  python examples/incident_detection.py
"""

import numpy as np

from repro.core import (
    EigenflowAnomalyDetector,
    ResidualAnomalyDetector,
    TimeGrid,
    TrafficConditionMatrix,
    TrafficEstimator,
)
from repro.core.anomaly import match_events
from repro.datasets import random_integrity_mask
from repro.roadnet import grid_city
from repro.traffic import CongestionIncident, GroundTruthTraffic, TrafficDynamicsConfig


def main() -> None:
    network = grid_city(6, 6, block_m=250.0, seed=0)
    grid = TimeGrid.over_days(2.0, 1800.0)

    # Inject three strong incidents at known (slot, segment) windows.
    incidents = [
        CongestionIncident(18 * 1800.0, 3 * 1800.0, 10, {10: 0.85, 11: 0.5}),
        CongestionIncident(55 * 1800.0, 4 * 1800.0, 40, {40: 0.9, 41: 0.55}),
        CongestionIncident(80 * 1800.0, 3 * 1800.0, 70, {70: 0.8}),
    ]
    truth_windows = [(18, 20), (55, 58), (80, 82)]
    config = TrafficDynamicsConfig(
        noise_sigma=0.08, temporal_roughness=0.15, incident_rate_per_day=0.0
    )
    truth = GroundTruthTraffic.synthesize(
        network, grid, config=config, seed=0, incidents=incidents
    )
    print(f"injected {len(incidents)} incidents into "
          f"{truth.tcm.shape} ground truth")

    # Observe 30% of cells, complete, then detect on the estimate.
    mask = random_integrity_mask(truth.tcm.shape, 0.3, seed=1)
    measured = truth.tcm.with_mask(mask)
    output = TrafficEstimator(lam=10.0, rank=3, seed=0).estimate(measured)
    # Fuse: keep observations where we have them.
    fused = TrafficConditionMatrix(
        np.where(mask, truth.tcm.values, output.estimate.values),
        grid=grid,
        segment_ids=network.segment_ids,
    )
    print(f"estimated from {measured.integrity:.0%} integrity\n")

    matrices = [("ground truth", truth.tcm), ("30%-integrity estimate", fused)]
    detectors = [
        ("residual (rank-2 baseline)", ResidualAnomalyDetector(rank=2, threshold_sigmas=4.5)),
        ("spike eigenflows", EigenflowAnomalyDetector(threshold_sigmas=4.5)),
    ]
    for matrix_name, matrix in matrices:
        print(f"--- detection on the {matrix_name} ---")
        for name, detector in detectors:
            events = detector.detect(matrix)
            recall, precision = match_events(
                events, truth_windows, slot_tolerance=1
            )
            print(f"  {name:28s} {len(events):3d} events; "
                  f"recall {recall:.0%}, precision {precision:.0%}")
            top = sorted(events, key=lambda e: -e.score)[:3]
            for e in top:
                print(f"      slot {e.slot:3d}  segments {e.segment_ids[:4]}  "
                      f"score {e.score:.1f}")
        print()

    print("completion errors add false alarms at low integrity — raising the")
    print("threshold or requiring multi-slot persistence trades recall for")
    print("precision, exactly as in production incident-detection systems.")


if __name__ == "__main__":
    main()
