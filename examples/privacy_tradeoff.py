#!/usr/bin/env python
"""Privacy/utility trade-off with virtual trip lines.

The paper points to virtual trip lines (Hoh et al.) for privacy: probes
report only when crossing instrumented locations, so sensitive places
never appear in the stream, and rotating pseudonyms break trajectory
linkage.  This example measures what those mechanisms cost the traffic
estimates.

Run:  python examples/privacy_tradeoff.py
"""

from repro.core import TimeGrid
from repro.mobility import FleetConfig, FleetSimulator
from repro.probes import PseudonymRotator, fleet_quality, privacy_impact
from repro.roadnet import grid_city
from repro.traffic import GroundTruthTraffic


def main() -> None:
    print("simulating a day of probe traffic (8x8 city, 250 taxis)...")
    network = grid_city(8, 8, seed=0)
    grid = TimeGrid.over_days(1.0, 1800.0)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=0)
    reports = FleetSimulator(
        truth, FleetConfig(num_vehicles=250), seed=1
    ).run()
    print(f"  {len(reports)} raw reports\n")

    print("1) pseudonym rotation (identity privacy):")
    rotator = PseudonymRotator(rotation_s=1800.0, seed=0)
    anonymous = rotator.anonymize(reports)
    raw_q = fleet_quality(reports)
    anon_q = fleet_quality(anonymous)
    print(f"   raw stream:        {raw_q.num_vehicles} linkable identities, "
          f"{raw_q.num_trajectories} trajectories")
    print(f"   rotated pseudonyms: {anon_q.num_vehicles} apparent identities "
          f"(no trajectory outlives {rotator.rotation_s / 60:.0f} min)")
    print("   TCM aggregation uses only (segment, slot, speed): estimation "
          "quality is untouched.\n")

    print("2) virtual trip lines (location privacy):")
    results = privacy_impact(
        truth, reports, fractions=(1.0, 0.75, 0.5, 0.25), seed=0
    )
    print(f"   {'deployed':>9} | {'reports kept':>12} | "
          f"{'integrity':>9} | {'est. NMAE':>9}")
    for p in results:
        print(f"   {p.deployment_fraction:>8.0%} | {p.reports_kept:>11.1%} | "
              f"{p.integrity:>8.1%} | {p.estimate_nmae:>9.4f}")

    full, quarter = results[0], results[-1]
    print(f"\ninstrumenting only 25% of segments keeps estimation alive "
          f"(NMAE {quarter.estimate_nmae:.2f} vs {full.estimate_nmae:.2f}):")
    print("the completion algorithm absorbs much of the privacy-induced")
    print("sparsity — the same property that absorbs natural sparsity.")


if __name__ == "__main__":
    main()
