#!/usr/bin/env python
"""Shanghai workday: the paper's downtown scenario end to end.

Reproduces the Section 4 setting on synthetic data: the 221-segment
downtown-Shanghai-like subnetwork, a multi-day window at 30-minute
granularity, a 2,000-taxi fleet — then compares the compressive-sensing
estimate against the three competing algorithms at the paper's 20 %
integrity operating point.

Run:  python examples/shanghai_workday.py  (takes a few minutes)
"""

import time

import numpy as np

from repro.baselines import MSSA, CorrelationKNN, NaiveKNN
from repro.core import CompressiveSensingCompleter
from repro.datasets import random_integrity_mask, shanghai_dataset
from repro.metrics import estimate_error


def main() -> None:
    print("building the Shanghai downtown dataset "
          "(221 segments, 2 days, 1,000 taxis)...")
    started = time.perf_counter()
    data = shanghai_dataset(days=2.0, num_vehicles=1_000, slot_s=1800.0, seed=0)
    print(f"  done in {time.perf_counter() - started:.0f}s; "
          f"{len(data.reports)} reports, natural integrity "
          f"{data.measurements.integrity:.1%}")

    truth = data.truth_tcm
    print(f"  ground-truth matrix: {truth.shape} "
          f"(slots x segments), speeds "
          f"{truth.values.min():.0f}-{truth.values.max():.0f} km/h")

    # The paper's protocol: thin the near-complete matrix to 20 %.
    mask = random_integrity_mask(truth.shape, 0.2, seed=1)
    measured = np.where(mask, truth.values, 0.0)
    print("\nestimating from 20% of cells (80% missing):")

    algorithms = [
        ("compressive (r=2)", CompressiveSensingCompleter(
            rank=2, lam=10.0, iterations=60, clip_min=0.0, seed=0)),
        ("naive KNN (K=4)", NaiveKNN(k=4)),
        ("correlation KNN", CorrelationKNN(k=4)),
        ("MSSA (M=24)", MSSA(window=24, components=5,
                             max_iterations=8, solver="truncated")),
    ]
    for name, algo in algorithms:
        started = time.perf_counter()
        result = algo.complete(measured, mask)
        estimate = getattr(result, "estimate", result)
        err = estimate_error(truth.values, estimate, mask)
        print(f"  {name:20s} NMAE = {err:.1%}   "
              f"({time.perf_counter() - started:.2f}s)")

    print("\nthe compressive-sensing algorithm recovers the missing 80%")
    print("of the matrix with the lowest error, as in the paper.")


if __name__ == "__main__":
    main()
