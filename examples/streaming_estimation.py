#!/usr/bin/env python
"""Online traffic estimation from a live probe stream.

The paper's first future-work item: extend the offline algorithm "to
support processing of online streaming probe data".  This example feeds
a simulated day of probe reports to the :class:`StreamingEstimator`
one report at a time, as a monitoring center would receive them, and
prints the live city-wide estimate published as each slot closes.

Run:  python examples/streaming_estimation.py
"""

import numpy as np

from repro.core import StreamingEstimator, TimeGrid
from repro.metrics import nmae
from repro.mobility import FleetConfig, FleetSimulator
from repro.roadnet import grid_city
from repro.traffic import GroundTruthTraffic


def main() -> None:
    network = grid_city(6, 6, block_m=250.0, seed=0)
    grid = TimeGrid.over_days(1.0, 900.0)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=0)
    print(f"simulating one day of probe data "
          f"({network.num_segments} segments, 120 taxis)...")
    reports = FleetSimulator(
        truth, FleetConfig(num_vehicles=120), seed=1
    ).run()
    print(f"  {len(reports)} reports\n")

    streamer = StreamingEstimator(
        segment_ids=network.segment_ids,
        slot_s=grid.slot_s,
        window_slots=24,  # six-hour sliding window
        rank=2,
        lam=10.0,
        seed=0,
    )

    print("streaming reports into the estimator...")
    print(f"{'slot end':>9} | {'observed':>8} | {'mean est. (km/h)':>16} | "
          f"{'slot NMAE':>9}")
    shown = 0
    for report in reports:
        for estimate in streamer.ingest(report):
            slot_idx = len(streamer.estimates) - 1
            truth_row = truth.tcm.values[slot_idx]
            err = nmae(truth_row[None], estimate.speeds_kmh[None])
            if slot_idx % 8 == 0:  # print every 2 hours
                hours = (estimate.slot_start_s + grid.slot_s) / 3600.0
                print(f"{hours:>8.1f}h | {estimate.observed_fraction:>7.1%} | "
                      f"{estimate.speeds_kmh.mean():>16.1f} | {err:>8.1%}")
                shown += 1
    streamer.flush()

    errs = [
        nmae(truth.tcm.values[i][None], e.speeds_kmh[None])
        for i, e in enumerate(streamer.estimates)
    ]
    print(f"\nprocessed {len(streamer.estimates)} slots; "
          f"median live-slot NMAE {np.median(errs):.1%}")
    print("warm-started sliding-window completion keeps each update cheap.")


if __name__ == "__main__":
    main()
