#!/usr/bin/env python
"""Trip planning on estimated traffic — the paper's headline use case.

Builds a city, estimates its traffic from sparse probe data, then uses
the *estimated* traffic condition matrix to plan time-dependent fastest
routes: the planner traverses each link at the speed of the slot the
vehicle actually reaches it in, so it routes around the evening peak
and can recommend a better departure time.

Run:  python examples/trip_planning.py
"""

import numpy as np

from repro.apps import CongestionMonitor, TripPlannerService
from repro.core import TrafficEstimator
from repro.datasets.synthetic import SyntheticDatasetConfig, build_probe_dataset
from repro.roadnet import grid_city


def fmt_hm(seconds: float) -> str:
    return f"{int(seconds // 3600):02d}:{int(seconds % 3600 // 60):02d}"


def main() -> None:
    print("building an 8x8 city and estimating a day of traffic...")
    network = grid_city(8, 8, block_m=300.0, seed=0)
    config = SyntheticDatasetConfig(days=1.0, num_vehicles=200, slot_s=900.0)
    data = build_probe_dataset(network, config, seed=0)
    output = TrafficEstimator(lam=10.0, seed=0).estimate(data.measurements)
    print(f"  measurement integrity {data.measurements.integrity:.1%} "
          f"-> complete estimate {output.estimate.shape}")

    planner = TripPlannerService(network, output.estimate)
    monitor = CongestionMonitor(network, output.estimate)
    peak = monitor.peak_slot()
    peak_time = output.estimate.grid.slot_start(peak)
    print(f"  estimated city-wide congestion peaks at {fmt_hm(peak_time)}")

    # A cross-town trip: bottom-left to top-right intersection.
    origin, destination = 0, network.num_intersections - 1
    print(f"\ncross-town trip {origin} -> {destination}:")
    departures = [6 * 3600.0, peak_time, 22 * 3600.0]
    plans = planner.compare_departures(origin, destination, departures)
    for plan in plans:
        print(f"  depart {fmt_hm(plan.depart_s)}  "
              f"travel {plan.travel_time_s / 60:5.1f} min  "
              f"({plan.num_links} links)")

    slow = max(plans, key=lambda p: p.travel_time_s)
    fast = min(plans, key=lambda p: p.travel_time_s)
    saved = (slow.travel_time_s - fast.travel_time_s) / 60
    print(f"\ndeparting at {fmt_hm(fast.depart_s)} instead of "
          f"{fmt_hm(slow.depart_s)} saves {saved:.1f} minutes — ")
    print("planned entirely on traffic estimated from sparse probe data.")


if __name__ == "__main__":
    main()
