#!/usr/bin/env python
"""Quickstart: estimate urban traffic from simulated probe vehicles.

Runs the full pipeline on a small grid city in well under a minute:

1. build a synthetic road network;
2. synthesize ground-truth traffic for six hours;
3. simulate a probe-taxi fleet reporting GPS speed updates;
4. aggregate the reports into a (sparse) traffic condition matrix;
5. complete the matrix with the compressive-sensing algorithm;
6. score the estimate against ground truth (NMAE over missing cells).

Run:  python examples/quickstart.py
"""

from repro.core import TrafficEstimator
from repro.datasets.synthetic import SyntheticDatasetConfig, build_probe_dataset
from repro.metrics import estimate_error
from repro.roadnet import grid_city


def main() -> None:
    print("building a 6x6 grid city...")
    network = grid_city(6, 6, block_m=250.0, seed=0)
    print(f"  {network.num_intersections} intersections, "
          f"{network.num_segments} directed road segments")

    print("simulating 24 h of traffic and an 80-taxi probe fleet...")
    config = SyntheticDatasetConfig(days=1.0, num_vehicles=80, slot_s=1800.0)
    data = build_probe_dataset(network, config, seed=0)
    print(f"  {len(data.reports)} probe reports received")
    print(f"  measurement matrix {data.measurements.shape}, "
          f"integrity {data.measurements.integrity:.1%}")

    print("completing the matrix (Algorithm 1, r=2)...")
    # lam=10 is what Algorithm 2 selects on this synthetic data; see
    # examples/parameter_tuning.py for the tuning run itself.
    estimator = TrafficEstimator(lam=10.0, seed=0)
    output = estimator.estimate(data.measurements)

    err = estimate_error(
        data.truth_tcm.values,
        output.estimate.values,
        data.measurements.mask,
    )
    print(f"  estimate error over missing cells (NMAE): {err:.1%}")

    sid = network.segment_ids[0]
    print(f"\nsegment {sid}: first 8 slots (km/h)")
    print("  truth:    ", [f"{v:5.1f}" for v in data.truth_tcm.series(sid)[:8]])
    print("  estimate: ", [f"{v:5.1f}" for v in output.estimate.series(sid)[:8]])


if __name__ == "__main__":
    main()
