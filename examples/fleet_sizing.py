#!/usr/bin/env python
"""Fleet sizing: how many probe taxis does a city need?

Recreates the paper's Section 2.3 analysis on a mid-size synthetic
city: for increasing fleet sizes, how complete is the measurement
matrix (Definition 4's integrity), how many roads stay near-invisible —
and how good is the compressive-sensing estimate anyway?

The punchline matches the paper: raw coverage saturates slowly with
fleet size, but the completion algorithm delivers usable city-wide
estimates long before coverage is anywhere near complete.

Run:  python examples/fleet_sizing.py
"""

import numpy as np

from repro.core import CompressiveSensingCompleter, TimeGrid
from repro.metrics import estimate_error
from repro.mobility import FleetConfig, FleetSimulator
from repro.probes import aggregate_reports, integrity_summary
from repro.roadnet import grid_city
from repro.traffic import GroundTruthTraffic


def main() -> None:
    network = grid_city(10, 10, block_m=250.0, seed=0)
    grid = TimeGrid.over_days(1.0, 1800.0)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=0)
    print(f"city: {network.num_segments} segments; window: 24 h at 30 min\n")

    header = (f"{'fleet':>6} | {'integrity':>9} | {'roads <20% cov':>14} | "
              f"{'est. NMAE':>9}")
    print(header)
    print("-" * len(header))

    for fleet_size in (25, 50, 100, 200, 400):
        # Simulate the fleet and aggregate its reports.
        sim = FleetSimulator(truth, FleetConfig(num_vehicles=fleet_size), seed=1)
        reports = sim.run()
        measured = aggregate_reports(reports, grid, network.segment_ids)
        summary = integrity_summary(measured)

        # Complete and score over the unobserved cells.
        if 0 < measured.integrity < 1:
            completer = CompressiveSensingCompleter(
                rank=2, lam=10.0, iterations=60, clip_min=0.0, center=True, seed=0
            )
            estimate = completer.complete(measured).estimate
            err = estimate_error(truth.tcm.values, estimate, measured.mask)
        else:
            err = float("nan")

        print(f"{fleet_size:>6} | {summary.overall:>8.1%} | "
              f"{summary.roads_below(0.2):>13.1%} | {err:>8.1%}")

    print("\nraw coverage grows slowly with fleet size; the completion")
    print("algorithm turns even ~20-30% coverage into usable city-wide")
    print("estimates — the missing-data algorithm does the heavy lifting.")


if __name__ == "__main__":
    main()
