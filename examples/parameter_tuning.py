#!/usr/bin/env python
"""Parameter tuning with Algorithm 2 (the genetic search).

The completion algorithm has two knobs — rank bound ``r`` and tradeoff
coefficient ``lambda`` — whose optimum depends on the data (Figures
15/16).  The paper tunes them with a genetic algorithm whose fitness is
the estimate error; this example runs that tuner on a synthetic
downtown matrix and compares tuned vs untuned estimates.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro.core import CompressiveSensingCompleter, GeneticTuner, TimeGrid
from repro.datasets import random_integrity_mask
from repro.metrics import estimate_error
from repro.roadnet import shanghai_downtown_like
from repro.traffic import GroundTruthTraffic


def main() -> None:
    print("building the downtown ground truth (221 segments, 3 days)...")
    network = shanghai_downtown_like(seed=0)
    grid = TimeGrid.over_days(3.0, 1800.0)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=0).tcm

    mask = random_integrity_mask(truth.shape, 0.2, seed=1)
    measured = np.where(mask, truth.values, 0.0)
    print(f"measurement matrix: {truth.shape}, integrity 20%\n")

    print("running Algorithm 2 (genetic search over r and lambda)...")
    tuner = GeneticTuner(
        rank_bounds=(1, 16),
        lam_bounds=(1e-3, 2e3),
        population_size=10,
        generations=5,
        completer_iterations=25,
        seed=0,
    )
    tuned = tuner.tune(measured, mask)
    print(f"  selected r={tuned.rank}, lambda={tuned.lam:.2f} "
          f"(validation NMAE {tuned.fitness:.3f}, "
          f"{tuned.generations_run} generations)")
    print(f"  fitness trajectory: "
          f"{[f'{v:.3f}' for v in tuned.history]}")

    print("\ncomparing against fixed parameter choices:")
    candidates = [
        ("tuned", tuned.rank, tuned.lam),
        ("paper default (r=2, lam=100)", 2, 100.0),
        ("overfit (r=32, lam=0.01)", 32, 0.01),
        ("over-regularized (r=2, lam=2000)", 2, 2000.0),
    ]
    for name, rank, lam in candidates:
        completer = CompressiveSensingCompleter(
            rank=rank, lam=lam, iterations=80, clip_min=0.0, seed=0
        )
        estimate = completer.complete(measured, mask).estimate
        err = estimate_error(truth.values, estimate, mask)
        print(f"  {name:34s} NMAE = {err:.1%}")

    print("\nthe GA lands in the good region without any analytical model")
    print("of the error surface — exactly the paper's motivation.")


if __name__ == "__main__":
    main()
