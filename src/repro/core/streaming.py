"""Online / streaming estimation (the paper's first future-work item).

The paper's Algorithm 1 is offline: it completes one fixed TCM.  The
conclusion proposes extending it "to support processing of online
streaming probe data".  :class:`StreamingEstimator` does so with a
sliding window:

* probe reports are ingested incrementally and bucketed into slots;
* when a slot closes, the estimator re-runs completion over the most
  recent ``window_slots`` slots, *warm-starting* the left factor from
  the previous solve (rows shift by one slot; the overlapping rows keep
  their factor values, the new row starts at the previous last row) so
  only a few ALS sweeps are needed per update;
* the freshly completed last row is the live estimate for the slot that
  just closed.

The warm start is what makes streaming cheap: consecutive windows share
all but one row, and ALS from a near-solution converges in a handful of
sweeps instead of the cold-start 100.

The window state itself lives in :class:`WindowCompleter` — one sliding
window of measurements, its warm-start factor, and the (warm or cold)
re-completion step — so the sharded metropolitan estimator
(:mod:`repro.scale.streaming`) can keep one instance per spatial tile
and re-complete only the tiles whose columns actually received reports.
The window buffers are preallocated 2-D arrays and the per-column
observation counts are maintained *incrementally* (add the new slot's
mask, subtract the slot that slid out) instead of being re-derived from
a freshly stacked indicator matrix at every slot close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.completion import (
    CompletionResult,
    CompressiveSensingCompleter,
    DTypeLike,
    PAPER_LAMBDA,
    PAPER_RANK,
)
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.probes.report import ProbeReport
from repro.utils.contracts import shapes
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SlotEstimate:
    """The live estimate published when a slot closes.

    Attributes
    ----------
    slot_start_s:
        Wall-clock start of the closed slot.
    speeds_kmh:
        Estimated mean flow speed for every tracked segment.
    observed_fraction:
        Integrity of the closed slot's measurements (before completion).
    """

    slot_start_s: float
    speeds_kmh: np.ndarray
    observed_fraction: float


class WindowCompleter:
    """One sliding measurement window with warm-started re-completion.

    Holds the mutable state a streaming estimator needs per column set:
    the last ``window_slots`` measurement rows (preallocated buffers, no
    per-close stacking), the incremental per-column observation counts,
    and the warm-start left factor carried between solves.  Both the
    whole-network :class:`StreamingEstimator` and the per-shard state of
    :class:`repro.scale.streaming.ShardedStreamingEstimator` are thin
    drivers around instances of this class.

    Parameters
    ----------
    num_columns:
        Width of the window (tracked segments of this tile).
    window_slots:
        Rows of the sliding TCM window.
    rank, lam:
        Algorithm 1 parameters.
    warm_iterations, cold_iterations:
        ALS sweeps for warm-started updates vs the first (cold) solve.
    backend, dtype:
        Solver backend and working dtype, forwarded to
        :class:`CompressiveSensingCompleter`.  Warm-start factors are
        kept in the backend's working dtype across windows, so a
        float32 stream never silently re-promotes to float64.
    rng:
        Seed source for the per-recompletion completer seeds.  Each
        tile owns an independent generator, so per-shard draw order is
        unaffected by which *other* shards re-complete.
    """

    def __init__(
        self,
        num_columns: int,
        window_slots: int,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        warm_iterations: int = 8,
        cold_iterations: int = 60,
        backend: str = "numpy",
        dtype: DTypeLike = None,
        rng: SeedLike = None,
    ) -> None:
        if num_columns < 1:
            raise ValueError(f"num_columns must be >= 1, got {num_columns}")
        if window_slots < 2:
            raise ValueError(f"window_slots must be >= 2, got {window_slots}")
        if warm_iterations < 1 or cold_iterations < 1:
            raise ValueError("iteration counts must be >= 1")
        self.num_columns = num_columns
        self.window_slots = window_slots
        self.rank = rank
        self.lam = lam
        self.warm_iterations = warm_iterations
        self.cold_iterations = cold_iterations
        self.backend = backend
        self.dtype = dtype
        # Validate backend/dtype eagerly (same checks the completer
        # applies) so a bad configuration fails at construction, not at
        # the first slot close.
        CompressiveSensingCompleter(
            rank=rank, lam=lam, iterations=1, backend=backend, dtype=dtype
        )
        self._rng = ensure_rng(rng)
        #: Set False to force every re-completion onto the cold path
        #: (used by the streaming study's warm-vs-cold comparison).
        self.warm_start = True
        self._values = np.zeros((window_slots, num_columns))
        self._masks = np.zeros((window_slots, num_columns), dtype=bool)
        self._filled = 0
        # Incremental per-column observation counts over the window:
        # updated as rows enter/leave, never re-derived from the full
        # indicator matrix.
        self._obs_counts = np.zeros(num_columns, dtype=np.int64)
        self._warm_left: Optional[np.ndarray] = None
        self._last_estimate = np.zeros(num_columns)

    # ------------------------------------------------------------------
    @property
    def filled(self) -> int:
        """Number of slots currently in the window."""
        return self._filled

    def observation_counts(self) -> np.ndarray:
        """Per-column observed-slot counts over the current window."""
        return self._obs_counts.copy()

    def window_arrays(self) -> tuple:
        """Copies of the window's (values, mask) matrices."""
        return (
            self._values[: self._filled].copy(),
            self._masks[: self._filled].copy(),
        )

    def last_estimate(self) -> np.ndarray:
        """The most recently completed last-row estimate (km/h)."""
        return self._last_estimate.copy()

    # ------------------------------------------------------------------
    def push(
        self,
        values: np.ndarray,
        mask: np.ndarray,
        recomplete: bool = True,
    ) -> np.ndarray:
        """Append one closed slot, optionally re-complete the window.

        Returns the completed estimate row for the new slot.  With
        ``recomplete=False`` the slot still enters the window (and the
        warm factor row-shifts with it), but no solve runs — the
        previous estimate row is republished.  This is the cheap path
        for tiles whose columns received no new reports.
        """
        values = np.asarray(values, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        if values.shape != (self.num_columns,) or mask.shape != values.shape:
            raise ValueError(
                f"slot row must have shape ({self.num_columns},), got "
                f"{values.shape} / {mask.shape}"
            )
        if self._filled == self.window_slots:
            self._obs_counts -= self._masks[0]
            self._values[:-1] = self._values[1:]
            self._masks[:-1] = self._masks[1:]
            self._values[-1] = values
            self._masks[-1] = mask
            if self._warm_left is not None:
                # Shift factor rows with the window; seed the new row
                # from the previous newest row (traffic is continuous).
                self._warm_left = np.vstack(
                    [self._warm_left[1:], self._warm_left[-1:]]
                )
        else:
            self._values[self._filled] = values
            self._masks[self._filled] = mask
            self._filled += 1
            if self._warm_left is not None:
                self._warm_left = np.vstack(
                    [self._warm_left, self._warm_left[-1:]]
                )
        self._obs_counts += mask
        if recomplete:
            self._last_estimate = self._recomplete()
        return self._last_estimate.copy()

    def _recomplete(self) -> np.ndarray:
        """Run (warm-started) completion over the window; return last row."""
        if not self._obs_counts.any():
            return np.zeros(self.num_columns)
        window_m = self._values[: self._filled]
        window_b = self._masks[: self._filled]

        # Centering is handled here (not via the completer option) so the
        # warm-started factors always refer to the same residual space.
        offset = float(window_m[window_b].mean())
        window_m = np.where(window_b, window_m - offset, 0.0)

        cold = (
            not self.warm_start
            or self._warm_left is None
            or self._warm_left.shape[0] != window_m.shape[0]
        )
        iterations = self.cold_iterations if cold else self.warm_iterations
        if obs_trace.enabled():
            obs_metrics.inc("stream.recompletions")
            obs_metrics.inc(
                "stream.cold_starts" if cold else "stream.warm_starts"
            )
        completer = CompressiveSensingCompleter(
            rank=self.rank,
            lam=self.lam,
            iterations=iterations,
            backend=self.backend,
            dtype=self.dtype,
            seed=int(self._rng.integers(0, 2**63 - 1)),
        )
        if cold:
            result = completer.complete(window_m, window_b)
        else:
            result = _warm_complete(completer, window_m, window_b, self._warm_left)
        self._warm_left = result.left
        return np.maximum(result.estimate[-1] + offset, 0.0)


class StreamingEstimator:
    """Sliding-window online completion of streaming probe data.

    Parameters
    ----------
    segment_ids:
        The tracked road segments (column order of all outputs).
    slot_s:
        Slot length in seconds.
    window_slots:
        Rows of the sliding TCM window; larger windows expose more
        temporal structure to the completion at higher per-update cost.
    start_s:
        Stream clock origin (start of slot 0).
    rank, lam:
        Algorithm 1 parameters.
    warm_iterations, cold_iterations:
        ALS sweeps for warm-started updates vs the first (cold) solve.
    min_speed_kmh:
        Idle-report filter threshold, as in batch aggregation.
    backend, dtype:
        Solver backend and working dtype, forwarded to
        :class:`CompressiveSensingCompleter`.
    """

    def __init__(
        self,
        segment_ids: Sequence[int],
        slot_s: float,
        window_slots: int = 96,
        start_s: float = 0.0,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        warm_iterations: int = 8,
        cold_iterations: int = 60,
        min_speed_kmh: float = 2.0,
        backend: str = "numpy",
        dtype: DTypeLike = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive(slot_s, "slot_s")
        self.segment_ids = [int(s) for s in segment_ids]
        if len(set(self.segment_ids)) != len(self.segment_ids):
            raise ValueError("segment_ids must be unique")
        self._col_of = {sid: j for j, sid in enumerate(self.segment_ids)}
        self.slot_s = slot_s
        self.window_slots = window_slots
        self.start_s = start_s
        self.rank = rank
        self.lam = lam
        self.warm_iterations = warm_iterations
        self.cold_iterations = cold_iterations
        self.min_speed_kmh = min_speed_kmh
        self.backend = backend
        self.dtype = dtype
        self._window = WindowCompleter(
            num_columns=len(self.segment_ids),
            window_slots=window_slots,
            rank=rank,
            lam=lam,
            warm_iterations=warm_iterations,
            cold_iterations=cold_iterations,
            backend=backend,
            dtype=dtype,
            rng=ensure_rng(seed),
        )

    # mutable stream state ------------------------------------------------
        n = len(self.segment_ids)
        self._current_slot = 0
        self._sums = np.zeros(n)
        self._counts = np.zeros(n, dtype=np.int64)
        self.estimates: List[SlotEstimate] = []

    # ------------------------------------------------------------------
    def ingest(self, report: ProbeReport) -> List[SlotEstimate]:
        """Feed one report; returns estimates for any slots that closed.

        Reports must arrive in (approximately) non-decreasing time order;
        a report for an already-closed slot is dropped (late data).
        """
        slot = int((report.time_s - self.start_s) // self.slot_s)
        if slot < self._current_slot:
            return []  # late report for a closed slot
        closed: List[SlotEstimate] = []
        while slot > self._current_slot:
            closed.append(self._close_slot())
        self._accumulate(report)
        return closed

    def ingest_many(self, reports: Sequence[ProbeReport]) -> List[SlotEstimate]:
        """Feed a chronologically sorted batch of reports."""
        closed: List[SlotEstimate] = []
        for report in sorted(reports, key=lambda r: r.time_s):
            closed.extend(self.ingest(report))
        return closed

    def flush(self) -> SlotEstimate:
        """Force-close the in-progress slot (e.g. at stream end)."""
        return self._close_slot()

    # ------------------------------------------------------------------
    def _accumulate(self, report: ProbeReport) -> None:
        if report.segment_id < 0 or report.speed_kmh < self.min_speed_kmh:
            return
        j = self._col_of.get(int(report.segment_id))
        if j is None:
            return
        self._sums[j] += report.speed_kmh
        self._counts[j] += 1

    @obs_trace.traced("stream.close_slot")
    def _close_slot(self) -> SlotEstimate:
        """Finalize the current slot, slide the window, re-complete."""
        n = len(self.segment_ids)
        mask = self._counts > 0
        values = np.zeros(n)
        np.divide(self._sums, self._counts, out=values, where=mask)

        estimate = self._window.push(values, mask, recomplete=True)
        # Where we actually observed the slot, publish the measurement.
        estimate_row = np.where(mask, values, estimate)
        slot_start = self.start_s + self._current_slot * self.slot_s
        result = SlotEstimate(
            slot_start_s=slot_start,
            speeds_kmh=estimate_row,
            observed_fraction=float(mask.mean()),
        )
        self.estimates.append(result)

        self._current_slot += 1
        self._sums[:] = 0.0
        self._counts[:] = 0
        return result

    def window_tcm(self) -> TrafficConditionMatrix:
        """The current window's measurement TCM (for inspection)."""
        if not self._window.filled:
            raise ValueError("no closed slots yet")
        values, masks = self._window.window_arrays()
        first_slot = self._current_slot - values.shape[0]
        grid = TimeGrid(
            start_s=self.start_s + first_slot * self.slot_s,
            slot_s=self.slot_s,
            num_slots=values.shape[0],
        )
        return TrafficConditionMatrix(
            values, masks, grid=grid, segment_ids=self.segment_ids
        )


@shapes(None, "m n", "m n:bool", "m r")
def _warm_complete(
    completer: CompressiveSensingCompleter,
    m_arr: np.ndarray,
    b_arr: np.ndarray,
    warm_left: np.ndarray,
) -> CompletionResult:
    """Run ALS sweeps starting from a provided left factor.

    Mirrors :meth:`CompressiveSensingCompleter.complete` but replaces the
    random initialization (pseudocode line 1) with ``warm_left``.  The
    sweep runs in the completer's working dtype: measurements and the
    warm factor are cast on entry, and the returned factors stay in
    that dtype so the next window warm-starts without re-promotion.
    """
    work_dtype = completer.work_dtype(m_arr.dtype)
    m_arr = np.ascontiguousarray(m_arr, dtype=work_dtype)
    left = warm_left.astype(work_dtype, copy=True)
    kernel = completer._bind_kernel(m_arr, b_arr, left.shape[1])
    ind = b_arr.astype(work_dtype)
    residual = np.empty_like(m_arr)
    best_obj = np.inf
    best_left, best_right = left, np.zeros(
        (m_arr.shape[1], left.shape[1]), dtype=work_dtype
    )
    history = []
    for _ in range(completer.iterations):
        right = completer._solve_right(left, m_arr, b_arr, kernel=kernel)
        left = completer._solve_left(right, m_arr, b_arr, kernel=kernel)
        obj = completer._objective(left, right, m_arr, ind, residual)
        history.append(obj)
        if obj < best_obj:
            best_obj, best_left, best_right = obj, left.copy(), right.copy()
    estimate = best_left @ best_right.T
    if completer.clip_min is not None or completer.clip_max is not None:
        estimate = np.clip(estimate, completer.clip_min, completer.clip_max)
    return CompletionResult(
        estimate=estimate,
        left=best_left,
        right=best_right,
        objective=best_obj,
        objective_history=history,
        iterations_run=len(history),
    )
