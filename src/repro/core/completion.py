"""Algorithm 1: compressive-sensing estimation of the TCM (Section 3.3).

The estimate is the SVD-like factorization ``X_hat = L R^T`` (Eq. 14)
whose factors minimize the Lagrangian objective (Eq. 16)

    || B .x (L R^T) - M ||_F^2  +  lambda (||L||_F^2 + ||R||_F^2)

found by alternating least squares: fix ``L``, solve for ``R``; fix
``R``, solve for ``L``; repeat ``t`` times keeping the best iterate by
objective value (pseudocode lines 2-9).

Two inner formulations are provided:

* ``mask_aware=True`` (default) — each column of ``R`` solves a ridge
  regression restricted to the rows where that column of ``M`` is
  observed, i.e. the constraint really is ``B .x (L R^T) = M`` (Eq. 15).
  This is the solver of the SRMF work [37] the paper says its algorithm
  follows, and is the variant that actually recovers missing data well.
* ``mask_aware=False`` — the literal pseudocode: one unmasked stacked
  least-squares solve ``inverse([L; sqrt(lambda) I], [M; 0])`` treating
  missing entries as zeros.  Kept for fidelity comparisons; it biases
  estimates toward zero wherever data is missing.

The mask-aware regression admits three interchangeable ``solver``
implementations (all minimize the same per-column objective; estimates
agree to solver round-off, well below 1e-8 on conditioned problems):

* ``"batched"`` (default) — one einsum builds all ``n`` Gram matrices
  ``G_j = F^T diag(B_{:,j}) F + lambda I`` at once and a single stacked
  ``np.linalg.solve`` on the ``(n, r, r)`` array solves them.  This is
  the vectorized hot path: no Python-level loop over columns.
* ``"grouped"`` — columns sharing an identical mask pattern are solved
  together with one factorization and a multi-RHS solve.  Algorithm 1
  derives the pattern groups once per ``complete()`` (packed-bit
  hashing) and reuses them across every sweep and restart; when the
  mask turns out unstructured (patterns nearly as numerous as columns)
  the sweeps delegate to the batched kernel, so the grouped solver is
  never slower than ``"batched"`` by more than the one-off grouping
  cost.  Wins when the mask is structured (whole slots/segments
  missing, sensor-style columns).
* ``"loop"`` — the original per-column Python loop, kept as the
  numerical reference the others are tested against.

``restarts > 1`` runs independent random initializations; with
``max_workers`` set they run concurrently (thread pool — the inner work
is LAPACK which releases the GIL).  Every restart's initialization is
drawn from the seed stream *before* dispatch, so results are
bit-identical whether restarts run serially or in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.core.backends import (
    BackendUnavailable,
    BoundKernel,
    SolverBackend,
    get_backend,
)
from repro.core.tcm import TrafficConditionMatrix
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.contracts import effects, hot_path, shapes
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix_pair

DTypeLike = Union[str, type, np.dtype, None]

PAPER_RANK = 2
PAPER_LAMBDA = 100.0
PAPER_ITERATIONS = 100

SOLVERS = ("batched", "grouped", "loop")

# (best objective, L, R, per-sweep objective history) of one ALS run.
_RunOutcome = Tuple[float, np.ndarray, np.ndarray, List[float]]


@dataclass(frozen=True)
class CompletionResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    estimate:
        ``X_hat = L_best R_best^T`` (every cell, observed or not).
    left, right:
        The best factors ``L`` (m x r) and ``R`` (n x r).
    objective:
        Best value of Eq. 16 reached (across all restarts).
    objective_history:
        Objective after every sweep **of the winning restart only**
        (length = that restart's sweeps).  Early-stop diagnostics should
        read this, not :attr:`iterations_run`.
    iterations_run:
        Total ALS sweeps **summed over every restart** (each may stop
        early on ``tol`` independently).  With ``restarts == 1`` this
        equals ``len(objective_history)``.
    restart_histories:
        Per-restart objective histories, in restart order; the winning
        restart's entry is :attr:`objective_history`.  Empty when the
        result was built by a caller that does not track restarts.
    best_restart:
        Index into :attr:`restart_histories` of the winning restart.
    """

    estimate: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective: float
    objective_history: List[float]
    iterations_run: int
    restart_histories: List[List[float]] = field(default_factory=list)
    best_restart: int = 0

    @property
    def rank_bound(self) -> int:
        return self.left.shape[1]

    @property
    def num_restarts(self) -> int:
        """Restarts tracked in this result (0 when untracked)."""
        return len(self.restart_histories)

    @shapes("m n", "m n:bool")
    def fused(self, measurements: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Estimate with observed cells replaced by their measurements."""
        measurements, mask = check_matrix_pair(measurements, mask)
        if measurements.shape != self.estimate.shape:
            raise ValueError("measurement shape mismatch")
        return np.where(mask, measurements, self.estimate)


class CompressiveSensingCompleter:
    """Algorithm 1 with the paper's default parameters (r=2, lambda=100).

    Parameters
    ----------
    rank:
        Rank bound ``r``: the number of columns of ``L`` and ``R``
        (Eq. 18 makes it an upper bound on ``rank(X_hat)``).
    lam:
        Tradeoff coefficient ``lambda`` of Eq. 16.
    iterations:
        ALS sweep count ``t``; the paper finds 100 sufficient for
        convergence on hundreds-by-hundreds matrices.
    mask_aware:
        Inner formulation choice (see module docstring).
    solver:
        Mask-aware implementation: ``"batched"`` (vectorized, default),
        ``"grouped"`` (per mask pattern), or ``"loop"`` (per-column
        reference).  Ignored when ``mask_aware=False``; only
        ``"batched"`` combines with a non-default ``backend`` (the
        backend's kernels replace the inner solver).
    backend:
        Solver backend from :mod:`repro.core.backends`: ``"numpy"``
        (default, the legacy dispatch above), ``"numpy-ws"``
        (preallocated-workspace kernels, float32-capable), or the
        optional ``"numba"``/``"cupy"`` backends when their extras are
        installed.  All backends minimize the same objective; see the
        backends module for the numerical-equivalence contract.
    dtype:
        Working dtype policy.  ``None`` (default) honors the input:
        a float32 measurement matrix is completed in float32, anything
        else in float64.  Pass ``np.float32``/``np.float64`` to force a
        dtype (the input is cast once on entry).  The returned factors
        and estimate are in the working dtype.
    tol:
        Optional early-stop: halt when the objective improves by less
        than ``tol`` (relative) between sweeps.
    clip_min, clip_max:
        Optional bounds applied to the returned estimate (speeds are
        physical, so callers usually clip at 0).
    center:
        Subtract the observed cells' mean before factorizing and add it
        back after.  The Frobenius regularizer shrinks ``L R^T`` toward
        *zero*; with centering the shrinkage target becomes the mean
        observed speed, which keeps large ``lambda`` values sane on
        small or sparse matrices.  Off by default (the paper's
        pseudocode factorizes the raw measurements).
    restarts:
        Number of independent random initializations; the run with the
        lowest final objective wins.  ALS occasionally converges to a
        local minimum from an unlucky init; a few restarts make the
        solver robust at proportional cost.  Default 1 (the paper's
        single random init).
    max_workers:
        Run restarts on a thread pool of this size (``None``/``1`` =
        serial).  Results are bit-identical either way: every restart's
        random init is drawn from the seed stream before dispatch.
    seed:
        Random initialization of ``L`` (pseudocode line 1).
    """

    def __init__(
        self,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        iterations: int = PAPER_ITERATIONS,
        mask_aware: bool = True,
        solver: str = "batched",
        backend: str = "numpy",
        dtype: DTypeLike = None,
        tol: Optional[float] = None,
        clip_min: Optional[float] = None,
        clip_max: Optional[float] = None,
        center: bool = False,
        restarts: int = 1,
        max_workers: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        backend_obj = get_backend(backend)
        if backend_obj.name != "numpy":
            if not backend_obj.is_available():
                raise BackendUnavailable(
                    f"backend {backend!r} {backend_obj.availability_hint()}"
                )
            if not mask_aware:
                raise ValueError(
                    f"backend {backend!r} implements the mask-aware solve; "
                    "mask_aware=False requires backend='numpy'"
                )
            if solver != "batched":
                raise ValueError(
                    f"backend {backend!r} replaces the inner solver; "
                    f"combine it with solver='batched', not {solver!r}"
                )
        requested_dtype: Optional[np.dtype] = (
            None if dtype is None else np.dtype(dtype)
        )
        if requested_dtype is not None and requested_dtype not in (
            backend_obj.supported_dtypes
        ):
            supported = ", ".join(str(d) for d in backend_obj.supported_dtypes)
            raise ValueError(
                f"backend {backend!r} does not support dtype "
                f"{requested_dtype} (supported: {supported})"
            )
        if tol is not None and tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if clip_min is not None and clip_max is not None and clip_min > clip_max:
            raise ValueError("clip_min must not exceed clip_max")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
        self.rank = rank
        self.lam = lam
        self.iterations = iterations
        self.mask_aware = mask_aware
        self.solver = solver
        self.backend = backend
        self.dtype = requested_dtype
        self._backend: SolverBackend = backend_obj
        self.tol = tol
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.center = center
        self.restarts = restarts
        self.max_workers = max_workers
        self._seed = seed

    # ------------------------------------------------------------------
    @effects(allow={"rng"})
    @shapes("m n", "m n:bool")
    def complete(
        self,
        measurements: Union[TrafficConditionMatrix, np.ndarray],
        mask: Optional[np.ndarray] = None,
    ) -> CompletionResult:
        """Run Algorithm 1 on a measurement matrix.

        Accepts either a :class:`TrafficConditionMatrix` or an explicit
        ``(M, B)`` array pair.
        """
        if isinstance(measurements, TrafficConditionMatrix):
            if mask is not None:
                raise ValueError("mask is implied by the TrafficConditionMatrix")
            m_arr, b_arr = measurements.values, measurements.mask
        else:
            if mask is None:
                raise ValueError("mask required when passing a raw array")
            m_arr, b_arr = check_matrix_pair(measurements, mask, dtype=None)
        if not b_arr.any():
            raise ValueError("measurement matrix has no observed entries")

        work_dtype = self.work_dtype(m_arr.dtype)
        if m_arr.dtype != work_dtype:
            m_arr = m_arr.astype(work_dtype)

        rng = ensure_rng(self._seed)
        m, n = m_arr.shape
        r = min(self.rank, m, n)

        # Zero the unobserved cells once.  The mask-aware solvers never
        # read them, the literal solver's documented behavior is
        # "missing entries are zeros", and hoisting the masking out of
        # the sweep loop removes a full m x n `np.where` per solve.
        # The masking stays in the working dtype, and when the caller
        # already zeroed the unobserved cells (synthetic pipelines
        # build M as `np.where(mask, truth, 0)`) the full-matrix copy
        # is skipped entirely.
        zero = work_dtype.type(0)
        offset = 0.0
        if self.center:
            offset = float(m_arr[b_arr].mean())
            m_arr = np.where(b_arr, m_arr - offset, zero)
        elif m_arr[~b_arr].any():
            m_arr = np.where(b_arr, m_arr, zero)

        # Line 1 of the pseudocode, once per restart: random init of L,
        # scaled to the data's magnitude so the first R-solve starts in
        # the right ballpark.  All inits are drawn from the seed stream
        # up front so the restart runs are order-independent — serial
        # and parallel execution produce bit-identical results.  Draws
        # happen in the generator's native float64 and are cast once,
        # so the working dtype cannot perturb the random stream.
        observed_scale = float(np.abs(m_arr[b_arr]).mean())
        init_scale = np.sqrt(max(observed_scale, 1e-6) / r)
        inits = [
            (rng.standard_normal((m, r)) * init_scale).astype(
                work_dtype, copy=False
            )
            for _ in range(self.restarts)
        ]

        # Indicator in the working dtype for the objective's masked
        # residual, cast once for all restarts (read-only across runs).
        ind = b_arr.astype(work_dtype)
        # The mask never changes across sweeps or restarts, so the
        # grouped solver's pattern discovery is hoisted here — one
        # grouping per side for the whole call, not two per sweep.
        groupings: Optional[Tuple["_MaskGroups", "_MaskGroups"]] = None
        if self.mask_aware and self.solver == "grouped":
            groupings = (_MaskGroups(b_arr), _MaskGroups(b_arr.T))
        with obs_trace.span(
            "als.complete",
            rows=m,
            cols=n,
            rank=r,
            solver=self.solver if self.mask_aware else "stacked",
            restarts=self.restarts,
        ):
            runs: List[_RunOutcome] = parallel_map(
                lambda init: self._run_als(m_arr, b_arr, init, ind, groupings),
                inits,
                max_workers=self.max_workers,
                backend="thread",
                span_name="als.restart",
            )

        best_idx = min(range(len(runs)), key=lambda i: runs[i][0])
        best_obj, best_left, best_right, _ = runs[best_idx]
        restart_histories = [history for _, _, _, history in runs]
        iterations_run = sum(len(h) for h in restart_histories)
        if obs_trace.enabled():
            obs_metrics.inc("als.completions")
            obs_metrics.inc("als.restarts", self.restarts)
            for history in restart_histories:
                obs_metrics.observe("als.iterations_to_convergence", len(history))
            obs_metrics.observe("als.objective", best_obj)

        estimate = best_left @ best_right.T + offset
        if self.clip_min is not None or self.clip_max is not None:
            estimate = np.clip(estimate, self.clip_min, self.clip_max)
        return CompletionResult(
            estimate=estimate,
            left=best_left,
            right=best_right,
            objective=best_obj,
            objective_history=restart_histories[best_idx],
            iterations_run=iterations_run,
            restart_histories=restart_histories,
            best_restart=best_idx,
        )

    # ------------------------------------------------------------------
    def _run_als(
        self,
        m_arr: np.ndarray,
        b_arr: np.ndarray,
        init: np.ndarray,
        ind: Optional[np.ndarray] = None,
        groupings: Optional[Tuple["_MaskGroups", "_MaskGroups"]] = None,
    ) -> _RunOutcome:
        """One ALS run from the given init (pseudocode lines 2-9).

        Returns ``(best objective, L, R, per-iteration objectives)``.
        Reads only; safe to run concurrently across restarts.  Each run
        binds its own backend kernel and owns its own objective residual
        buffer: workspace kernels reuse scratch buffers across sweeps,
        so neither must ever be shared between concurrently-running
        restarts.
        """
        n = m_arr.shape[1]
        left = init
        best_obj = np.inf
        best_left, best_right = left, np.zeros((n, left.shape[1]), dtype=left.dtype)
        history: List[float] = []
        right_groups = groupings[0] if groupings is not None else None
        left_groups = groupings[1] if groupings is not None else None
        kernel = self._bind_kernel(m_arr, b_arr, init.shape[1])
        if ind is None:
            ind = b_arr.astype(m_arr.dtype)
        residual = np.empty_like(m_arr)
        for _ in range(self.iterations):
            right = self._solve_right(left, m_arr, b_arr, right_groups, kernel)
            left = self._solve_left(right, m_arr, b_arr, left_groups, kernel)
            obj = self._objective(left, right, m_arr, ind, residual)
            history.append(obj)
            if obj < best_obj:
                improvement = (best_obj - obj) / max(best_obj, 1e-12)
                best_obj, best_left, best_right = obj, left.copy(), right.copy()
                if (
                    self.tol is not None
                    and np.isfinite(improvement)
                    and improvement < self.tol
                ):
                    break
            elif self.tol is not None:
                break
        return best_obj, best_left, best_right, history

    # ------------------------------------------------------------------
    # Inner solvers
    # ------------------------------------------------------------------
    def _masked_solver(self) -> Callable[[np.ndarray, np.ndarray, np.ndarray, float], np.ndarray]:
        if self.solver == "batched":
            return _ridge_by_column_batched
        if self.solver == "grouped":
            return _ridge_by_column_grouped
        return _ridge_by_column

    def work_dtype(self, input_dtype: np.dtype) -> np.dtype:
        """Resolve the dtype the ALS sweep will run in.

        Explicit ``dtype=`` wins; otherwise a float32 input is honored
        and everything else runs in float64.  Exposed so streaming
        callers can cast warm-start factors consistently.
        """
        return self._backend.resolve_dtype(self.dtype, input_dtype)

    def _bind_kernel(
        self, m_arr: np.ndarray, b_arr: np.ndarray, rank: int
    ) -> Optional[BoundKernel]:
        """Bind the configured backend's solve kernel to one ALS run.

        Returns ``None`` for the default ``"numpy"`` backend, which
        keeps the legacy ``solver=`` dispatch (batched/grouped/loop and
        the non-mask-aware stacked solve) untouched.
        """
        if self._backend.name == "numpy":
            return None
        return self._backend.bind(m_arr, b_arr, self.lam, rank)

    @shapes("m r", "m n", "m n:bool")
    def _solve_right(
        self,
        left: np.ndarray,
        m_arr: np.ndarray,
        b_arr: np.ndarray,
        groups: Optional["_MaskGroups"] = None,
        kernel: Optional[BoundKernel] = None,
    ) -> np.ndarray:
        """R <- argmin of Eq. 16 with L fixed."""
        if kernel is not None:
            return kernel.solve_right(left)
        if self.mask_aware:
            if groups is not None:
                return groups.apply(left, m_arr, b_arr, self.lam)
            return self._masked_solver()(left, m_arr, b_arr, self.lam)
        return _stacked_solve(left, m_arr, self.lam).T

    @shapes("n r", "m n", "m n:bool")
    def _solve_left(
        self,
        right: np.ndarray,
        m_arr: np.ndarray,
        b_arr: np.ndarray,
        groups: Optional["_MaskGroups"] = None,
        kernel: Optional[BoundKernel] = None,
    ) -> np.ndarray:
        """L <- argmin of Eq. 16 with R fixed (by transposition symmetry)."""
        if kernel is not None:
            return kernel.solve_left(right)
        if self.mask_aware:
            if groups is not None:
                return groups.apply(right, m_arr.T, b_arr.T, self.lam)
            return self._masked_solver()(right, m_arr.T, b_arr.T, self.lam)
        return _stacked_solve(right, m_arr.T, self.lam).T

    @effects("pure")
    @hot_path
    @shapes("m r", "n r", "m n", "m n", "m n")
    def _objective(
        self,
        left: np.ndarray,
        right: np.ndarray,
        m_arr: np.ndarray,
        ind: np.ndarray,
        residual: np.ndarray,
    ) -> float:
        """Eq. 16: masked fit residual plus Frobenius regularization.

        Runs entirely in the caller-owned ``residual`` buffer: one GEMM,
        two element-wise passes, one BLAS dot.  The dense GEMM beats a
        gather of the observed coordinates even at the paper's 20%
        integrity — fancy indexing pays per-element overhead that the
        contiguous kernels do not — and in float32 the whole pass moves
        half the bytes, which is where the float32 backends earn their
        wall-clock win (the solves alone are too small to dominate).
        """
        # The residual buffer is caller-owned per ALS run; writing into
        # it is the point (no fresh m x n temporaries per sweep).
        np.matmul(left, right.T, out=residual)
        np.subtract(residual, m_arr, out=residual)
        np.multiply(residual, ind, out=residual)
        flat = residual.reshape(-1)
        fit = float(np.dot(flat, flat))
        reg = float(np.sum(left**2) + np.sum(right**2))
        return fit + self.lam * reg


@effects("pure")
@hot_path
def _stacked_solve(p_top: np.ndarray, q_top: np.ndarray, lam: float) -> np.ndarray:
    """The pseudocode's ``inverse([P; sqrt(lam) I], [Q; 0])``.

    Solves ``(P^T P + lam I) C = P^T Q`` — the normal equations of the
    stacked (contradictory) system of Eq. 17.
    """
    r = p_top.shape[1]
    gram = p_top.T @ p_top + lam * np.eye(r, dtype=p_top.dtype)
    return np.linalg.solve(gram, p_top.T @ q_top)


@effects("pure")
@hot_path
def _ridge_by_column(
    factor: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
) -> np.ndarray:
    """Mask-aware ridge solve for the other factor, column by column.

    For each column ``j`` of ``M``, with ``I`` the observed rows:

        (F_I^T F_I + lam I_r) x_j = F_I^T M_{I,j}

    An entirely unobserved column yields the zero vector (the ridge term
    keeps the system non-singular).  This is the reference
    implementation (``solver="loop"``); the vectorized solvers below are
    tested for numerical equivalence against it.
    """
    m, r = factor.shape
    n = m_arr.shape[1]
    out = np.zeros((n, r), dtype=factor.dtype)
    eye = lam * np.eye(r, dtype=factor.dtype)
    for j in range(n):
        rows = b_arr[:, j]
        if not rows.any():
            continue
        f = factor[rows]
        gram = f.T @ f + eye
        out[j] = np.linalg.solve(gram, f.T @ m_arr[rows, j])
    return out


@effects("pure")
@hot_path
def _ridge_by_column_batched(
    factor: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
) -> np.ndarray:
    """Vectorized mask-aware ridge solve: all columns in one shot.

    Builds every Gram matrix at once,

        G_j = F^T diag(B_{:, j}) F + lam I_r
            = einsum('ij,ik,il->jkl', B, F, F) + lam I_r,

    the right-hand sides via one masked matmul ``F^T (B .x M)``, and
    solves the whole ``(n, r, r)`` stack with a single batched
    ``np.linalg.solve``.  No Python-level loop remains; the work happens
    in one optimized einsum (internally a GEMM over the r*r outer
    products) plus one batched LAPACK ``gesv``.

    With ``lam > 0`` an entirely unobserved column has ``G_j = lam I``
    and a zero right-hand side, so it solves to the zero vector exactly
    as the loop reference skips it.  With ``lam == 0`` those singular
    systems are excluded from the stack explicitly.

    ``m_arr`` must be zero on unobserved cells (Algorithm 1 zeroes its
    input once on entry); the loop and grouped solvers never read those
    cells, so the precondition keeps all three interchangeable.
    """
    m, r = factor.shape
    n = m_arr.shape[1]
    indicator = b_arr.astype(factor.dtype)
    # The einsum above contracted through one GEMM: stack the r*r outer
    # products of F's rows as an (m, r*r) matrix and left-multiply by
    # B^T.  (Equivalent to np.einsum(..., optimize=True), minus the
    # per-call contraction-path dispatch that dominates at small r.)
    pairs = (factor[:, :, None] * factor[:, None, :]).reshape(m, r * r)
    grams = (indicator.T @ pairs).reshape(n, r, r)
    grams += lam * np.eye(r, dtype=factor.dtype)
    rhs = factor.T @ m_arr  # (r, n); unobserved cells are zero
    if lam > 0:
        solved: np.ndarray = np.linalg.solve(grams, rhs.T[:, :, None])[:, :, 0]
        return solved
    out = np.zeros((n, r), dtype=factor.dtype)
    observed_cols = np.flatnonzero(b_arr.any(axis=0))
    if observed_cols.size:
        out[observed_cols] = np.linalg.solve(
            grams[observed_cols], rhs.T[observed_cols, :, None]
        )[:, :, 0]
    return out


class _MaskGroups:
    """Columns of a mask grouped by identical observation pattern.

    Columns of ``M`` observed on the same set of rows share one Gram
    matrix, so each unique mask pattern needs a single factorization and
    a multi-RHS solve.  Discovering the patterns is the expensive part —
    the mask never changes inside Algorithm 1, so this class does it
    exactly once (on bit-packed columns, 8 rows per compared byte) and
    :meth:`apply` reuses the grouping every sweep.

    Structured missingness (whole slots or segments dropped, the common
    TCM case) collapses to a handful of groups; on an unstructured mask
    the group count approaches the column count and per-group solves
    lose to one batched stacked solve, so :meth:`apply` delegates to the
    batched kernel whenever grouping is not clearly profitable.
    """

    def __init__(self, b_arr: np.ndarray) -> None:
        self.num_columns = b_arr.shape[1]
        packed = np.packbits(b_arr, axis=0)
        _, inverse = np.unique(packed, axis=1, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.flatnonzero(np.diff(inverse[order])) + 1
        col_groups = np.split(order, boundaries) if order.size else []
        self.groups: List[Tuple[np.ndarray, np.ndarray]] = [
            (b_arr[:, cols[0]].copy(), cols) for cols in col_groups
        ]
        # One factorization per pattern only beats the batched kernel
        # when patterns are much scarcer than columns.
        self.profitable = len(self.groups) <= max(8, self.num_columns // 8)

    @effects("pure")
    @hot_path
    def apply(
        self, factor: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
    ) -> np.ndarray:
        """Grouped mask-aware ridge solve (batched when unprofitable)."""
        if not self.profitable:
            return _ridge_by_column_batched(factor, m_arr, b_arr, lam)
        r = factor.shape[1]
        out = np.zeros((self.num_columns, r), dtype=factor.dtype)
        eye = lam * np.eye(r, dtype=factor.dtype)
        for rows, cols in self.groups:
            if not rows.any():
                continue
            f = factor[rows]
            gram = f.T @ f + eye
            rhs = f.T @ m_arr[np.ix_(rows, cols)]
            out[cols] = np.linalg.solve(gram, rhs).T
        return out


@effects("pure")
@hot_path
def _ridge_by_column_grouped(
    factor: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
) -> np.ndarray:
    """Mask-aware ridge solve grouped by identical mask pattern.

    Standalone entry point that derives the grouping on the fly; inside
    Algorithm 1 the grouping is hoisted out of the sweep loop via
    :class:`_MaskGroups` instead.
    """
    return _MaskGroups(b_arr).apply(factor, m_arr, b_arr, lam)
