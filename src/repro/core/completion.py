"""Algorithm 1: compressive-sensing estimation of the TCM (Section 3.3).

The estimate is the SVD-like factorization ``X_hat = L R^T`` (Eq. 14)
whose factors minimize the Lagrangian objective (Eq. 16)

    || B .x (L R^T) - M ||_F^2  +  lambda (||L||_F^2 + ||R||_F^2)

found by alternating least squares: fix ``L``, solve for ``R``; fix
``R``, solve for ``L``; repeat ``t`` times keeping the best iterate by
objective value (pseudocode lines 2-9).

Two inner solvers are provided:

* ``mask_aware=True`` (default) — each column of ``R`` solves a ridge
  regression restricted to the rows where that column of ``M`` is
  observed, i.e. the constraint really is ``B .x (L R^T) = M`` (Eq. 15).
  This is the solver of the SRMF work [37] the paper says its algorithm
  follows, and is the variant that actually recovers missing data well.
* ``mask_aware=False`` — the literal pseudocode: one unmasked stacked
  least-squares solve ``inverse([L; sqrt(lambda) I], [M; 0])`` treating
  missing entries as zeros.  Kept for fidelity comparisons; it biases
  estimates toward zero wherever data is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.tcm import TrafficConditionMatrix
from repro.utils.contracts import shapes
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix_pair

PAPER_RANK = 2
PAPER_LAMBDA = 100.0
PAPER_ITERATIONS = 100


@dataclass(frozen=True)
class CompletionResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    estimate:
        ``X_hat = L_best R_best^T`` (every cell, observed or not).
    left, right:
        The best factors ``L`` (m x r) and ``R`` (n x r).
    objective:
        Best value of Eq. 16 reached.
    objective_history:
        Objective after every iteration (length = iterations run).
    iterations_run:
        Number of ALS sweeps performed (may stop early on ``tol``).
    """

    estimate: np.ndarray
    left: np.ndarray
    right: np.ndarray
    objective: float
    objective_history: List[float]
    iterations_run: int

    @property
    def rank_bound(self) -> int:
        return self.left.shape[1]

    @shapes("m n", "m n:bool")
    def fused(self, measurements: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Estimate with observed cells replaced by their measurements."""
        measurements, mask = check_matrix_pair(measurements, mask)
        if measurements.shape != self.estimate.shape:
            raise ValueError("measurement shape mismatch")
        return np.where(mask, measurements, self.estimate)


class CompressiveSensingCompleter:
    """Algorithm 1 with the paper's default parameters (r=2, lambda=100).

    Parameters
    ----------
    rank:
        Rank bound ``r``: the number of columns of ``L`` and ``R``
        (Eq. 18 makes it an upper bound on ``rank(X_hat)``).
    lam:
        Tradeoff coefficient ``lambda`` of Eq. 16.
    iterations:
        ALS sweep count ``t``; the paper finds 100 sufficient for
        convergence on hundreds-by-hundreds matrices.
    mask_aware:
        Inner solver choice (see module docstring).
    tol:
        Optional early-stop: halt when the objective improves by less
        than ``tol`` (relative) between sweeps.
    clip_min, clip_max:
        Optional bounds applied to the returned estimate (speeds are
        physical, so callers usually clip at 0).
    center:
        Subtract the observed cells' mean before factorizing and add it
        back after.  The Frobenius regularizer shrinks ``L R^T`` toward
        *zero*; with centering the shrinkage target becomes the mean
        observed speed, which keeps large ``lambda`` values sane on
        small or sparse matrices.  Off by default (the paper's
        pseudocode factorizes the raw measurements).
    restarts:
        Number of independent random initializations; the run with the
        lowest final objective wins.  ALS occasionally converges to a
        local minimum from an unlucky init; a few restarts make the
        solver robust at proportional cost.  Default 1 (the paper's
        single random init).
    seed:
        Random initialization of ``L`` (pseudocode line 1).
    """

    def __init__(
        self,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        iterations: int = PAPER_ITERATIONS,
        mask_aware: bool = True,
        tol: Optional[float] = None,
        clip_min: Optional[float] = None,
        clip_max: Optional[float] = None,
        center: bool = False,
        restarts: int = 1,
        seed: SeedLike = None,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if tol is not None and tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if clip_min is not None and clip_max is not None and clip_min > clip_max:
            raise ValueError("clip_min must not exceed clip_max")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.rank = rank
        self.lam = lam
        self.iterations = iterations
        self.mask_aware = mask_aware
        self.tol = tol
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.center = center
        self.restarts = restarts
        self._seed = seed

    # ------------------------------------------------------------------
    @shapes("m n", "m n:bool")
    def complete(
        self,
        measurements: Union[TrafficConditionMatrix, np.ndarray],
        mask: Optional[np.ndarray] = None,
    ) -> CompletionResult:
        """Run Algorithm 1 on a measurement matrix.

        Accepts either a :class:`TrafficConditionMatrix` or an explicit
        ``(M, B)`` array pair.
        """
        if isinstance(measurements, TrafficConditionMatrix):
            if mask is not None:
                raise ValueError("mask is implied by the TrafficConditionMatrix")
            m_arr, b_arr = measurements.values, measurements.mask
        else:
            if mask is None:
                raise ValueError("mask required when passing a raw array")
            m_arr, b_arr = check_matrix_pair(measurements, mask)
        if not b_arr.any():
            raise ValueError("measurement matrix has no observed entries")

        rng = ensure_rng(self._seed)
        m, n = m_arr.shape
        r = min(self.rank, m, n)

        offset = 0.0
        if self.center:
            offset = float(m_arr[b_arr].mean())
            m_arr = np.where(b_arr, m_arr - offset, 0.0)

        best_obj = np.inf
        best_left = np.zeros((m, r))
        best_right = np.zeros((n, r))
        history: List[float] = []
        iterations_run = 0
        for _ in range(self.restarts):
            obj, left, right, run_history = self._run_als(m_arr, b_arr, r, rng)
            iterations_run += len(run_history)
            if obj < best_obj:
                best_obj, best_left, best_right = obj, left, right
                history = run_history

        estimate = best_left @ best_right.T + offset
        if self.clip_min is not None or self.clip_max is not None:
            estimate = np.clip(estimate, self.clip_min, self.clip_max)
        return CompletionResult(
            estimate=estimate,
            left=best_left,
            right=best_right,
            objective=best_obj,
            objective_history=history,
            iterations_run=iterations_run,
        )

    # ------------------------------------------------------------------
    def _run_als(
        self,
        m_arr: np.ndarray,
        b_arr: np.ndarray,
        r: int,
        rng: np.random.Generator,
    ) -> Tuple[float, np.ndarray, np.ndarray, List[float]]:
        """One ALS run from a fresh random init (pseudocode lines 1-9).

        Returns ``(best objective, L, R, per-iteration objectives)``.
        """
        m, n = m_arr.shape
        # Line 1: random init of L, scaled to the data's magnitude so
        # the first R-solve starts in the right ballpark.
        observed_scale = float(np.abs(m_arr[b_arr]).mean())
        init_scale = np.sqrt(max(observed_scale, 1e-6) / r)
        left = rng.standard_normal((m, r)) * init_scale

        best_obj = np.inf
        best_left, best_right = left, np.zeros((n, r))
        history: List[float] = []
        for _ in range(self.iterations):
            right = self._solve_right(left, m_arr, b_arr)
            left = self._solve_left(right, m_arr, b_arr)
            obj = self._objective(left, right, m_arr, b_arr)
            history.append(obj)
            if obj < best_obj:
                improvement = (best_obj - obj) / max(best_obj, 1e-12)
                best_obj, best_left, best_right = obj, left.copy(), right.copy()
                if (
                    self.tol is not None
                    and np.isfinite(improvement)
                    and improvement < self.tol
                ):
                    break
            elif self.tol is not None:
                break
        return best_obj, best_left, best_right, history

    # ------------------------------------------------------------------
    # Inner solvers
    # ------------------------------------------------------------------
    def _solve_right(
        self, left: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray
    ) -> np.ndarray:
        """R <- argmin of Eq. 16 with L fixed."""
        if self.mask_aware:
            return _ridge_by_column(left, m_arr, b_arr, self.lam)
        return _stacked_solve(left, m_arr, self.lam).T

    def _solve_left(
        self, right: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray
    ) -> np.ndarray:
        """L <- argmin of Eq. 16 with R fixed (by transposition symmetry)."""
        if self.mask_aware:
            return _ridge_by_column(right, m_arr.T, b_arr.T, self.lam)
        return _stacked_solve(right, m_arr.T, self.lam).T

    def _objective(
        self,
        left: np.ndarray,
        right: np.ndarray,
        m_arr: np.ndarray,
        b_arr: np.ndarray,
    ) -> float:
        """Eq. 16: masked fit residual plus Frobenius regularization."""
        residual = np.where(b_arr, left @ right.T - m_arr, 0.0)
        fit = float(np.sum(residual**2))
        reg = float(np.sum(left**2) + np.sum(right**2))
        return fit + self.lam * reg


def _stacked_solve(p_top: np.ndarray, q_top: np.ndarray, lam: float) -> np.ndarray:
    """The pseudocode's ``inverse([P; sqrt(lam) I], [Q; 0])``.

    Solves ``(P^T P + lam I) C = P^T Q`` — the normal equations of the
    stacked (contradictory) system of Eq. 17.
    """
    r = p_top.shape[1]
    gram = p_top.T @ p_top + lam * np.eye(r)
    return np.linalg.solve(gram, p_top.T @ q_top)


def _ridge_by_column(
    factor: np.ndarray, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
) -> np.ndarray:
    """Mask-aware ridge solve for the other factor, column by column.

    For each column ``j`` of ``M``, with ``I`` the observed rows:

        (F_I^T F_I + lam I_r) x_j = F_I^T M_{I,j}

    An entirely unobserved column yields the zero vector (the ridge term
    keeps the system non-singular).
    """
    m, r = factor.shape
    n = m_arr.shape[1]
    out = np.zeros((n, r))
    eye = lam * np.eye(r)
    for j in range(n):
        rows = b_arr[:, j]
        if not rows.any():
            continue
        f = factor[rows]
        gram = f.T @ f + eye
        out[j] = np.linalg.solve(gram, f.T @ m_arr[rows, j])
    return out
