"""Traffic matrix construction from segment sets (Section 4.5).

The paper studies how the choice of segments forming the TCM affects the
estimation quality of one target segment ``r0``, comparing five sets:

* **Set 1** — six segments directly connected to ``r0``;
* **Set 2** — 18 segments within two blocks, excluding the directly
  connected ones;
* **Set 3** — 45 segments randomly drawn from the rest of the network
  (outside Sets 1-2);
* **Set 4** — six segments randomly drawn from Set 2;
* **Set 5** — six segments randomly drawn from Set 3's candidate pool.

Every set additionally contains ``r0`` itself.  The finding: with small
fixed-size sets the segment choice barely matters, but larger matrices
expose more hidden structure and widen the compressive-sensing
algorithm's advantage — hence the adaptive-construction future-work
item, which :meth:`SegmentSetBuilder.best_by_validation` implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.completion import CompressiveSensingCompleter
from repro.core.tcm import TrafficConditionMatrix
from repro.metrics.errors import nmae
from repro.roadnet.network import RoadNetwork
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SegmentSet:
    """A named set of segments (always containing the anchor)."""

    name: str
    anchor: int
    segment_ids: List[int]

    def __post_init__(self) -> None:
        if self.anchor not in self.segment_ids:
            raise ValueError("segment set must contain its anchor")
        if len(set(self.segment_ids)) != len(self.segment_ids):
            raise ValueError("segment set contains duplicates")

    @property
    def size(self) -> int:
        return len(self.segment_ids)


class SegmentSetBuilder:
    """Builds TCM segment sets around an anchor segment.

    Parameters
    ----------
    network:
        Provides adjacency and hop neighbourhoods.
    anchor:
        The target segment ``r0`` whose estimation quality is studied.
    """

    def __init__(self, network: RoadNetwork, anchor: int) -> None:
        if anchor not in set(network.segment_ids):
            raise ValueError(f"anchor segment {anchor} not in network")
        self.network = network
        self.anchor = anchor

    def directly_connected(self, count: int = 6, seed: SeedLike = None) -> SegmentSet:
        """Paper's Set 1: segments directly connected with the anchor."""
        rng = ensure_rng(seed)
        adjacent = sorted(self.network.adjacent_segments(self.anchor))
        if len(adjacent) > count:
            adjacent = list(rng.choice(adjacent, size=count, replace=False))
        return SegmentSet(
            "set1-connected", self.anchor, [self.anchor] + [int(s) for s in adjacent]
        )

    def within_blocks(
        self, hops: int = 2, count: int = 18, seed: SeedLike = None
    ) -> SegmentSet:
        """Paper's Set 2: within ``hops`` blocks, excluding direct neighbours."""
        rng = ensure_rng(seed)
        near = self.network.segments_within_hops(self.anchor, hops)
        near -= self.network.adjacent_segments(self.anchor)
        near.discard(self.anchor)
        pool = sorted(near)
        if len(pool) > count:
            pool = list(rng.choice(pool, size=count, replace=False))
        return SegmentSet(
            "set2-two-blocks", self.anchor, [self.anchor] + [int(s) for s in pool]
        )

    def random_remote(
        self, count: int = 45, hops_excluded: int = 2, seed: SeedLike = None
    ) -> SegmentSet:
        """Paper's Set 3: random segments outside the 2-block neighbourhood."""
        rng = ensure_rng(seed)
        excluded = self.network.segments_within_hops(self.anchor, hops_excluded)
        excluded.add(self.anchor)
        pool = sorted(set(self.network.segment_ids) - excluded)
        if len(pool) < count:
            raise ValueError(
                f"only {len(pool)} remote segments available, need {count}"
            )
        chosen = rng.choice(pool, size=count, replace=False)
        return SegmentSet(
            "set3-random-remote",
            self.anchor,
            [self.anchor] + sorted(int(s) for s in chosen),
        )

    def subsample(
        self, base: SegmentSet, count: int, name: str, seed: SeedLike = None
    ) -> SegmentSet:
        """Paper's Sets 4/5: random subsets of a larger set (anchor kept)."""
        rng = ensure_rng(seed)
        pool = [s for s in base.segment_ids if s != self.anchor]
        if len(pool) < count:
            raise ValueError(f"cannot draw {count} from a pool of {len(pool)}")
        chosen = rng.choice(pool, size=count, replace=False)
        return SegmentSet(
            name, self.anchor, [self.anchor] + sorted(int(s) for s in chosen)
        )

    # ------------------------------------------------------------------
    def best_by_validation(
        self,
        tcm: TrafficConditionMatrix,
        candidates: Sequence[SegmentSet],
        completer: Optional[CompressiveSensingCompleter] = None,
        validation_fraction: float = 0.25,
        seed: SeedLike = None,
    ) -> Dict[str, float]:
        """Adaptive construction: score candidate sets by validation NMAE.

        For each candidate set, hides a fraction of the anchor column's
        observed cells, completes the sub-TCM, and scores the hidden
        cells.  Returns ``{set name: validation NMAE}``; pick the min.
        This operationalizes the paper's future-work item of finding "the
        best way for constructing adaptive measurement matrices".
        """
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        rng = ensure_rng(seed)
        completer = completer or CompressiveSensingCompleter(seed=rng)
        scores: Dict[str, float] = {}
        for cand in candidates:
            sub = tcm.select_segments(cand.segment_ids)
            anchor_col = sub.column_of(self.anchor)
            mask = sub.mask
            observed_rows = np.flatnonzero(mask[:, anchor_col])
            if observed_rows.size < 4:
                scores[cand.name] = float("nan")
                continue
            k = max(1, int(round(observed_rows.size * validation_fraction)))
            hidden = rng.choice(observed_rows, size=k, replace=False)
            train_mask = mask.copy()
            train_mask[hidden, anchor_col] = False
            result = completer.complete(
                np.where(train_mask, sub.values, 0.0), train_mask
            )
            val_mask = np.zeros_like(mask)
            val_mask[hidden, anchor_col] = True
            scores[cand.name] = nmae(sub.values, result.estimate, val_mask)
        return scores


def build_paper_sets(
    network: RoadNetwork, anchor: int, seed: SeedLike = None
) -> List[SegmentSet]:
    """Construct the paper's five Section-4.5 sets around ``anchor``.

    Set sizes follow the paper (6 / 18 / 45 / 6 / 6) but clamp to what a
    smaller network can supply so the construction works on any graph.
    """
    rng = ensure_rng(seed)
    builder = SegmentSetBuilder(network, anchor)
    set1 = builder.directly_connected(count=6, seed=rng)
    set2 = builder.within_blocks(hops=2, count=18, seed=rng)
    near = network.segments_within_hops(anchor, 2)
    remote_pool = len(set(network.segment_ids) - near - {anchor})
    set3 = builder.random_remote(count=min(45, max(7, remote_pool)), seed=rng)
    set4 = builder.subsample(set2, count=min(6, set2.size - 1), name="set4-sub-two-blocks", seed=rng)
    set5 = builder.subsample(set3, count=6, name="set5-sub-remote", seed=rng)
    return [set1, set2, set3, set4, set5]
