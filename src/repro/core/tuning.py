"""Algorithm 2: genetic search for the optimal (rank bound, lambda).

Section 3.4: the estimation quality is an *invisible* function
``f(r, lambda)`` of the two parameters of Algorithm 1, so the paper
tunes them with a real-coded genetic algorithm — no analytical form of
the objective is needed; estimate errors serve as fitness.

Fitness evaluation: a fraction of the *observed* cells is hidden as a
validation set, Algorithm 1 runs on the remainder, and the candidate's
fitness is the NMAE on the hidden cells.  (The true missing cells have
no ground truth at tuning time, so validation must come from the
observations — this matches how the paper can run Algorithm 2 "once for
a given set of road segments" in deployment.)

GA structure follows the pseudocode: random uniform initialization
within the parameter bounds; per generation an elite *selection*, a
*crossover* group bred by roulette-wheel parent choice, and a *mutation*
group where one gene is reset to a random value in its domain;
termination after a fixed number of generations or on fitness stall.
``lambda`` is searched in log space (its useful range spans six decades,
Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.completion import CompressiveSensingCompleter
from repro.core.tcm import TrafficConditionMatrix
from repro.metrics.errors import nmae
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_matrix_pair


@dataclass(frozen=True)
class Candidate:
    """One GA individual: a (rank, lambda) pair with its fitness (NMAE)."""

    rank: int
    lam: float
    fitness: float


@dataclass(frozen=True)
class TuningResult:
    """Output of Algorithm 2.

    Attributes
    ----------
    rank, lam:
        The best parameters found.
    fitness:
        Validation NMAE of the best individual (lower is better).
    generations_run:
        Number of generations actually executed.
    history:
        Best fitness after each generation.
    population:
        Final population, best first.
    """

    rank: int
    lam: float
    fitness: float
    generations_run: int
    history: List[float]
    population: List[Candidate]


class GeneticTuner:
    """Genetic search over Algorithm 1's (r, lambda).

    Parameters
    ----------
    rank_bounds:
        Inclusive (low, high) for the rank bound; the paper sets the low
        bound to 1 and the high bound via Eq. 18 (min(m, n)); callers
        usually cap it far lower.
    lam_bounds:
        (low, high) for lambda, searched in log space.
    population_size:
        Individuals per generation.
    generations:
        Maximum generations (fixed-iteration termination, as the paper
        adopts).
    elite_fraction, crossover_fraction:
        Composition of the next generation; the remainder is mutants.
    validation_fraction:
        Share of observed cells hidden for fitness evaluation.
    stall_generations:
        Early stop after this many generations without improvement
        (``None`` disables; the pseudocode's ``stall(fitness)``).
    completer_iterations:
        ALS sweeps per fitness evaluation (kept below the paper's 100
        because tuning runs Algorithm 1 population x generations times).
    seed:
        Master random stream.
    """

    def __init__(
        self,
        rank_bounds: Tuple[int, int] = (1, 32),
        lam_bounds: Tuple[float, float] = (1e-3, 2e3),
        population_size: int = 12,
        generations: int = 8,
        elite_fraction: float = 0.25,
        crossover_fraction: float = 0.5,
        validation_fraction: float = 0.25,
        stall_generations: Optional[int] = 4,
        completer_iterations: int = 30,
        mask_aware: bool = True,
        seed: SeedLike = None,
    ) -> None:
        lo_r, hi_r = rank_bounds
        if lo_r < 1 or hi_r < lo_r:
            raise ValueError(f"invalid rank_bounds {rank_bounds}")
        lo_l, hi_l = lam_bounds
        if lo_l <= 0 or hi_l < lo_l:
            raise ValueError(f"invalid lam_bounds {lam_bounds}")
        if population_size < 3:
            raise ValueError("population_size must be >= 3")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        check_fraction(elite_fraction, "elite_fraction")
        check_fraction(crossover_fraction, "crossover_fraction")
        if elite_fraction + crossover_fraction > 1.0:
            raise ValueError("elite_fraction + crossover_fraction must be <= 1")
        check_fraction(validation_fraction, "validation_fraction")
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        if stall_generations is not None and stall_generations < 1:
            raise ValueError("stall_generations must be >= 1 or None")
        self.rank_bounds = (int(lo_r), int(hi_r))
        self.lam_bounds = (float(lo_l), float(hi_l))
        self.population_size = population_size
        self.generations = generations
        self.elite_fraction = elite_fraction
        self.crossover_fraction = crossover_fraction
        self.validation_fraction = validation_fraction
        self.stall_generations = stall_generations
        self.completer_iterations = completer_iterations
        self.mask_aware = mask_aware
        self._seed = seed

    # ------------------------------------------------------------------
    def tune(
        self,
        measurements: Union[TrafficConditionMatrix, np.ndarray],
        mask: Optional[np.ndarray] = None,
    ) -> TuningResult:
        """Run the GA on a measurement matrix; returns the best (r, lambda)."""
        if isinstance(measurements, TrafficConditionMatrix):
            if mask is not None:
                raise ValueError("mask is implied by the TrafficConditionMatrix")
            m_arr, b_arr = measurements.values, measurements.mask
        else:
            if mask is None:
                raise ValueError("mask required when passing a raw array")
            m_arr, b_arr = check_matrix_pair(measurements, mask)
        rng = ensure_rng(self._seed)

        train_mask, val_mask = self._split_validation(b_arr, rng)
        if not val_mask.any() or not train_mask.any():
            raise ValueError("too few observed entries to build a validation split")
        train_m = np.where(train_mask, m_arr, 0.0)

        max_rank = min(self.rank_bounds[1], min(m_arr.shape))
        min_rank = min(self.rank_bounds[0], max_rank)

        def evaluate(rank: int, lam: float) -> float:
            completer = CompressiveSensingCompleter(
                rank=rank,
                lam=lam,
                iterations=self.completer_iterations,
                mask_aware=self.mask_aware,
                seed=int(rng.integers(0, 2**63 - 1)),
            )
            result = completer.complete(train_m, train_mask)
            return nmae(m_arr, result.estimate, val_mask)

        # 1) Initialization: uniform in rank, log-uniform in lambda.
        population = [
            self._random_candidate(min_rank, max_rank, rng, evaluate)
            for _ in range(self.population_size)
        ]
        population.sort(key=lambda c: c.fitness)

        history: List[float] = []
        best = population[0]
        stall = 0
        generations_run = 0

        for _ in range(self.generations):
            generations_run += 1
            population = self._next_generation(
                population, min_rank, max_rank, rng, evaluate
            )
            population.sort(key=lambda c: c.fitness)
            history.append(population[0].fitness)
            if population[0].fitness < best.fitness - 1e-9:
                best = population[0]
                stall = 0
            else:
                stall += 1
                if (
                    self.stall_generations is not None
                    and stall >= self.stall_generations
                ):
                    break

        return TuningResult(
            rank=best.rank,
            lam=best.lam,
            fitness=best.fitness,
            generations_run=generations_run,
            history=history,
            population=population,
        )

    # ------------------------------------------------------------------
    def _split_validation(
        self, b_arr: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Hide ``validation_fraction`` of observed cells for fitness."""
        observed = np.argwhere(b_arr)
        k = max(1, int(round(len(observed) * self.validation_fraction)))
        k = min(k, len(observed) - 1) if len(observed) > 1 else 0
        chosen = observed[rng.choice(len(observed), size=k, replace=False)]
        val_mask = np.zeros_like(b_arr)
        val_mask[chosen[:, 0], chosen[:, 1]] = True
        return b_arr & ~val_mask, val_mask

    def _random_candidate(self, min_rank, max_rank, rng, evaluate) -> Candidate:
        rank = int(rng.integers(min_rank, max_rank + 1))
        lam = self._random_lam(rng)
        return Candidate(rank, lam, evaluate(rank, lam))

    def _random_lam(self, rng: np.random.Generator) -> float:
        lo, hi = np.log(self.lam_bounds[0]), np.log(self.lam_bounds[1])
        return float(np.exp(rng.uniform(lo, hi)))

    def _roulette_pick(
        self, population: List[Candidate], rng: np.random.Generator
    ) -> Candidate:
        """Roulette-wheel selection; lower NMAE -> higher weight."""
        fitness = np.array([c.fitness for c in population])
        fitness = np.where(np.isfinite(fitness), fitness, fitness[np.isfinite(fitness)].max() if np.isfinite(fitness).any() else 1.0)
        weights = 1.0 / (fitness + 1e-6)
        weights /= weights.sum()
        return population[int(rng.choice(len(population), p=weights))]

    def _next_generation(
        self, population, min_rank, max_rank, rng, evaluate
    ) -> List[Candidate]:
        n_elite = max(1, int(round(self.population_size * self.elite_fraction)))
        n_cross = int(round(self.population_size * self.crossover_fraction))
        n_mut = self.population_size - n_elite - n_cross

        next_pop: List[Candidate] = list(population[:n_elite])

        # Crossover: child takes one gene from each parent.
        for _ in range(n_cross):
            a = self._roulette_pick(population, rng)
            b = self._roulette_pick(population, rng)
            if rng.random() < 0.5:
                rank, lam = a.rank, b.lam
            else:
                rank, lam = b.rank, a.lam
            rank = int(np.clip(rank, min_rank, max_rank))
            next_pop.append(Candidate(rank, lam, evaluate(rank, lam)))

        # Mutation: reset one gene of a selected parent to a random value.
        for _ in range(max(0, n_mut)):
            parent = self._roulette_pick(population, rng)
            if rng.random() < 0.5:
                rank = int(rng.integers(min_rank, max_rank + 1))
                lam = parent.lam
            else:
                rank = parent.rank
                lam = self._random_lam(rng)
            next_pop.append(Candidate(rank, lam, evaluate(rank, lam)))

        return next_pop
