"""Algorithm 2: genetic search for the optimal (rank bound, lambda).

Section 3.4: the estimation quality is an *invisible* function
``f(r, lambda)`` of the two parameters of Algorithm 1, so the paper
tunes them with a real-coded genetic algorithm — no analytical form of
the objective is needed; estimate errors serve as fitness.

Fitness evaluation: a fraction of the *observed* cells is hidden as a
validation set, Algorithm 1 runs on the remainder, and the candidate's
fitness is the NMAE on the hidden cells.  (The true missing cells have
no ground truth at tuning time, so validation must come from the
observations — this matches how the paper can run Algorithm 2 "once for
a given set of road segments" in deployment.)

GA structure follows the pseudocode: random uniform initialization
within the parameter bounds; per generation an elite *selection*, a
*crossover* group bred by roulette-wheel parent choice, and a *mutation*
group where one gene is reset to a random value in its domain;
termination after a fixed number of generations or on fitness stall.
``lambda`` is searched in log space (its useful range spans six decades,
Figure 16).

Fitness is the hot path — Algorithm 1 runs once per individual per
generation — so two optimizations apply:

* **Memoization** on the quantized ``(rank, log10 lambda)`` genome:
  elite selection and crossover routinely re-breed individuals the GA
  has already scored, and a cache hit skips the whole ALS run.  Stats
  land in :attr:`TuningResult.cache_stats`.
* **Parallel evaluation**: each generation's new genomes are created
  (and their completer seeds drawn) serially from the master stream,
  then scored concurrently via :func:`repro.utils.parallel.parallel_map`
  when ``max_workers`` is set.  Results are bit-identical to the serial
  order because every random decision precedes the fan-out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.completion import CompressiveSensingCompleter, DTypeLike
from repro.core.tcm import TrafficConditionMatrix
from repro.metrics.errors import nmae
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.parallel import parallel_map
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_matrix_pair

# Quantization of log10(lambda) for fitness-memoization keys: two
# lambdas within ~2e-6 relative of each other are the same genome for
# caching purposes (far finer than the GA's search resolution).
_LOG_LAM_QUANTUM = 1e-6


@dataclass(frozen=True)
class Candidate:
    """One GA individual: a (rank, lambda) pair with its fitness (NMAE)."""

    rank: int
    lam: float
    fitness: float


@dataclass(frozen=True)
class FitnessCacheStats:
    """Fitness-memoization counters for one :meth:`GeneticTuner.tune` run.

    Attributes
    ----------
    evaluations:
        Algorithm 1 runs actually performed.
    hits:
        Individuals whose fitness was served from the genome cache.
    """

    evaluations: int
    hits: int

    @property
    def requested(self) -> int:
        """Total fitness lookups (evaluations + hits)."""
        return self.evaluations + self.hits


@dataclass(frozen=True)
class TuningResult:
    """Output of Algorithm 2.

    Attributes
    ----------
    rank, lam:
        The best parameters found.
    fitness:
        Validation NMAE of the best individual (lower is better).
    generations_run:
        Number of generations actually executed.
    history:
        Best fitness after each generation.
    population:
        Final population, best first.
    cache_stats:
        Fitness memoization counters (``None`` on results built by
        legacy callers).
    """

    rank: int
    lam: float
    fitness: float
    generations_run: int
    history: List[float]
    population: List[Candidate]
    cache_stats: Optional[FitnessCacheStats] = None


@dataclass(frozen=True)
class _FitnessTask:
    """Everything one fitness evaluation needs, prepared up front.

    Module-level and fully self-contained so the evaluation function is
    picklable and the task can be dispatched to any
    :func:`repro.utils.parallel.parallel_map` backend.
    """

    rank: int
    lam: float
    seed: int
    train_m: np.ndarray
    train_mask: np.ndarray
    values: np.ndarray
    val_mask: np.ndarray
    iterations: int
    mask_aware: bool
    solver: str
    backend: str = "numpy"
    dtype: DTypeLike = None


def _evaluate_fitness(task: _FitnessTask) -> float:
    """Run Algorithm 1 for one genome; NMAE on the hidden validation cells."""
    completer = CompressiveSensingCompleter(
        rank=task.rank,
        lam=task.lam,
        iterations=task.iterations,
        mask_aware=task.mask_aware,
        solver=task.solver,
        backend=task.backend,
        dtype=task.dtype,
        seed=task.seed,
    )
    result = completer.complete(task.train_m, task.train_mask)
    return nmae(task.values, result.estimate, task.val_mask)


def _genome_key(rank: int, lam: float) -> Tuple[int, int]:
    """Memoization key: the quantized (rank, log10 lambda) genome."""
    return rank, int(round(math.log10(lam) / _LOG_LAM_QUANTUM))


@dataclass
class _EvalSession:
    """Per-``tune()`` evaluation state: data split, cache, counters."""

    train_m: np.ndarray
    train_mask: np.ndarray
    values: np.ndarray
    val_mask: np.ndarray
    cache: Dict[Tuple[int, int], float] = field(default_factory=dict)
    evaluations: int = 0
    hits: int = 0

    def stats(self) -> FitnessCacheStats:
        return FitnessCacheStats(evaluations=self.evaluations, hits=self.hits)


class GeneticTuner:
    """Genetic search over Algorithm 1's (r, lambda).

    Parameters
    ----------
    rank_bounds:
        Inclusive (low, high) for the rank bound; the paper sets the low
        bound to 1 and the high bound via Eq. 18 (min(m, n)); callers
        usually cap it far lower.
    lam_bounds:
        (low, high) for lambda, searched in log space.
    population_size:
        Individuals per generation.
    generations:
        Maximum generations (fixed-iteration termination, as the paper
        adopts).
    elite_fraction, crossover_fraction:
        Composition of the next generation; the remainder is mutants.
    validation_fraction:
        Share of observed cells hidden for fitness evaluation.
    stall_generations:
        Early stop after this many generations without improvement
        (``None`` disables; the pseudocode's ``stall(fitness)``).
    completer_iterations:
        ALS sweeps per fitness evaluation (kept below the paper's 100
        because tuning runs Algorithm 1 population x generations times).
    solver:
        Inner solver handed to Algorithm 1 for fitness runs (see
        :class:`CompressiveSensingCompleter`).
    backend, dtype:
        Solver backend and working dtype for the fitness completions
        (a float32 workspace backend makes tuning — population x
        generations ALS runs — proportionally cheaper).
    max_workers:
        Evaluate each generation's genomes on a thread pool of this
        size (``None``/``1`` = serial; results identical either way).
    seed:
        Master random stream.
    """

    def __init__(
        self,
        rank_bounds: Tuple[int, int] = (1, 32),
        lam_bounds: Tuple[float, float] = (1e-3, 2e3),
        population_size: int = 12,
        generations: int = 8,
        elite_fraction: float = 0.25,
        crossover_fraction: float = 0.5,
        validation_fraction: float = 0.25,
        stall_generations: Optional[int] = 4,
        completer_iterations: int = 30,
        mask_aware: bool = True,
        solver: str = "batched",
        backend: str = "numpy",
        dtype: DTypeLike = None,
        max_workers: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        lo_r, hi_r = rank_bounds
        if lo_r < 1 or hi_r < lo_r:
            raise ValueError(f"invalid rank_bounds {rank_bounds}")
        lo_l, hi_l = lam_bounds
        if lo_l <= 0 or hi_l < lo_l:
            raise ValueError(f"invalid lam_bounds {lam_bounds}")
        if population_size < 3:
            raise ValueError("population_size must be >= 3")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        check_fraction(elite_fraction, "elite_fraction")
        check_fraction(crossover_fraction, "crossover_fraction")
        if elite_fraction + crossover_fraction > 1.0:
            raise ValueError("elite_fraction + crossover_fraction must be <= 1")
        check_fraction(validation_fraction, "validation_fraction")
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        if stall_generations is not None and stall_generations < 1:
            raise ValueError("stall_generations must be >= 1 or None")
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
        self.rank_bounds = (int(lo_r), int(hi_r))
        self.lam_bounds = (float(lo_l), float(hi_l))
        self.population_size = population_size
        self.generations = generations
        self.elite_fraction = elite_fraction
        self.crossover_fraction = crossover_fraction
        self.validation_fraction = validation_fraction
        self.stall_generations = stall_generations
        self.completer_iterations = completer_iterations
        self.mask_aware = mask_aware
        self.solver = solver
        self.backend = backend
        self.dtype = dtype
        # Fail fast on unknown/unavailable backend or unsupported dtype.
        CompressiveSensingCompleter(
            rank=1,
            lam=1.0,
            iterations=1,
            mask_aware=mask_aware,
            backend=backend,
            dtype=dtype,
        )
        self.max_workers = max_workers
        self._seed = seed

    # ------------------------------------------------------------------
    def tune(
        self,
        measurements: Union[TrafficConditionMatrix, np.ndarray],
        mask: Optional[np.ndarray] = None,
    ) -> TuningResult:
        """Run the GA on a measurement matrix; returns the best (r, lambda)."""
        if isinstance(measurements, TrafficConditionMatrix):
            if mask is not None:
                raise ValueError("mask is implied by the TrafficConditionMatrix")
            m_arr, b_arr = measurements.values, measurements.mask
        else:
            if mask is None:
                raise ValueError("mask required when passing a raw array")
            m_arr, b_arr = check_matrix_pair(measurements, mask)
        rng = ensure_rng(self._seed)

        train_mask, val_mask = self._split_validation(b_arr, rng)
        if not val_mask.any() or not train_mask.any():
            raise ValueError("too few observed entries to build a validation split")
        session = _EvalSession(
            train_m=np.where(train_mask, m_arr, 0.0),
            train_mask=train_mask,
            values=m_arr,
            val_mask=val_mask,
        )

        max_rank = min(self.rank_bounds[1], min(m_arr.shape))
        min_rank = min(self.rank_bounds[0], max_rank)

        with obs_trace.span(
            "ga.tune",
            population=self.population_size,
            generations=self.generations,
        ):
            # 1) Initialization: uniform in rank, log-uniform in lambda.
            genomes = [
                self._random_genome(min_rank, max_rank, rng)
                for _ in range(self.population_size)
            ]
            with obs_trace.span("ga.generation", index=0):
                population = self._evaluate_batch(genomes, session)
            population.sort(key=lambda c: c.fitness)

            history: List[float] = []
            best = population[0]
            stall = 0
            generations_run = 0

            for _ in range(self.generations):
                generations_run += 1
                with obs_trace.span("ga.generation", index=generations_run):
                    population = self._next_generation(
                        population, min_rank, max_rank, rng, session
                    )
                population.sort(key=lambda c: c.fitness)
                history.append(population[0].fitness)
                if population[0].fitness < best.fitness - 1e-9:
                    best = population[0]
                    stall = 0
                else:
                    stall += 1
                    if (
                        self.stall_generations is not None
                        and stall >= self.stall_generations
                    ):
                        break

        if obs_trace.enabled():
            obs_metrics.observe("ga.generations_run", generations_run)
            obs_metrics.observe("ga.best_fitness", best.fitness)
        return TuningResult(
            rank=best.rank,
            lam=best.lam,
            fitness=best.fitness,
            generations_run=generations_run,
            history=history,
            population=population,
            cache_stats=session.stats(),
        )

    # ------------------------------------------------------------------
    def _split_validation(
        self, b_arr: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Hide ``validation_fraction`` of observed cells for fitness."""
        observed = np.argwhere(b_arr)
        k = max(1, int(round(len(observed) * self.validation_fraction)))
        k = min(k, len(observed) - 1) if len(observed) > 1 else 0
        chosen = observed[rng.choice(len(observed), size=k, replace=False)]
        val_mask = np.zeros_like(b_arr)
        val_mask[chosen[:, 0], chosen[:, 1]] = True
        return b_arr & ~val_mask, val_mask

    # ------------------------------------------------------------------
    # Fitness evaluation (memoized, optionally parallel)
    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, genomes: List[Tuple[int, float, int]], session: _EvalSession
    ) -> List[Candidate]:
        """Score ``(rank, lam, seed)`` genomes; cache by quantized genome.

        Duplicate genomes within the batch and across generations share
        one Algorithm 1 run (the first occurrence's seed).  The novel
        genomes are evaluated via :func:`parallel_map` — every random
        decision was already made when the genome list was built, so the
        fan-out cannot change results.
        """
        keys = [_genome_key(rank, lam) for rank, lam, _ in genomes]
        fresh: Dict[Tuple[int, int], _FitnessTask] = {}
        for (rank, lam, seed), key in zip(genomes, keys):
            if key not in session.cache and key not in fresh:
                fresh[key] = _FitnessTask(
                    rank=rank,
                    lam=lam,
                    seed=seed,
                    train_m=session.train_m,
                    train_mask=session.train_mask,
                    values=session.values,
                    val_mask=session.val_mask,
                    iterations=self.completer_iterations,
                    mask_aware=self.mask_aware,
                    solver=self.solver,
                    backend=self.backend,
                    dtype=self.dtype,
                )
        tasks = list(fresh.values())
        fitnesses = parallel_map(
            _evaluate_fitness,
            tasks,
            max_workers=self.max_workers,
            backend="thread",
            span_name="ga.fitness",
        )
        for task, fitness in zip(tasks, fitnesses):
            session.cache[_genome_key(task.rank, task.lam)] = fitness
        session.evaluations += len(tasks)
        session.hits += len(genomes) - len(tasks)
        if obs_trace.enabled():
            obs_metrics.inc("ga.evaluations", len(tasks))
            obs_metrics.inc("ga.cache.hits", len(genomes) - len(tasks))
        return [
            Candidate(rank, lam, session.cache[key])
            for (rank, lam, _), key in zip(genomes, keys)
        ]

    def _random_genome(
        self, min_rank: int, max_rank: int, rng: np.random.Generator
    ) -> Tuple[int, float, int]:
        rank = int(rng.integers(min_rank, max_rank + 1))
        lam = self._random_lam(rng)
        return rank, lam, int(rng.integers(0, 2**63 - 1))

    def _random_lam(self, rng: np.random.Generator) -> float:
        lo, hi = np.log(self.lam_bounds[0]), np.log(self.lam_bounds[1])
        return float(np.exp(rng.uniform(lo, hi)))

    def _roulette_pick(
        self, population: List[Candidate], rng: np.random.Generator
    ) -> Candidate:
        """Roulette-wheel selection; lower NMAE -> higher weight."""
        fitness = np.array([c.fitness for c in population])
        fitness = np.where(
            np.isfinite(fitness),
            fitness,
            fitness[np.isfinite(fitness)].max() if np.isfinite(fitness).any() else 1.0,
        )
        weights = 1.0 / (fitness + 1e-6)
        weights /= weights.sum()
        return population[int(rng.choice(len(population), p=weights))]

    def _next_generation(
        self,
        population: List[Candidate],
        min_rank: int,
        max_rank: int,
        rng: np.random.Generator,
        session: _EvalSession,
    ) -> List[Candidate]:
        """Elites carried over; crossover/mutation genomes bred serially,
        then scored as one (memoized, optionally parallel) batch."""
        n_elite = max(1, int(round(self.population_size * self.elite_fraction)))
        n_cross = int(round(self.population_size * self.crossover_fraction))
        n_mut = self.population_size - n_elite - n_cross

        genomes: List[Tuple[int, float, int]] = []

        # Crossover: child takes one gene from each parent.
        for _ in range(n_cross):
            a = self._roulette_pick(population, rng)
            b = self._roulette_pick(population, rng)
            if rng.random() < 0.5:
                rank, lam = a.rank, b.lam
            else:
                rank, lam = b.rank, a.lam
            rank = int(np.clip(rank, min_rank, max_rank))
            genomes.append((rank, lam, int(rng.integers(0, 2**63 - 1))))

        # Mutation: reset one gene of a selected parent to a random value.
        for _ in range(max(0, n_mut)):
            parent = self._roulette_pick(population, rng)
            if rng.random() < 0.5:
                rank = int(rng.integers(min_rank, max_rank + 1))
                lam = parent.lam
            else:
                rank = parent.rank
                lam = self._random_lam(rng)
            genomes.append((rank, lam, int(rng.integers(0, 2**63 - 1))))

        return list(population[:n_elite]) + self._evaluate_batch(genomes, session)
