"""Online anomaly detection over the streaming estimator.

Combines the paper's two extensions: as each slot closes, the live
(sliding-window) completion provides the "expected" traffic state; the
monitor standardizes each segment's deviation between its *observed*
average speed and a seasonal expectation learned online, and raises an
alert when a segment runs anomalously slow.

The expectation is an exponentially-weighted per-(segment, slot-of-day)
mean — a streaming analogue of the low-rank baseline the offline
:class:`ResidualAnomalyDetector` uses — so the detector needs no
training pass and adapts as the city drifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.streaming import SlotEstimate
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class OnlineAlert:
    """One live anomaly alert.

    Attributes
    ----------
    slot_start_s:
        Wall-clock start of the slot that triggered the alert.
    segment_id:
        The anomalous segment.
    z_score:
        Standardized slowdown (positive = slower than expected).
    observed_kmh, expected_kmh:
        The offending observation and its seasonal expectation.
    """

    slot_start_s: float
    segment_id: int
    z_score: float
    observed_kmh: float
    expected_kmh: float


class OnlineAnomalyMonitor:
    """Streaming per-segment slowdown detector.

    Feed it each :class:`SlotEstimate` the streaming estimator
    publishes; it returns the alerts for that slot.

    Parameters
    ----------
    segment_ids:
        Tracked segments (must match the estimator's column order).
    slot_s:
        Slot length in seconds; with ``slots_per_day`` it maps each
        estimate's ``slot_start_s`` to its slot-of-day bucket, so gaps
        in the stream do not shift the seasonality.
    slots_per_day:
        Slot-of-day seasonality period (e.g. 48 for 30-minute slots).
    alpha:
        EWMA learning rate for the seasonal mean/variance.
    threshold_sigmas:
        Alert when the slowdown exceeds this many (robust) deviations.
    warmup_days:
        Suppress alerts until each slot-of-day bucket has seen at least
        this many observations (the seasonal mean is meaningless before).
    """

    def __init__(
        self,
        segment_ids: Sequence[int],
        slot_s: float,
        slots_per_day: int,
        alpha: float = 0.25,
        threshold_sigmas: float = 3.5,
        warmup_days: int = 1,
    ) -> None:
        check_positive(slot_s, "slot_s")
        if slots_per_day < 1:
            raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
        check_fraction(alpha, "alpha")
        # check_fraction guarantees alpha >= 0, so <= 0 rejects exactly
        # the degenerate no-update EMA without a float == comparison.
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        check_positive(threshold_sigmas, "threshold_sigmas")
        if warmup_days < 0:
            raise ValueError("warmup_days must be >= 0")
        self.segment_ids = [int(s) for s in segment_ids]
        self.slot_s = slot_s
        self.slots_per_day = slots_per_day
        self.alpha = alpha
        self.threshold_sigmas = threshold_sigmas
        self.warmup_days = warmup_days

        n = len(self.segment_ids)
        self._mean = np.zeros((slots_per_day, n))
        self._var = np.zeros((slots_per_day, n))
        self._count = np.zeros((slots_per_day, n), dtype=np.int64)
        self.alerts: List[OnlineAlert] = []

    def observe(self, estimate: SlotEstimate) -> List[OnlineAlert]:
        """Ingest one closed slot's estimate; return this slot's alerts."""
        speeds = np.asarray(estimate.speeds_kmh, dtype=float)
        if speeds.shape != (len(self.segment_ids),):
            raise ValueError(
                f"expected {len(self.segment_ids)} speeds, got {speeds.shape}"
            )
        bucket = int(round(estimate.slot_start_s / self.slot_s)) % self.slots_per_day

        mean = self._mean[bucket]
        var = self._var[bucket]
        count = self._count[bucket]

        alerts: List[OnlineAlert] = []
        ready = count >= max(1, self.warmup_days)
        std = np.sqrt(np.maximum(var, 1e-6))
        # Slowdown = expectation minus observation (positive = slower).
        z = np.where(ready, (mean - speeds) / std, 0.0)
        for j in np.flatnonzero(z > self.threshold_sigmas):
            alerts.append(
                OnlineAlert(
                    slot_start_s=estimate.slot_start_s,
                    segment_id=self.segment_ids[j],
                    z_score=float(z[j]),
                    observed_kmh=float(speeds[j]),
                    expected_kmh=float(mean[j]),
                )
            )

        # EWMA update (after alerting, so an incident does not instantly
        # poison its own expectation).
        first = count == 0
        delta = speeds - mean
        self._mean[bucket] = np.where(first, speeds, mean + self.alpha * delta)
        self._var[bucket] = np.where(
            first,
            np.maximum((0.15 * np.maximum(speeds, 1.0)) ** 2, 1.0),
            (1 - self.alpha) * (var + self.alpha * delta**2),
        )
        self._count[bucket] = count + 1

        self.alerts.extend(alerts)
        if obs_trace.enabled():
            obs_metrics.inc("anomaly.slots_observed")
            obs_metrics.inc("anomaly.alerts", len(alerts))
        return alerts

    def observe_many(
        self, estimates: Sequence[SlotEstimate]
    ) -> List[OnlineAlert]:
        """Ingest a sequence of closed slots; return all new alerts."""
        out: List[OnlineAlert] = []
        for est in estimates:
            out.extend(self.observe(est))
        return out
