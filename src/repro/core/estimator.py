"""High-level traffic estimation facade.

Ties the pipeline together for library users: probe reports (or a
pre-aggregated measurement TCM) in, a completed TCM estimate out, with
optional genetic parameter tuning.  This is the public entry point the
examples and experiment harness build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.completion import (
    PAPER_ITERATIONS,
    PAPER_LAMBDA,
    PAPER_RANK,
    CompletionResult,
    CompressiveSensingCompleter,
    DTypeLike,
)
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.core.tuning import GeneticTuner, TuningResult
from repro.obs import trace as obs_trace
from repro.probes.aggregation import AggregationConfig, aggregate_reports
from repro.probes.report import ReportBatch
from repro.utils.contracts import shapes
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class EstimationOutput:
    """An estimation run's artifacts.

    Attributes
    ----------
    estimate:
        A *complete* :class:`TrafficConditionMatrix` (all cells filled).
    measurements:
        The partial measurement TCM the estimate was computed from.
    completion:
        The raw Algorithm 1 result (factors, objective trace).
    tuning:
        The Algorithm 2 result when auto-tuning was requested.
    """

    estimate: TrafficConditionMatrix
    measurements: TrafficConditionMatrix
    completion: CompletionResult
    tuning: Optional[TuningResult] = None


class TrafficEstimator:
    """Metropolitan traffic estimation from probe data.

    Parameters
    ----------
    rank, lam, iterations:
        Algorithm 1 parameters (defaults are the paper's tuned values
        r=2, lambda=100, t=100).
    auto_tune:
        Run Algorithm 2 first and use its (r, lambda).  The paper runs
        the tuner "only once for a given set of road segments"; reuse the
        tuned estimator across windows the same way.
    tuner:
        Custom :class:`GeneticTuner` (implies ``auto_tune=True``).
    aggregation:
        Report-to-matrix aggregation settings.
    clip_speeds:
        Clamp estimates into ``[0, max]`` km/h (estimated speeds are
        physical quantities).
    center:
        Complete the matrix around the observed mean speed (on by
        default here: it makes the regularizer shrink toward the mean
        rather than toward zero, which is the robust production choice;
        the raw :class:`CompressiveSensingCompleter` default stays
        paper-literal).
    solver:
        Algorithm 1 inner solver (``"batched"``/``"grouped"``/``"loop"``,
        see :class:`CompressiveSensingCompleter`).
    backend, dtype:
        Solver backend (``repro.core.backends``) and working dtype,
        forwarded to the completer and, when the tuner is created here,
        to Algorithm 2 fitness evaluation.
    max_workers:
        Worker-pool size forwarded to Algorithm 1 restarts and (when the
        tuner is created here) Algorithm 2 fitness evaluation.
    seed:
        Seeds Algorithm 1's random init (and the tuner if created here).
    """

    def __init__(
        self,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        iterations: int = PAPER_ITERATIONS,
        auto_tune: bool = False,
        tuner: Optional[GeneticTuner] = None,
        aggregation: Optional[AggregationConfig] = None,
        clip_speeds: bool = True,
        max_speed_kmh: float = 150.0,
        mask_aware: bool = True,
        center: bool = True,
        solver: str = "batched",
        backend: str = "numpy",
        dtype: DTypeLike = None,
        max_workers: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.rank = rank
        self.lam = lam
        self.iterations = iterations
        self.auto_tune = auto_tune or tuner is not None
        self._tuner = tuner
        self.aggregation = aggregation or AggregationConfig()
        self.clip_speeds = clip_speeds
        self.max_speed_kmh = max_speed_kmh
        self.mask_aware = mask_aware
        self.center = center
        self.solver = solver
        self.backend = backend
        self.dtype = dtype
        self.max_workers = max_workers
        self._seed = seed
        self.last_tuning: Optional[TuningResult] = None

    # ------------------------------------------------------------------
    def aggregate(
        self,
        reports: ReportBatch,
        grid: TimeGrid,
        segment_ids: Sequence[int],
    ) -> TrafficConditionMatrix:
        """Turn probe reports into the measurement TCM."""
        return aggregate_reports(reports, grid, segment_ids, self.aggregation)

    @shapes(ReportBatch, TimeGrid)
    def estimate_from_reports(
        self,
        reports: ReportBatch,
        grid: TimeGrid,
        segment_ids: Sequence[int],
    ) -> EstimationOutput:
        """Full pipeline: aggregate reports, then complete the matrix."""
        with obs_trace.span(
            "estimate.from_reports", reports=int(reports.times_s.size)
        ):
            measurements = self.aggregate(reports, grid, segment_ids)
            return self.estimate(measurements)

    @shapes(TrafficConditionMatrix)
    def estimate(self, measurements: TrafficConditionMatrix) -> EstimationOutput:
        """Complete a measurement TCM into a full traffic estimate."""
        rank, lam = self.rank, self.lam
        tuning: Optional[TuningResult] = None
        if self.auto_tune:
            tuner = self._tuner or GeneticTuner(
                solver=self.solver,
                backend=self.backend,
                dtype=self.dtype,
                max_workers=self.max_workers,
                seed=self._seed,
            )
            with obs_trace.span("estimate.tune"):
                tuning = tuner.tune(measurements)
            rank, lam = tuning.rank, tuning.lam
            self.last_tuning = tuning

        completer = CompressiveSensingCompleter(
            rank=rank,
            lam=lam,
            iterations=self.iterations,
            mask_aware=self.mask_aware,
            solver=self.solver,
            backend=self.backend,
            dtype=self.dtype,
            clip_min=0.0 if self.clip_speeds else None,
            clip_max=self.max_speed_kmh if self.clip_speeds else None,
            center=self.center,
            max_workers=self.max_workers,
            seed=self._seed,
        )
        with obs_trace.span("estimate.complete", rank=rank, lam=float(lam)):
            result = completer.complete(measurements)
        estimate_tcm = TrafficConditionMatrix(
            result.estimate,
            grid=measurements.grid,
            segment_ids=measurements.segment_ids,
        )
        return EstimationOutput(
            estimate=estimate_tcm,
            measurements=measurements,
            completion=result,
            tuning=tuning,
        )
