"""SVD / PCA structure analysis of traffic condition matrices.

Implements Section 3.1's empirical machinery: the singular value
spectrum whose "sharp knee" (Figure 4) evidences low effective rank, and
best rank-r approximation (Eq. 11-12) used for the Figure 6
reconstruction study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_finite, check_fraction


def _svd(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    matrix = check_finite(np.asarray(matrix, dtype=float), "matrix")
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    return np.linalg.svd(matrix, full_matrices=False)


@dataclass(frozen=True)
class SpectrumSummary:
    """Singular value spectrum of a TCM.

    Attributes
    ----------
    singular_values:
        Descending singular values ``sigma_i``.
    """

    singular_values: np.ndarray

    @property
    def magnitudes(self) -> np.ndarray:
        """Ratio of each singular value to the maximum (Figure 4's y-axis)."""
        top = self.singular_values[0] if self.singular_values.size else 1.0
        if top == 0:
            return np.zeros_like(self.singular_values)
        return self.singular_values / top

    @property
    def energies(self) -> np.ndarray:
        """Squared singular values normalized to sum 1 ("energy" shares)."""
        sq = self.singular_values**2
        total = sq.sum()
        if total == 0:
            return np.zeros_like(sq)
        return sq / total

    def energy_captured(self, rank: int) -> float:
        """Fraction of total energy in the first ``rank`` components."""
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        return float(self.energies[:rank].sum())

    def rank_for_energy(self, fraction: float) -> int:
        """Smallest rank capturing at least ``fraction`` of the energy."""
        check_fraction(fraction, "fraction")
        cumulative = np.cumsum(self.energies)
        idx = int(np.searchsorted(cumulative, fraction - 1e-12)) + 1
        return min(idx, self.singular_values.size)

    def knee_sharpness(self, head: int = 5) -> float:
        """Energy share of the first ``head`` components.

        A value near 1 is the paper's "sharp knee": almost all energy in
        the first few principal components.
        """
        return self.energy_captured(head)


def singular_value_spectrum(matrix: np.ndarray) -> SpectrumSummary:
    """Spectrum of ``matrix`` (Figure 4)."""
    _, s, _ = _svd(matrix)
    return SpectrumSummary(singular_values=s)


def rank_r_approximation(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Best rank-``rank`` approximation in Frobenius norm (Eq. 11-12).

    Keeps the ``rank`` largest singular triplets and drops the rest; by
    Eckart-Young this minimizes ``||X - X_hat||_F`` subject to
    ``rank(X_hat) <= rank``.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    u, s, vt = _svd(matrix)
    r = min(rank, s.size)
    return (u[:, :r] * s[:r]) @ vt[:r]


def effective_rank(matrix: np.ndarray, energy_fraction: float = 0.95) -> int:
    """Rank needed to capture ``energy_fraction`` of the spectrum energy."""
    return singular_value_spectrum(matrix).rank_for_energy(energy_fraction)


def principal_components(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full thin SVD ``(U, sigma, V^T)`` of the matrix (Eq. 7).

    ``U``'s columns are the eigenflows ``u_i = X v_i / sigma_i`` (Eq. 8);
    ``V``'s columns are the principal directions of ``X^T X``.
    """
    return _svd(matrix)
