"""Eigenflow extraction and classification (Section 3.1, Eq. 8-10).

An *eigenflow* ``u_i = X v_i / sigma_i`` is the i-th left singular vector
of the TCM: a time series describing how the i-th principal component
evolves over slots.  The paper sorts eigenflows into three mutually
exclusive types (Eq. 10):

* **type 1 (periodic / deterministic)** — ``|FFT(u_i)|`` contains a
  spike: the flow is dominated by a periodic signal (daily/weekly
  traffic rhythm).  These carry most of the information.
* **type 2 (spike)** — the time-domain signal itself contains a spike:
  the flow tracks a localized event (incident).
* **type 3 (noise)** — neither: negligible information.

A *spike* is a value deviating from the mean by more than
``threshold_sigmas`` (paper: 4) standard deviations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.svd_analysis import principal_components
from repro.utils.contracts import shapes

PAPER_SPIKE_SIGMAS = 4.0


class EigenflowType(enum.IntEnum):
    """The three eigenflow classes of Eq. 10."""

    PERIODIC = 1
    SPIKE = 2
    NOISE = 3


def has_spike(signal: np.ndarray, threshold_sigmas: float = PAPER_SPIKE_SIGMAS) -> bool:
    """Whether any value deviates from the mean by > ``threshold_sigmas`` stds.

    This is the paper's spike rule: "If the difference of the value and
    the average is larger than four times the standard deviation, the
    value is a spike."
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size < 2:
        return False
    std = signal.std()
    if std == 0:
        return False
    return bool(np.any(np.abs(signal - signal.mean()) > threshold_sigmas * std))


def _fft_magnitude(signal: np.ndarray) -> np.ndarray:
    """|FFT| over the positive, non-DC frequencies.

    The DC bin only encodes the mean and would register as a "spike" for
    any signal with a non-zero offset, so it is excluded before the spike
    test — we are looking for a dominant *periodic* component.
    """
    spectrum = np.abs(np.fft.rfft(np.asarray(signal, dtype=float)))
    return spectrum[1:]


@shapes("m", finite=("u",))
def classify_eigenflow(
    u: np.ndarray, threshold_sigmas: float = PAPER_SPIKE_SIGMAS
) -> EigenflowType:
    """Classify one eigenflow per Eq. 10."""
    u = np.asarray(u, dtype=float)
    if has_spike(_fft_magnitude(u), threshold_sigmas):
        return EigenflowType.PERIODIC
    if has_spike(u, threshold_sigmas):
        return EigenflowType.SPIKE
    return EigenflowType.NOISE


@dataclass(frozen=True)
class EigenflowAnalysis:
    """Full eigenflow decomposition of a TCM.

    Attributes
    ----------
    u:
        ``(m, k)`` eigenflows as columns, descending singular-value order.
    singular_values:
        The ``k`` singular values.
    vt:
        ``(k, n)`` right factors.
    types:
        Per-eigenflow classification.
    """

    u: np.ndarray
    singular_values: np.ndarray
    vt: np.ndarray
    types: List[EigenflowType]

    @property
    def num_flows(self) -> int:
        return len(self.types)

    def eigenflow(self, i: int) -> np.ndarray:
        """The i-th eigenflow time series."""
        return self.u[:, i]

    def type_counts(self) -> Dict[EigenflowType, int]:
        """Occurrences of each type (Figure 8's tally)."""
        counts = {t: 0 for t in EigenflowType}
        for t in self.types:
            counts[t] += 1
        return counts

    def indices_of_type(self, flow_type: EigenflowType) -> List[int]:
        """Positions (singular-value order) of the given type (Figure 8)."""
        return [i for i, t in enumerate(self.types) if t == flow_type]

    def reconstruct(self, indices: Sequence[int]) -> np.ndarray:
        """Reconstruction using only the selected components (Eq. 9/11)."""
        indices = list(indices)
        if not indices:
            return np.zeros((self.u.shape[0], self.vt.shape[1]))
        sel_u = self.u[:, indices]
        sel_s = self.singular_values[indices]
        sel_vt = self.vt[indices]
        return (sel_u * sel_s) @ sel_vt


@shapes("m n", finite=("matrix",))
def analyze_eigenflows(
    matrix: np.ndarray,
    threshold_sigmas: float = PAPER_SPIKE_SIGMAS,
    max_flows: Optional[int] = None,
) -> EigenflowAnalysis:
    """Decompose a TCM and classify every eigenflow.

    Parameters
    ----------
    matrix:
        The (complete) TCM, rows = slots.
    threshold_sigmas:
        Spike threshold (paper: 4).
    max_flows:
        Only keep the leading ``max_flows`` components (all by default).
    """
    u, s, vt = principal_components(matrix)
    if max_flows is not None:
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1, got {max_flows}")
        u, s, vt = u[:, :max_flows], s[:max_flows], vt[:max_flows]
    types = [classify_eigenflow(u[:, i], threshold_sigmas) for i in range(s.size)]
    return EigenflowAnalysis(u=u, singular_values=s, vt=vt, types=types)


def reconstruct_from_types(
    analysis: EigenflowAnalysis, flow_type: EigenflowType
) -> np.ndarray:
    """Reconstruction using only one eigenflow type (Figure 7)."""
    return analysis.reconstruct(analysis.indices_of_type(flow_type))
