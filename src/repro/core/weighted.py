"""Confidence-weighted matrix completion (extension).

The paper treats every observed cell equally, but cells backed by one
probe report are far noisier than cells averaging dozens (Definition 1
approximates a mean by a sample average).  This extension generalizes
Algorithm 1's objective to

    || W .x (L R^T - M) ||_F^2 + lambda (||L||_F^2 + ||R||_F^2)

with a per-cell confidence weight matrix ``W`` (zero where unobserved),
solved by the same alternating scheme with *weighted* ridge
regressions.  :func:`weights_from_counts` derives the natural weights
from per-cell report counts: the variance of an n-sample average scales
as 1/n, so the (amplitude) weight grows like sqrt(n), capped to avoid a
few over-sampled downtown cells dominating the fit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.completion import (
    PAPER_ITERATIONS,
    PAPER_LAMBDA,
    PAPER_RANK,
    CompletionResult,
)
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix_pair, check_positive


def weights_from_counts(counts: np.ndarray, cap: float = 5.0) -> np.ndarray:
    """Confidence weights from per-cell report counts.

    ``w = min(sqrt(count), cap)``; zero where no reports.  The square
    root matches inverse-standard-deviation weighting of sample means.
    """
    check_positive(cap, "cap")
    counts = np.asarray(counts, dtype=float)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    return np.minimum(np.sqrt(counts), cap)


class ConfidenceWeightedCompleter:
    """Algorithm 1 with per-cell confidence weights.

    Parameters mirror :class:`CompressiveSensingCompleter`; ``complete``
    additionally takes the weight matrix.  Uniform weights over the
    observed cells reduce exactly to the unweighted algorithm.
    """

    def __init__(
        self,
        rank: int = PAPER_RANK,
        lam: float = PAPER_LAMBDA,
        iterations: int = PAPER_ITERATIONS,
        clip_min: Optional[float] = None,
        clip_max: Optional[float] = None,
        center: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if clip_min is not None and clip_max is not None and clip_min > clip_max:
            raise ValueError("clip_min must not exceed clip_max")
        self.rank = rank
        self.lam = lam
        self.iterations = iterations
        self.clip_min = clip_min
        self.clip_max = clip_max
        self.center = center
        self._seed = seed

    def complete(
        self,
        values: np.ndarray,
        weights: np.ndarray,
    ) -> CompletionResult:
        """Complete ``values`` under confidence ``weights``.

        ``weights`` must be non-negative with the matrix's shape; cells
        with zero weight are treated as missing.
        """
        values = np.asarray(values, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape:
            raise ValueError(
                f"weights shape {weights.shape} != values shape {values.shape}"
            )
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        mask = weights > 0
        values, mask = check_matrix_pair(values, mask)
        if not mask.any():
            raise ValueError("no cells with positive weight")

        rng = ensure_rng(self._seed)
        m, n = values.shape
        r = min(self.rank, m, n)

        offset = 0.0
        work = np.where(mask, values, 0.0)
        if self.center:
            offset = float(work[mask].mean())
            work = np.where(mask, work - offset, 0.0)

        scale = float(np.abs(work[mask]).mean())
        left = rng.standard_normal((m, r)) * np.sqrt(max(scale, 1e-6) / r)

        best_obj = np.inf
        best_left, best_right = left, np.zeros((n, r))
        history = []
        w_sq = weights**2
        for _ in range(self.iterations):
            right = _weighted_ridge(left, work, w_sq, self.lam)
            left = _weighted_ridge(right, work.T, w_sq.T, self.lam)
            residual = np.where(mask, left @ right.T - work, 0.0)
            obj = float(np.sum(w_sq * residual**2)) + self.lam * float(
                np.sum(left**2) + np.sum(right**2)
            )
            history.append(obj)
            if obj < best_obj:
                best_obj, best_left, best_right = obj, left.copy(), right.copy()

        estimate = best_left @ best_right.T + offset
        if self.clip_min is not None or self.clip_max is not None:
            estimate = np.clip(estimate, self.clip_min, self.clip_max)
        return CompletionResult(
            estimate=estimate,
            left=best_left,
            right=best_right,
            objective=best_obj,
            objective_history=history,
            iterations_run=len(history),
        )


def _weighted_ridge(
    factor: np.ndarray, m_arr: np.ndarray, w_sq: np.ndarray, lam: float
) -> np.ndarray:
    """Per-column weighted ridge: (F^T D F + lam I) x = F^T D m.

    ``D`` is the diagonal of the column's squared weights; zero-weight
    rows drop out naturally.
    """
    m, r = factor.shape
    n = m_arr.shape[1]
    out = np.zeros((n, r))
    eye = lam * np.eye(r)
    for j in range(n):
        w = w_sq[:, j]
        rows = w > 0
        if not rows.any():
            continue
        f = factor[rows]
        wj = w[rows]
        gram = (f * wj[:, None]).T @ f + eye
        rhs = (f * wj[:, None]).T @ m_arr[rows, j]
        out[j] = np.linalg.solve(gram, rhs)
    return out
