"""The paper's primary contribution.

* :mod:`repro.core.tcm` — traffic condition matrix (TCM) abstraction:
  time grid, measurement/indicator pair, integrity (Definitions 1 and 4).
* :mod:`repro.core.svd_analysis` — SVD/PCA structure analysis (Eq. 7-9).
* :mod:`repro.core.eigenflows` — eigenflow extraction and the three-type
  classification of Eq. 10.
* :mod:`repro.core.completion` — Algorithm 1, the compressive-sensing
  matrix completion solver (Eq. 13-17).
* :mod:`repro.core.backends` — pluggable solver-backend registry for
  the Algorithm 1 hot path (preallocated float32/float64 workspace
  kernels, optional numba-JIT and CuPy backends).
* :mod:`repro.core.tuning` — Algorithm 2, the genetic hyper-parameter
  search for (rank bound r, tradeoff coefficient lambda).
* :mod:`repro.core.estimator` — high-level facade tying it together.
* :mod:`repro.core.streaming` — online/sliding-window extension (the
  paper's first future-work item).
* :mod:`repro.core.matrix_selection` — TCM construction from segment
  neighbourhoods (Section 4.5 / second future-work item).
"""

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.core.svd_analysis import (
    SpectrumSummary,
    effective_rank,
    rank_r_approximation,
    singular_value_spectrum,
)
from repro.core.eigenflows import (
    EigenflowAnalysis,
    EigenflowType,
    analyze_eigenflows,
    classify_eigenflow,
    has_spike,
    reconstruct_from_types,
)
from repro.core.backends import (
    FLOAT32_RTOL,
    BackendUnavailable,
    SolverBackend,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.completion import CompletionResult, CompressiveSensingCompleter
from repro.core.tuning import FitnessCacheStats, GeneticTuner, TuningResult
from repro.core.estimator import TrafficEstimator
from repro.core.streaming import StreamingEstimator
from repro.core.matrix_selection import (
    SegmentSetBuilder,
    build_paper_sets,
)
from repro.core.anomaly import (
    AnomalyEvent,
    EigenflowAnomalyDetector,
    ResidualAnomalyDetector,
)
from repro.core.weighted import ConfidenceWeightedCompleter, weights_from_counts
from repro.core.diagnostics import (
    convergence_diagnostics,
    coverage_error_profile,
    fit_diagnostics,
)
from repro.core.online_anomaly import OnlineAlert, OnlineAnomalyMonitor

__all__ = [
    "TimeGrid",
    "TrafficConditionMatrix",
    "SpectrumSummary",
    "effective_rank",
    "rank_r_approximation",
    "singular_value_spectrum",
    "EigenflowAnalysis",
    "EigenflowType",
    "analyze_eigenflows",
    "classify_eigenflow",
    "has_spike",
    "reconstruct_from_types",
    "FLOAT32_RTOL",
    "BackendUnavailable",
    "SolverBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "CompletionResult",
    "CompressiveSensingCompleter",
    "FitnessCacheStats",
    "GeneticTuner",
    "TuningResult",
    "TrafficEstimator",
    "StreamingEstimator",
    "SegmentSetBuilder",
    "build_paper_sets",
    "AnomalyEvent",
    "EigenflowAnomalyDetector",
    "ResidualAnomalyDetector",
    "ConfidenceWeightedCompleter",
    "weights_from_counts",
    "convergence_diagnostics",
    "coverage_error_profile",
    "fit_diagnostics",
    "OnlineAlert",
    "OnlineAnomalyMonitor",
]
