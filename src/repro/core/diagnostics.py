"""Completion diagnostics.

Operating a traffic-estimation deployment needs more than one NMAE
number: did the ALS converge, which segments drive the error, and how
does accuracy relate to how well each segment was observed?  These
tools answer those questions for a completed matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.completion import CompletionResult
from repro.core.tcm import TrafficConditionMatrix
from repro.metrics.errors import nmae
from repro.utils.validation import check_matrix_pair


@dataclass(frozen=True)
class ConvergenceDiagnostics:
    """ALS convergence summary.

    Attributes
    ----------
    converged:
        Whether the final objective is within ``tol`` (relative) of the
        best objective seen during the run.
    final_objective, best_objective:
        Objective values (Eq. 16).
    relative_drop:
        Overall objective reduction ``1 - best/first`` (0 when the
        first iterate was already optimal).
    iterations_run:
        Total ALS sweeps (including restarts).
    """

    converged: bool
    final_objective: float
    best_objective: float
    relative_drop: float
    iterations_run: int


def convergence_diagnostics(
    result: CompletionResult, tol: float = 1e-3
) -> ConvergenceDiagnostics:
    """Summarize a completion run's objective trajectory."""
    history = list(result.objective_history)
    if not history:
        raise ValueError("completion result has an empty objective history")
    first, final = history[0], history[-1]
    best = result.objective
    drop = 0.0 if first <= 0 else max(0.0, 1.0 - best / first)
    converged = final <= best * (1.0 + tol)
    return ConvergenceDiagnostics(
        converged=converged,
        final_objective=final,
        best_objective=best,
        relative_drop=drop,
        iterations_run=result.iterations_run,
    )


@dataclass(frozen=True)
class FitDiagnostics:
    """How the estimate relates to the observations it was fit on.

    Attributes
    ----------
    observed_nmae:
        NMAE between the estimate and the *observed* cells.  High values
        mean under-fitting (lambda too large / rank too small).
    residual_std_kmh:
        Standard deviation of observed-cell residuals.
    worst_segments:
        Segment ids with the largest observed-cell NMAE, worst first.
    per_segment_nmae:
        Observed-cell NMAE per segment id (NaN when unobserved).
    """

    observed_nmae: float
    residual_std_kmh: float
    worst_segments: List[int]
    per_segment_nmae: Dict[int, float]


def fit_diagnostics(
    measurements: TrafficConditionMatrix,
    estimate: np.ndarray,
    top_k: int = 10,
) -> FitDiagnostics:
    """Residual analysis of an estimate against its measurements."""
    estimate = np.asarray(estimate, dtype=float)
    if estimate.shape != measurements.shape:
        raise ValueError(
            f"estimate shape {estimate.shape} != measurements {measurements.shape}"
        )
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    values, mask = measurements.values, measurements.mask
    overall = nmae(values, estimate, mask)
    residuals = (estimate - values)[mask]
    residual_std = float(residuals.std()) if residuals.size else float("nan")

    per_segment: Dict[int, float] = {}
    for j, sid in enumerate(measurements.segment_ids):
        col_mask = mask[:, j]
        if col_mask.any():
            per_segment[sid] = nmae(
                values[:, j][col_mask][None], estimate[:, j][col_mask][None]
            )
        else:
            per_segment[sid] = float("nan")

    scored = [
        (sid, err) for sid, err in per_segment.items() if np.isfinite(err)
    ]
    scored.sort(key=lambda kv: -kv[1])
    worst = [sid for sid, _ in scored[:top_k]]
    return FitDiagnostics(
        observed_nmae=overall,
        residual_std_kmh=residual_std,
        worst_segments=worst,
        per_segment_nmae=per_segment,
    )


def coverage_error_profile(
    truth: np.ndarray,
    estimate: np.ndarray,
    mask: np.ndarray,
    bins: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0),
) -> List[Tuple[float, float, float, int]]:
    """Estimate error as a function of per-segment coverage.

    Groups segments by their observation fraction and reports the NMAE
    over *missing* cells within each coverage bin.

    Returns a list of ``(bin_low, bin_high, nmae, num_segments)`` rows;
    bins with no segments carry NaN.  The expected shape: error falls as
    coverage rises, with the zero-coverage bin worst (those segments are
    estimated purely from cross-segment structure).
    """
    truth = np.asarray(truth, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    _, mask = check_matrix_pair(truth, mask)
    if estimate.shape != truth.shape:
        raise ValueError("estimate shape mismatch")
    if len(bins) < 2 or list(bins) != sorted(bins):
        raise ValueError("bins must be ascending with at least two edges")

    coverage = mask.mean(axis=0)
    rows: List[Tuple[float, float, float, int]] = []
    for lo, hi in zip(bins[:-1], bins[1:]):
        in_bin = (coverage >= lo) & (
            (coverage < hi) if hi < bins[-1] else (coverage <= hi)
        )
        cols = np.flatnonzero(in_bin)
        if cols.size == 0:
            rows.append((lo, hi, float("nan"), 0))
            continue
        eval_mask = np.zeros_like(mask)
        eval_mask[:, cols] = ~mask[:, cols]
        rows.append((lo, hi, nmae(truth, estimate, eval_mask), int(cols.size)))
    return rows
