"""Traffic anomaly (incident) detection on top of the TCM machinery.

Section 3.1's eigenflow taxonomy observes that type-2 eigenflows carry
time-domain spikes that "indicate that the original datasets also have
a corresponding spike" — i.e. localized incidents.  This module turns
that observation into a detector, plus a complementary residual-based
detector that flags cells deviating sharply from the low-rank estimate
(the completion's notion of "normal traffic").

Both detectors operate on complete matrices: run Algorithm 1 first when
the input is partial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.eigenflows import (
    EigenflowType,
    analyze_eigenflows,
    has_spike,
)
from repro.core.svd_analysis import rank_r_approximation
from repro.core.tcm import TrafficConditionMatrix
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AnomalyEvent:
    """A detected traffic anomaly.

    Attributes
    ----------
    slot:
        Time-slot index of the anomaly's core.
    segment_ids:
        Affected segments (TCM column labels).
    score:
        Detector-specific severity (higher = more anomalous).
    """

    slot: int
    segment_ids: List[int]
    score: float


class ResidualAnomalyDetector:
    """Flags cells far below their low-rank expectation.

    Fits the best rank-``rank`` approximation of the complete matrix
    (the "normal" traffic pattern) and standardizes the residuals; a
    cell whose speed falls short of the expectation by more than
    ``threshold_sigmas`` residual standard deviations is anomalous.
    Adjacent anomalous cells in the same slot merge into one event.

    Only *negative* residuals (slower than expected) are flagged —
    faster-than-expected traffic is not an incident.

    Keep ``rank`` small: the baseline should span only the *periodic*
    structure (the paper's tuned rank of 2 is the right default); with a
    generous rank the SVD absorbs strong incidents into a principal
    component and they vanish from the residual.
    """

    def __init__(self, rank: int = 2, threshold_sigmas: float = 3.5) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        check_positive(threshold_sigmas, "threshold_sigmas")
        self.rank = rank
        self.threshold_sigmas = threshold_sigmas

    def detect(self, tcm: TrafficConditionMatrix) -> List[AnomalyEvent]:
        """Detect events in a complete TCM, sorted by slot then score."""
        if not tcm.is_complete:
            raise ValueError(
                "residual detection needs a complete TCM; complete it first"
            )
        values = tcm.values
        baseline = rank_r_approximation(values, self.rank)
        residual = values - baseline
        std = residual.std()
        if std == 0:
            return []
        z = residual / std
        flagged = z < -self.threshold_sigmas

        events: List[AnomalyEvent] = []
        for slot in np.flatnonzero(flagged.any(axis=1)):
            cols = np.flatnonzero(flagged[slot])
            events.append(
                AnomalyEvent(
                    slot=int(slot),
                    segment_ids=[tcm.segment_ids[j] for j in cols],
                    score=float(-z[slot, cols].min()),
                )
            )
        events.sort(key=lambda e: (e.slot, -e.score))
        return events


class EigenflowAnomalyDetector:
    """Flags slots where spike-type eigenflows fire (Section 3.1).

    Decomposes the matrix, keeps the type-2 (spike) eigenflows, and
    reports the slots where any of them deviates from its mean by more
    than ``threshold_sigmas`` standard deviations — the spikes that led
    the paper to classify those flows as event-driven.  The affected
    segments are the columns with the largest loadings on the firing
    flow.
    """

    def __init__(
        self,
        threshold_sigmas: float = 4.0,
        top_segments: int = 5,
        max_flows: Optional[int] = 40,
    ):
        check_positive(threshold_sigmas, "threshold_sigmas")
        if top_segments < 1:
            raise ValueError(f"top_segments must be >= 1, got {top_segments}")
        self.threshold_sigmas = threshold_sigmas
        self.top_segments = top_segments
        self.max_flows = max_flows

    def detect(self, tcm: TrafficConditionMatrix) -> List[AnomalyEvent]:
        """Detect spike events in a complete TCM."""
        if not tcm.is_complete:
            raise ValueError(
                "eigenflow detection needs a complete TCM; complete it first"
            )
        analysis = analyze_eigenflows(
            tcm.values,
            threshold_sigmas=self.threshold_sigmas,
            max_flows=self.max_flows,
        )
        events: List[AnomalyEvent] = []
        for i in analysis.indices_of_type(EigenflowType.SPIKE):
            flow = analysis.eigenflow(i)
            std = flow.std()
            if std == 0:
                continue
            z = np.abs(flow - flow.mean()) / std
            loadings = np.abs(analysis.vt[i])
            top = np.argsort(loadings)[::-1][: self.top_segments]
            for slot in np.flatnonzero(z > self.threshold_sigmas):
                events.append(
                    AnomalyEvent(
                        slot=int(slot),
                        segment_ids=[tcm.segment_ids[j] for j in top],
                        score=float(z[slot]),
                    )
                )
        events.sort(key=lambda e: (e.slot, -e.score))
        return _merge_same_slot(events)


def _merge_same_slot(events: Sequence[AnomalyEvent]) -> List[AnomalyEvent]:
    """Merge events firing in the same slot into one, unioning segments."""
    merged: Dict[int, AnomalyEvent] = {}
    for event in events:
        existing = merged.get(event.slot)
        if existing is None:
            merged[event.slot] = event
        else:
            merged[event.slot] = AnomalyEvent(
                slot=event.slot,
                segment_ids=sorted(set(existing.segment_ids) | set(event.segment_ids)),
                score=max(existing.score, event.score),
            )
    return [merged[slot] for slot in sorted(merged)]


def match_events(
    detected: Sequence[AnomalyEvent],
    truth_slots: Sequence[Tuple[int, int]],
    slot_tolerance: int = 1,
) -> Tuple[float, float]:
    """Score detections against ground-truth incident (slot-range) windows.

    Parameters
    ----------
    detected:
        Detector output.
    truth_slots:
        Ground-truth incidents as inclusive ``(first_slot, last_slot)``
        windows.
    slot_tolerance:
        Detections within this many slots of a window still count.

    Returns
    -------
    (recall, precision) over the incident windows / detections.
    """
    if slot_tolerance < 0:
        raise ValueError("slot_tolerance must be >= 0")
    if not truth_slots:
        return (float("nan"), 0.0 if detected else float("nan"))

    def hits(window) -> bool:
        lo, hi = window
        return any(
            lo - slot_tolerance <= e.slot <= hi + slot_tolerance for e in detected
        )

    recall = float(np.mean([hits(w) for w in truth_slots]))
    if not detected:
        return recall, float("nan")
    precise = [
        any(lo - slot_tolerance <= e.slot <= hi + slot_tolerance for lo, hi in truth_slots)
        for e in detected
    ]
    return recall, float(np.mean(precise))
