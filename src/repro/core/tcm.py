"""Traffic condition matrices (TCMs).

The paper arranges the traffic conditions of ``n`` road segments over
``m`` time slots into a matrix ``X = (x_{t,r})_{m x n}`` (Eq. 3): a row is
a time slot, a column is a road segment, and ``x_{t,r}`` is the mean flow
speed on segment ``r`` during slot ``t`` (Definition 1).  Observations
from probe vehicles give a *measurement matrix* ``M = X .x B`` where the
indicator ``B`` marks (slot, segment) cells with at least one probe report
(Eq. 4).  The *integrity* of ``M`` is the fraction of observed cells
(Definition 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.contracts import shapes
from repro.utils.validation import check_matrix_pair, check_positive


@dataclass(frozen=True)
class TimeGrid:
    """Uniform time discretization: ``num_slots`` slots of fixed length.

    Attributes
    ----------
    start_s:
        Epoch-style start time in seconds (the simulation clock origin).
    slot_s:
        Slot length in seconds; the paper's "time granularity" (900 s,
        1800 s, or 3600 s in the experiments).
    num_slots:
        Number of slots ``m``.
    """

    start_s: float
    slot_s: float
    num_slots: int

    def __post_init__(self) -> None:
        check_positive(self.slot_s, "slot_s")
        if self.num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {self.num_slots}")

    @property
    def end_s(self) -> float:
        """Exclusive end time of the last slot."""
        return self.start_s + self.slot_s * self.num_slots

    @property
    def duration_s(self) -> float:
        return self.slot_s * self.num_slots

    def slot_of(self, time_s: float) -> Optional[int]:
        """Slot index containing ``time_s``; ``None`` outside the grid."""
        if time_s < self.start_s or time_s >= self.end_s:
            return None
        return int((time_s - self.start_s) // self.slot_s)

    def slot_start(self, slot: int) -> float:
        """Start time of ``slot`` in seconds."""
        self._check_slot(slot)
        return self.start_s + slot * self.slot_s

    def slot_centers(self) -> np.ndarray:
        """Array of slot mid-point times in seconds."""
        return self.start_s + (np.arange(self.num_slots) + 0.5) * self.slot_s

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise IndexError(f"slot {slot} outside [0, {self.num_slots})")

    @classmethod
    def over_days(
        cls, days: float, slot_s: float, start_s: float = 0.0
    ) -> "TimeGrid":
        """Grid covering ``days`` days at ``slot_s`` granularity."""
        check_positive(days, "days")
        num_slots = int(round(days * 86_400.0 / slot_s))
        return cls(start_s=start_s, slot_s=slot_s, num_slots=num_slots)


class TrafficConditionMatrix:
    """A (possibly partially observed) traffic condition matrix.

    Wraps the value matrix, the boolean observation mask, the time grid,
    and the segment-id column labels.  A fully observed ground-truth TCM
    simply has an all-true mask.

    Parameters
    ----------
    values:
        ``(m, n)`` matrix of mean flow speeds in km/h.  Cells where the
        mask is false are ignored (by convention stored as 0).
    mask:
        ``(m, n)`` boolean indicator matrix ``B``; true where observed.
        ``None`` means fully observed.
    grid:
        The time discretization of the rows.
    segment_ids:
        Column labels; defaults to ``0..n-1``.
    """

    @shapes("m n", "m n:bool")
    def __init__(
        self,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
        grid: Optional[TimeGrid] = None,
        segment_ids: Optional[Sequence[int]] = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if mask is None:
            mask = np.ones_like(values, dtype=bool)
        values, mask = check_matrix_pair(values, mask)
        m, n = values.shape
        if grid is None:
            grid = TimeGrid(start_s=0.0, slot_s=900.0, num_slots=m)
        if grid.num_slots != m:
            raise ValueError(
                f"grid has {grid.num_slots} slots but matrix has {m} rows"
            )
        if segment_ids is None:
            segment_ids = list(range(n))
        segment_ids = [int(s) for s in segment_ids]
        if len(segment_ids) != n:
            raise ValueError(
                f"{len(segment_ids)} segment ids for {n} matrix columns"
            )
        if len(set(segment_ids)) != n:
            raise ValueError("segment_ids must be unique")
        # Zero out unobserved cells so values match the paper's M = X .x B.
        cleaned = np.where(mask, values, 0.0)
        self._values = cleaned
        self._mask = mask
        self.grid = grid
        self.segment_ids = segment_ids
        self._column_of = {sid: j for j, sid in enumerate(segment_ids)}

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._values.shape

    @property
    def num_slots(self) -> int:
        return self._values.shape[0]

    @property
    def num_segments(self) -> int:
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The measurement matrix ``M`` (unobserved cells are zero)."""
        return self._values.copy()

    @property
    def mask(self) -> np.ndarray:
        """The boolean indicator matrix ``B``."""
        return self._mask.copy()

    def column_of(self, segment_id: int) -> int:
        """Column index of a segment id."""
        try:
            return self._column_of[segment_id]
        except KeyError:
            raise KeyError(f"segment {segment_id} not in this TCM") from None

    def series(self, segment_id: int) -> np.ndarray:
        """One segment's time series (unobserved cells as NaN)."""
        j = self.column_of(segment_id)
        out = self._values[:, j].astype(float)
        out[~self._mask[:, j]] = np.nan
        return out

    # ------------------------------------------------------------------
    # Integrity (Definition 4)
    # ------------------------------------------------------------------
    @property
    def integrity(self) -> float:
        """Fraction of observed cells: ``sum(B) / size(B)``."""
        return float(self._mask.mean())

    def road_integrity(self) -> np.ndarray:
        """Per-segment integrity (fraction of observed slots per column)."""
        return self._mask.mean(axis=0)

    def slot_integrity(self) -> np.ndarray:
        """Per-slot integrity (fraction of observed segments per row)."""
        return self._mask.mean(axis=1)

    @property
    def is_complete(self) -> bool:
        return bool(self._mask.all())

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_mask(self, mask: np.ndarray) -> "TrafficConditionMatrix":
        """Same values/labels restricted to a new observation mask.

        The new mask must be a subset of currently observed cells when
        this TCM is itself partial; starting from a complete TCM any mask
        is valid.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.shape:
            raise ValueError(f"mask shape {mask.shape} != TCM shape {self.shape}")
        if not self.is_complete and np.any(mask & ~self._mask):
            raise ValueError("new mask observes cells missing from this TCM")
        return TrafficConditionMatrix(
            self._values, mask, grid=self.grid, segment_ids=self.segment_ids
        )

    def select_segments(self, segment_ids: Sequence[int]) -> "TrafficConditionMatrix":
        """Sub-TCM over a subset of segments (Section 4.5 set studies)."""
        cols = [self.column_of(sid) for sid in segment_ids]
        return TrafficConditionMatrix(
            self._values[:, cols],
            self._mask[:, cols],
            grid=self.grid,
            segment_ids=list(segment_ids),
        )

    def select_slots(self, start: int, stop: int) -> "TrafficConditionMatrix":
        """Sub-TCM over a contiguous slot range ``[start, stop)``."""
        if not 0 <= start < stop <= self.num_slots:
            raise ValueError(
                f"invalid slot range [{start}, {stop}) for {self.num_slots} slots"
            )
        sub_grid = TimeGrid(
            start_s=self.grid.slot_start(start),
            slot_s=self.grid.slot_s,
            num_slots=stop - start,
        )
        return TrafficConditionMatrix(
            self._values[start:stop],
            self._mask[start:stop],
            grid=sub_grid,
            segment_ids=self.segment_ids,
        )

    def observed_values(self) -> np.ndarray:
        """1-D array of the observed entries."""
        return self._values[self._mask]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficConditionMatrix(shape={self.shape}, "
            f"integrity={self.integrity:.3f}, slot_s={self.grid.slot_s:.0f})"
        )
