"""Solver-backend registry for Algorithm 1's masked ridge solves.

The ALS sweep (Eq. 15/16) spends essentially all of its time in one
kernel: the per-column masked ridge solve

    G_j = F^T diag(B_{:, j}) F + lam I_r,    G_j x_j = F^T M_{:, j}.

This module makes that kernel *pluggable*, the same way the ingestion
pipeline keeps a ``method="scalar"`` reference next to its vectorized
path.  A backend is a named capability set — the dtypes it supports,
the optional dependency ("extra") it needs, and a :meth:`bind` that
turns one ``(M, B, lam, r)`` problem into a :class:`BoundKernel` whose
``solve_right``/``solve_left`` the sweep loop then calls.  Binding is
where per-problem invariants are hoisted: the indicator cast, its
transpose, the transposed measurement matrix, and the ridge ``lam I``
are computed once per ALS run instead of twice per sweep, and the Gram
stack / RHS / output buffers are preallocated and reused across every
sweep and both factor updates.

Registered backends:

* ``"numpy"`` (default) — the legacy float64 path.  Inside
  :class:`~repro.core.completion.CompressiveSensingCompleter` this name
  selects the existing ``solver="batched"/"grouped"/"loop"`` dispatch
  unchanged; :meth:`bind` wraps the batched kernel so registry-level
  tooling can treat every backend uniformly.
* ``"numpy-ws"`` — preallocated-workspace NumPy kernels, float32 and
  float64 capable.  At the paper's rank bound (r <= 2, Eq. 18) the
  ridge systems are solved by a vectorized closed form (Cramer's rule;
  ``lam > 0`` makes every ``G_j`` positive definite, so the determinant
  is bounded below by ``lam**r``) instead of a batched LAPACK ``gesv``.
* ``"numba"`` — an optional JIT backend (``pip install repro[jit]``)
  that compiles the per-column solve into one fused loop; falls back
  loudly (:class:`BackendUnavailable`) when numba is missing.
* ``"cupy"`` — an optional GPU backend (``pip install repro[gpu]``):
  the indicator/measurement operands live on the device across the
  whole ALS run and each sweep is one device GEMM plus one stacked
  solve.  CuPy is only imported inside :meth:`bind`, never eagerly.

Numerical contract: every backend minimizes the same per-column
objective.  float64 backends match the loop reference within the
``repro bench`` equivalence tolerance (1e-8 max abs difference on the
final estimate); float32 runs are compared *relative to the reference's
magnitude* at :data:`FLOAT32_RTOL` — single precision carries ~7
significant digits, so bitwise float64 agreement is not a meaningful
ask (see docs/API_GUIDE.md "Choosing a solver backend").
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.contracts import effects, hot_path

__all__ = [
    "FLOAT32_RTOL",
    "BackendUnavailable",
    "BoundKernel",
    "SolverBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
]

#: Relative tolerance for float32-vs-float64 estimate comparisons:
#: ``max |est32 - est64| <= FLOAT32_RTOL * max(1, max |est64|)``.  The
#: ALS solves are ridge-regularized (condition bounded by the data Gram
#: over ``lam``), so single precision loses a few of its ~7 digits over
#: a 60-sweep run; 1e-3 relative holds with two orders of margin on the
#: bench workloads while still catching any wrong-kernel bug outright.
FLOAT32_RTOL = 1e-3


class BackendUnavailable(RuntimeError):
    """A backend was selected whose optional dependency is not installed."""


class BoundKernel:
    """One ALS problem's solver, with per-problem state hoisted.

    Obtained from :meth:`SolverBackend.bind`.  The two methods mirror
    :meth:`CompressiveSensingCompleter._solve_right`/``_solve_left``:
    ``solve_right`` solves the n column systems of ``M`` given the left
    factor (m x r) and returns the right factor (n x r); ``solve_left``
    solves the m row systems given the right factor.  A bound kernel
    may reuse internal buffers between calls, so it must not be shared
    across threads; Algorithm 1 binds one kernel per ALS run.
    """

    def solve_right(self, left: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def solve_left(self, right: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SolverBackend:
    """A named, capability-described kernel set for Algorithm 1.

    Subclasses set the class attributes and implement :meth:`bind`.
    ``extra`` names the pip extra that provides the backend's optional
    dependency (``None`` for always-available backends); availability
    is probed without importing the dependency.
    """

    #: Registry name (``--backend`` value).
    name: str = ""
    #: pip extra providing the dependency, or ``None`` if built in.
    extra: Optional[str] = None
    #: Module whose presence gates availability (``None`` = built in).
    requires_module: Optional[str] = None
    #: Working dtypes the kernels accept.
    supported_dtypes: Tuple[np.dtype, ...] = (
        np.dtype(np.float64),
        np.dtype(np.float32),
    )
    #: One-line capability summary for ``repro backends``.
    description: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run here (dependency check only)."""
        if self.requires_module is None:
            return True
        return importlib.util.find_spec(self.requires_module) is not None

    def availability_hint(self) -> str:
        """Actionable install hint for an unavailable backend."""
        if self.requires_module is None or self.extra is None:
            return "built in"
        return (
            f"requires the {self.requires_module!r} module "
            f"(pip install repro[{self.extra}])"
        )

    def resolve_dtype(
        self, requested: Optional[np.dtype], input_dtype: np.dtype
    ) -> np.dtype:
        """The working dtype for a completion run.

        An explicit ``requested`` dtype wins.  Otherwise the input's
        dtype is honored when it is a supported float (a float32 matrix
        stays float32 end to end); anything else — float64, integers,
        lower-precision floats — resolves to float64.
        """
        if requested is not None:
            dtype = np.dtype(requested)
        elif np.dtype(input_dtype) in self.supported_dtypes and np.dtype(
            input_dtype
        ) == np.dtype(np.float32):
            dtype = np.dtype(np.float32)
        else:
            dtype = np.dtype(np.float64)
        if dtype not in self.supported_dtypes:
            supported = ", ".join(str(d) for d in self.supported_dtypes)
            raise ValueError(
                f"backend {self.name!r} does not support dtype {dtype} "
                f"(supported: {supported})"
            )
        return dtype

    def bind(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> BoundKernel:
        """Hoist per-problem state and return the bound kernel.

        ``m_arr`` must already be in the working dtype with unobserved
        cells zeroed (Algorithm 1 guarantees both on entry).
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> SolverBackend:
    """Add a backend to the registry (last registration of a name wins)."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown solver backend {name!r} (registered: {known})"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, registration order."""
    return tuple(_REGISTRY)


def available_backend_names() -> Tuple[str, ...]:
    """Registered backends whose dependencies are importable here."""
    return tuple(
        name for name, backend in _REGISTRY.items() if backend.is_available()
    )


# ----------------------------------------------------------------------
# numpy (legacy batched kernel, wrapped for registry uniformity)
# ----------------------------------------------------------------------
class _BatchedKernel(BoundKernel):
    """The legacy batched solver behind the :class:`BoundKernel` shape."""

    def __init__(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float
    ) -> None:
        # Imported here: repro.core.completion imports this module at
        # load time, so the kernel reference must resolve lazily.
        from repro.core.completion import _ridge_by_column_batched

        self._solve = _ridge_by_column_batched
        self._m = m_arr
        self._m_t = np.ascontiguousarray(m_arr.T)
        self._b = b_arr
        self._b_t = np.ascontiguousarray(b_arr.T)
        self._lam = lam

    def solve_right(self, left: np.ndarray) -> np.ndarray:
        return self._solve(left, self._m, self._b, self._lam)

    def solve_left(self, right: np.ndarray) -> np.ndarray:
        return self._solve(right, self._m_t, self._b_t, self._lam)


class NumpyBackend(SolverBackend):
    """The default backend: the existing float64 NumPy solver dispatch.

    :class:`CompressiveSensingCompleter` special-cases this name to keep
    the ``solver="batched"/"grouped"/"loop"`` selection (and the
    ``mask_aware=False`` stacked solve) exactly as before; :meth:`bind`
    exists so registry-wide tooling (equivalence tests, benches) can
    drive every backend through one interface.
    """

    name = "numpy"
    description = "legacy vectorized NumPy solvers (batched/grouped/loop)"

    def bind(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> BoundKernel:
        return _BatchedKernel(m_arr, b_arr, lam)


# ----------------------------------------------------------------------
# numpy-ws (preallocated workspace + closed-form small-rank solves)
# ----------------------------------------------------------------------
class _WorkspaceKernel(BoundKernel):
    """Workspace kernels: all per-problem state hoisted out of the sweep.

    The batched kernel re-derives four invariants on every solve — the
    indicator cast ``B.astype(dtype)``, its (implicit) transpose, the
    ``lam I`` ridge, and fresh Gram/RHS/output allocations.  Binding
    computes the invariants once and owns reusable buffers for both
    factor updates, so a sweep performs exactly: one outer-product
    write, one GEMM into the Gram stack, one GEMM into the RHS, and the
    solve — with zero large temporaries.

    For ``rank <= 2`` with ``lam > 0`` the stacked systems are solved
    in closed form (Cramer's rule) directly into the preallocated
    output; the ridge makes every ``G_j`` symmetric positive definite
    with ``det(G_j) >= lam**rank > 0``, so the division is safe.
    Larger ranks (or ``lam == 0``) fall back to the batched LAPACK
    solve with the same singular-column handling as the batched kernel.

    Buffers are reused across calls, so a kernel instance must stay on
    one thread (Algorithm 1 binds per ALS run).
    """

    def __init__(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> None:
        m, n = m_arr.shape
        dtype = m_arr.dtype
        self._lam = lam
        self._rank = rank
        self._m = m_arr
        self._m_t = np.ascontiguousarray(m_arr.T)
        self._b = b_arr
        self._b_t = np.ascontiguousarray(b_arr.T)
        # Indicator in the working dtype, both orientations, cast once.
        self._ind = b_arr.astype(dtype)
        self._ind_t = np.ascontiguousarray(self._ind.T)
        self._lam_eye = lam * np.eye(rank, dtype=dtype)
        # Reusable buffers.  pairs_* holds the r*r outer products of the
        # fixed factor's rows; grams_* and rhs_* receive the GEMMs; the
        # out_* factor buffers receive the closed-form solves.
        self._pairs_m = np.empty((m, rank * rank), dtype=dtype)
        self._pairs_n = np.empty((n, rank * rank), dtype=dtype)
        self._grams_n = np.empty((n, rank, rank), dtype=dtype)
        self._grams_m = np.empty((m, rank, rank), dtype=dtype)
        self._rhs_n = np.empty((rank, n), dtype=dtype)
        self._rhs_m = np.empty((rank, m), dtype=dtype)
        self._out_n = np.empty((n, rank), dtype=dtype)
        self._out_m = np.empty((m, rank), dtype=dtype)

    @effects("pure")
    @hot_path
    def _solve_side(
        self,
        factor: np.ndarray,
        m_side: np.ndarray,
        b_side: np.ndarray,
        ind_gram: np.ndarray,
        pairs: np.ndarray,
        grams: np.ndarray,
        rhs: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """One factor update using the preallocated workspace.

        ``ind_gram`` is the indicator oriented so that
        ``ind_gram @ pairs`` stacks the Gram matrices of ``m_side``'s
        columns; ``pairs``/``grams``/``rhs``/``out`` are this side's
        buffers.
        """
        k, r = factor.shape
        cols = m_side.shape[1]
        np.multiply(
            factor[:, :, None],
            factor[:, None, :],
            out=pairs.reshape(k, r, r),
        )
        np.matmul(ind_gram, pairs, out=grams.reshape(cols, r * r))
        # Writing the ridge into the preallocated Gram buffer is the
        # point of the workspace kernel (no fresh allocation per sweep).
        # repro-lint: disable-next-line=param-mutation
        grams += self._lam_eye
        np.matmul(factor.T, m_side, out=rhs)
        if self._lam > 0 and r <= 2:
            # Closed-form SPD solve; det >= lam**r keeps it non-singular.
            if r == 1:
                np.divide(rhs[0], grams[:, 0, 0], out=out[:, 0])
                return out
            a = grams[:, 0, 0]
            b = grams[:, 0, 1]
            c = grams[:, 1, 0]
            d = grams[:, 1, 1]
            det = a * d - b * c
            np.divide(d * rhs[0] - b * rhs[1], det, out=out[:, 0])
            np.divide(a * rhs[1] - c * rhs[0], det, out=out[:, 1])
            return out
        if self._lam > 0:
            solved: np.ndarray = np.linalg.solve(grams, rhs.T[:, :, None])[:, :, 0]
            return solved
        # lam == 0: exclude singular all-unobserved columns, as the
        # batched kernel does.
        zeros = np.zeros((cols, r), dtype=factor.dtype)
        observed_cols = np.flatnonzero(b_side.any(axis=0))
        if observed_cols.size:
            zeros[observed_cols] = np.linalg.solve(
                grams[observed_cols], rhs.T[observed_cols, :, None]
            )[:, :, 0]
        return zeros

    def solve_right(self, left: np.ndarray) -> np.ndarray:
        return self._solve_side(
            left,
            self._m,
            self._b,
            self._ind_t,
            self._pairs_m,
            self._grams_n,
            self._rhs_n,
            self._out_n,
        )

    def solve_left(self, right: np.ndarray) -> np.ndarray:
        return self._solve_side(
            right,
            self._m_t,
            self._b_t,
            self._ind,
            self._pairs_n,
            self._grams_m,
            self._rhs_m,
            self._out_m,
        )


class WorkspaceBackend(SolverBackend):
    """Preallocated-workspace NumPy kernels (float32/float64)."""

    name = "numpy-ws"
    description = (
        "preallocated-workspace NumPy kernels, float32-capable, "
        "closed-form solves at rank <= 2"
    )

    def bind(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> BoundKernel:
        return _WorkspaceKernel(m_arr, b_arr, lam, rank)


# ----------------------------------------------------------------------
# numba (optional JIT; pip install repro[jit])
# ----------------------------------------------------------------------
_NUMBA_KERNEL_CACHE: List[object] = []


def _numba_masked_ridge_factory() -> object:
    """Compile (once) the fused per-column masked ridge solve."""
    if _NUMBA_KERNEL_CACHE:
        return _NUMBA_KERNEL_CACHE[0]
    numba = importlib.import_module("numba")

    @numba.njit(cache=True)
    def masked_ridge(factor, m_side, b_side, lam, out):  # type: ignore[no-untyped-def] # pragma: no cover - requires numba
        k, r = factor.shape
        cols = m_side.shape[1]
        gram = np.zeros((r, r), dtype=factor.dtype)
        rhs = np.zeros(r, dtype=factor.dtype)
        for j in range(cols):
            for a in range(r):
                rhs[a] = 0.0
                for b in range(r):
                    gram[a, b] = 0.0
            observed = False
            for i in range(k):
                if b_side[i, j]:
                    observed = True
                    v = m_side[i, j]
                    for a in range(r):
                        fa = factor[i, a]
                        rhs[a] += fa * v
                        for b in range(r):
                            gram[a, b] += fa * factor[i, b]
            # Exact sentinel: lam=0 disables the ridge entirely, any
            # nonzero lam keeps the all-unobserved Gram non-singular.
            # repro-lint: disable-next-line=float-equality
            if not observed and lam == 0.0:
                for a in range(r):
                    # repro-lint: disable-next-line=param-mutation
                    out[j, a] = 0.0
                continue
            for a in range(r):
                gram[a, a] += lam
            sol = np.linalg.solve(
                gram.astype(np.float64), rhs.astype(np.float64)
            )
            for a in range(r):
                # The output buffer is the kernel's contract.
                # repro-lint: disable-next-line=param-mutation
                out[j, a] = sol[a]

    _NUMBA_KERNEL_CACHE.append(masked_ridge)
    return masked_ridge


class _NumbaKernel(BoundKernel):
    """Per-column masked ridge solve compiled by numba."""

    def __init__(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> None:
        self._kernel = _numba_masked_ridge_factory()
        self._m = np.ascontiguousarray(m_arr)
        self._m_t = np.ascontiguousarray(m_arr.T)
        self._b = np.ascontiguousarray(b_arr)
        self._b_t = np.ascontiguousarray(b_arr.T)
        self._lam = float(lam)
        self._out_n = np.empty((m_arr.shape[1], rank), dtype=m_arr.dtype)
        self._out_m = np.empty((m_arr.shape[0], rank), dtype=m_arr.dtype)

    def solve_right(self, left: np.ndarray) -> np.ndarray:
        self._kernel(  # type: ignore[operator]
            np.ascontiguousarray(left), self._m, self._b, self._lam, self._out_n
        )
        return self._out_n

    def solve_left(self, right: np.ndarray) -> np.ndarray:
        self._kernel(  # type: ignore[operator]
            np.ascontiguousarray(right), self._m_t, self._b_t, self._lam, self._out_m
        )
        return self._out_m


class NumbaBackend(SolverBackend):
    """Optional numba-JIT backend for the per-column masked solve.

    The solve itself runs in float64 inside the compiled loop (numba's
    LAPACK bindings) and is written back in the working dtype, so the
    float64 path matches the loop reference within the 1e-8 equivalence
    tolerance and float32 runs stay within :data:`FLOAT32_RTOL`.
    """

    name = "numba"
    extra = "jit"
    requires_module = "numba"
    description = "JIT-compiled fused per-column solve (pip install repro[jit])"

    def bind(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> BoundKernel:
        if not self.is_available():
            raise BackendUnavailable(
                f"backend {self.name!r} {self.availability_hint()}"
            )
        return _NumbaKernel(m_arr, b_arr, lam, rank)


# ----------------------------------------------------------------------
# cupy (optional GPU; pip install repro[gpu])
# ----------------------------------------------------------------------
class _CupyKernel(BoundKernel):
    """GEMM + stacked solve on the device; operands uploaded once."""

    def __init__(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> None:
        cp = importlib.import_module("cupy")
        self._cp = cp
        dtype = m_arr.dtype
        self._m = cp.asarray(m_arr)
        self._m_t = cp.ascontiguousarray(self._m.T)
        ind = cp.asarray(b_arr.astype(dtype))
        self._ind = ind
        self._ind_t = cp.ascontiguousarray(ind.T)
        self._lam_eye = lam * cp.eye(rank, dtype=dtype)

    def _solve_side(
        self, factor_host: np.ndarray, m_side: object, ind_gram: object
    ) -> np.ndarray:
        cp = self._cp
        factor = cp.asarray(factor_host)
        k, r = factor.shape
        pairs = (factor[:, :, None] * factor[:, None, :]).reshape(k, r * r)
        grams = (ind_gram @ pairs).reshape(-1, r, r)  # type: ignore[operator]
        grams += self._lam_eye
        rhs = factor.T @ m_side
        solved = cp.linalg.solve(grams, rhs.T[:, :, None])[:, :, 0]
        result: np.ndarray = cp.asnumpy(solved)
        return result

    def solve_right(self, left: np.ndarray) -> np.ndarray:
        return self._solve_side(left, self._m, self._ind_t)

    def solve_left(self, right: np.ndarray) -> np.ndarray:
        return self._solve_side(right, self._m_t, self._ind)


class CupyBackend(SolverBackend):
    """Optional CuPy backend: device-resident GEMM + stacked solve.

    The measurement/indicator operands are uploaded once per ALS run;
    each sweep moves only the (k x r) factor to the device and the
    solved factor back, so transfer cost is O((m + n) r) per sweep
    against O(m n r) device flops.  With ``lam == 0`` the stacked solve
    would hit singular all-unobserved columns; this backend requires
    ``lam > 0`` (the paper's setting) rather than paying a device
    round-trip to exclude them.
    """

    name = "cupy"
    extra = "gpu"
    requires_module = "cupy"
    description = "GPU GEMM + stacked solve via CuPy (pip install repro[gpu])"

    def bind(
        self, m_arr: np.ndarray, b_arr: np.ndarray, lam: float, rank: int
    ) -> BoundKernel:
        if not self.is_available():
            raise BackendUnavailable(
                f"backend {self.name!r} {self.availability_hint()}"
            )
        if not lam > 0:
            raise ValueError("the cupy backend requires lam > 0")
        return _CupyKernel(m_arr, b_arr, lam, rank)


register_backend(NumpyBackend())
register_backend(WorkspaceBackend())
register_backend(NumbaBackend())
register_backend(CupyBackend())
