"""Congestion monitoring for traffic management.

Turns estimated speeds into management-grade indicators: a per-cell
congestion index relative to free-flow speed, per-segment and per-slot
rankings, and spatial hotspot extraction (connected clusters of
congested segments) — the "traffic management" and "road engineering"
consumers the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.tcm import TrafficConditionMatrix
from repro.roadnet.network import RoadNetwork
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class CongestionRanking:
    """Segments ranked by a congestion statistic (worst first)."""

    segment_ids: List[int]
    scores: List[float]

    def top(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` most congested segments with their scores."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return list(zip(self.segment_ids[:k], self.scores[:k]))


@dataclass(frozen=True)
class Hotspot:
    """A connected cluster of congested segments in one slot."""

    slot: int
    segment_ids: List[int]
    mean_congestion: float


class CongestionMonitor:
    """Congestion analytics over a completed TCM.

    The congestion index of a cell is ``1 - speed / free_flow`` clamped
    to [0, 1]: 0 = free flow, 1 = standstill.

    Parameters
    ----------
    network:
        Provides free-flow speeds and adjacency (for hotspots).
    tcm:
        Complete (estimated) TCM.
    """

    def __init__(self, network: RoadNetwork, tcm: TrafficConditionMatrix):
        self.network = network
        self.refresh(tcm)

    def refresh(self, tcm: TrafficConditionMatrix) -> None:
        """Swap in a newer estimate and recompute the congestion index."""
        if not tcm.is_complete:
            raise ValueError("congestion analytics need a complete TCM")
        self.tcm = tcm
        free_flow = np.array(
            [self.network.segment(sid).free_flow_kmh for sid in tcm.segment_ids]
        )
        self._congestion = np.clip(1.0 - tcm.values / free_flow[None, :], 0.0, 1.0)

    # ------------------------------------------------------------------
    @property
    def congestion_index(self) -> np.ndarray:
        """The (slots x segments) congestion index matrix."""
        return self._congestion.copy()

    def network_congestion_series(self) -> np.ndarray:
        """City-wide mean congestion per slot (the management dashboard)."""
        return self._congestion.mean(axis=1)

    def segment_ranking(
        self, slot_range: Optional[Tuple[int, int]] = None
    ) -> CongestionRanking:
        """Segments ranked by mean congestion over a slot range."""
        lo, hi = slot_range if slot_range else (0, self.tcm.num_slots)
        if not 0 <= lo < hi <= self.tcm.num_slots:
            raise ValueError(f"invalid slot range ({lo}, {hi})")
        means = self._congestion[lo:hi].mean(axis=0)
        order = np.argsort(means)[::-1]
        return CongestionRanking(
            segment_ids=[self.tcm.segment_ids[i] for i in order],
            scores=[float(means[i]) for i in order],
        )

    def peak_slot(self) -> int:
        """The slot with the highest city-wide congestion."""
        return int(np.argmax(self.network_congestion_series()))

    def congested_fraction(self, threshold: float = 0.5) -> np.ndarray:
        """Per-slot fraction of segments above a congestion threshold."""
        check_fraction(threshold, "threshold")
        return (self._congestion >= threshold).mean(axis=1)

    # ------------------------------------------------------------------
    def hotspots(
        self, slot: int, threshold: float = 0.5, min_size: int = 2
    ) -> List[Hotspot]:
        """Connected clusters of congested segments in one slot.

        Two congested segments belong to the same hotspot when they are
        adjacent in the road graph.  Clusters smaller than ``min_size``
        are dropped (isolated noisy cells).
        """
        check_fraction(threshold, "threshold")
        if not 0 <= slot < self.tcm.num_slots:
            raise IndexError(f"slot {slot} outside TCM")
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")

        row = self._congestion[slot]
        congested: Set[int] = {
            self.tcm.segment_ids[j] for j in np.flatnonzero(row >= threshold)
        }
        col_of = {sid: j for j, sid in enumerate(self.tcm.segment_ids)}

        hotspots: List[Hotspot] = []
        unvisited = set(congested)
        while unvisited:
            seed = unvisited.pop()
            cluster = {seed}
            frontier = [seed]
            while frontier:
                sid = frontier.pop()
                for neighbour in self.network.adjacent_segments(sid):
                    if neighbour in unvisited:
                        unvisited.discard(neighbour)
                        cluster.add(neighbour)
                        frontier.append(neighbour)
            if len(cluster) >= min_size:
                mean_c = float(np.mean([row[col_of[s]] for s in sorted(cluster)]))
                hotspots.append(
                    Hotspot(
                        slot=slot,
                        segment_ids=sorted(cluster),
                        mean_congestion=mean_c,
                    )
                )
        hotspots.sort(key=lambda h: -h.mean_congestion)
        return hotspots
