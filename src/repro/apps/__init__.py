"""Downstream applications of the traffic estimates.

The paper's introduction motivates traffic estimation with "trip
planning, traffic management, road engineering and infrastructure
planning".  This package builds those consumers on top of a completed
traffic condition matrix:

* :mod:`repro.apps.travel_time` — per-link and per-route travel times
  from estimated speeds.
* :mod:`repro.apps.trip_planner` — time-dependent fastest routes over
  the estimated network state.
* :mod:`repro.apps.congestion` — congestion indices, rankings, and
  hotspot extraction for traffic management.
"""

from repro.apps.travel_time import TravelTimeService
from repro.apps.trip_planner import TripPlan, TripPlannerService
from repro.apps.congestion import CongestionMonitor, CongestionRanking

__all__ = [
    "TravelTimeService",
    "TripPlan",
    "TripPlannerService",
    "CongestionMonitor",
    "CongestionRanking",
]
