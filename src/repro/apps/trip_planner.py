"""Time-dependent trip planning over estimated traffic.

The paper's first motivating application.  Plans fastest routes where
each link's cost is its traversal time *at the moment the vehicle
reaches it*, taken from the estimated TCM — a time-dependent shortest
path computed with a label-setting (Dijkstra-style) search over arrival
times, which is exact when link times satisfy FIFO (they do here:
within a slot the time is constant, and slot boundaries only change
speeds, never allow overtaking by waiting).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.travel_time import TravelTimeService
from repro.core.tcm import TrafficConditionMatrix
from repro.roadnet.network import RoadNetwork
from repro.roadnet.segment import RoadSegment


@dataclass(frozen=True)
class TripPlan:
    """A planned trip.

    Attributes
    ----------
    origin, destination:
        Intersection ids.
    depart_s, arrive_s:
        Departure and predicted arrival times.
    segment_ids:
        The route as a segment sequence.
    """

    origin: int
    destination: int
    depart_s: float
    arrive_s: float
    segment_ids: List[int]

    @property
    def travel_time_s(self) -> float:
        return self.arrive_s - self.depart_s

    @property
    def num_links(self) -> int:
        return len(self.segment_ids)


class TripPlannerService:
    """Fastest-route planning over a completed TCM.

    Parameters
    ----------
    network:
        The road network.
    tcm:
        A complete (estimated) TCM covering the network's segments.
    """

    def __init__(self, network: RoadNetwork, tcm: TrafficConditionMatrix):
        self.network = network
        self.travel_time = TravelTimeService(network, tcm)
        self._covered = set(tcm.segment_ids)

    def refresh(self, tcm: TrafficConditionMatrix) -> None:
        """Swap in a newer estimate without rebuilding the planner."""
        self.travel_time.refresh(tcm)
        self._covered = set(tcm.segment_ids)

    def plan(
        self, origin: int, destination: int, depart_s: float
    ) -> Optional[TripPlan]:
        """Time-dependent fastest route; ``None`` if unreachable.

        Label-setting search on earliest arrival time per intersection.
        """
        if origin == destination:
            return TripPlan(origin, destination, depart_s, depart_s, [])
        arrivals: Dict[int, float] = {origin: depart_s}
        back: Dict[int, Tuple[int, int]] = {}  # node -> (prev node, segment)
        heap: List[Tuple[float, int]] = [(depart_s, origin)]
        settled = set()

        while heap:
            t, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if node == destination:
                break
            for seg in self.network.outgoing_segments(node):
                if seg.segment_id not in self._covered:
                    continue
                arrive = t + self.travel_time.link_time_s(seg.segment_id, t)
                if arrive < arrivals.get(seg.end, float("inf")) - 1e-9:
                    arrivals[seg.end] = arrive
                    back[seg.end] = (node, seg.segment_id)
                    heapq.heappush(heap, (arrive, seg.end))

        if destination not in arrivals:
            return None
        route: List[int] = []
        node = destination
        while node != origin:
            prev, sid = back[node]
            route.append(sid)
            node = prev
        route.reverse()
        return TripPlan(
            origin=origin,
            destination=destination,
            depart_s=depart_s,
            arrive_s=arrivals[destination],
            segment_ids=route,
        )

    def compare_departures(
        self,
        origin: int,
        destination: int,
        depart_times_s,
    ) -> List[TripPlan]:
        """Plans for several candidate departure times (peak avoidance)."""
        plans = []
        for t in depart_times_s:
            plan = self.plan(origin, destination, float(t))
            if plan is not None:
                plans.append(plan)
        return plans
