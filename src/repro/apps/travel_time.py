"""Travel times from estimated traffic conditions.

Converts a (complete) traffic condition matrix — estimated speeds per
(slot, segment) — into link traversal times and route travel times,
including *time-expanded* route times where each link is traversed at
the speed of the slot the vehicle actually reaches it in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.tcm import TrafficConditionMatrix
from repro.roadnet.network import RoadNetwork
from repro.utils.validation import check_positive


class TravelTimeService:
    """Link/route travel times over a completed TCM.

    Parameters
    ----------
    network:
        Road network the TCM's segments belong to.
    tcm:
        A *complete* TCM (run the estimator first); its segment ids
        must all exist in the network.
    min_speed_kmh:
        Floor applied to estimated speeds before division (a zero
        estimate must not produce an infinite travel time).
    """

    def __init__(
        self,
        network: RoadNetwork,
        tcm: TrafficConditionMatrix,
        min_speed_kmh: float = 3.0,
    ):
        check_positive(min_speed_kmh, "min_speed_kmh")
        self.network = network
        self.min_speed_kmh = min_speed_kmh
        self.refresh(tcm)

    def refresh(self, tcm: TrafficConditionMatrix) -> None:
        """Swap in a newer estimate (e.g. after a streaming update).

        Revalidates the TCM exactly like construction and rebuilds the
        cached speed matrix, so a long-lived service can follow a
        continuously re-estimated metropolitan network.
        """
        if not tcm.is_complete:
            raise ValueError("travel times need a complete (estimated) TCM")
        known = set(self.network.segment_ids)
        missing = [sid for sid in tcm.segment_ids if sid not in known]
        if missing:
            raise ValueError(f"TCM segments not in network: {missing[:5]}")
        self.tcm = tcm
        self._speeds = np.maximum(tcm.values, self.min_speed_kmh)

    # ------------------------------------------------------------------
    def speed_kmh(self, segment_id: int, time_s: float) -> float:
        """Estimated speed on a segment at a time (clamped to the grid)."""
        slot = self.tcm.grid.slot_of(time_s)
        if slot is None:
            slot = 0 if time_s < self.tcm.grid.start_s else self.tcm.num_slots - 1
        return float(self._speeds[slot, self.tcm.column_of(segment_id)])

    def link_time_s(self, segment_id: int, time_s: float) -> float:
        """Traversal time of one segment entered at ``time_s``."""
        seg = self.network.segment(segment_id)
        return seg.length_m / (self.speed_kmh(segment_id, time_s) / 3.6)

    def route_time_s(
        self, segment_ids: Sequence[int], depart_s: float
    ) -> float:
        """Time-expanded travel time of a segment route.

        Each link is traversed at the estimated speed of the slot the
        vehicle reaches it in, so long routes correctly experience
        changing conditions en route.
        """
        t = depart_s
        for sid in segment_ids:
            t += self.link_time_s(sid, t)
        return t - depart_s

    def route_time_profile(
        self,
        segment_ids: Sequence[int],
        depart_times_s: Sequence[float],
    ) -> np.ndarray:
        """Route travel time for each candidate departure time."""
        return np.array(
            [self.route_time_s(segment_ids, t) for t in depart_times_s]
        )

    def best_departure(
        self,
        segment_ids: Sequence[int],
        window_start_s: float,
        window_end_s: float,
        step_s: float = 900.0,
    ) -> tuple:
        """Departure time within a window minimizing route travel time.

        Returns ``(depart_s, travel_time_s)``.
        """
        if window_end_s <= window_start_s:
            raise ValueError("empty departure window")
        check_positive(step_s, "step_s")
        candidates = np.arange(window_start_s, window_end_s, step_s)
        times = self.route_time_profile(segment_ids, candidates)
        best = int(np.argmin(times))
        return float(candidates[best]), float(times[best])
