"""Shared grammar for ``@shapes`` array specs.

One spec string describes one array argument::

    "m n"        two symbolic dims, bound consistently across arguments
    "m n:bool"   same, constrained to the boolean-like dtype family
    "3 *"        exact leading size, any trailing size

Tokens are symbolic dims (identifiers), exact sizes (non-negative
integers), or ``*`` (any size); an optional ``:float`` / ``:bool`` /
``:int`` suffix constrains the dtype *family*.  The grammar is owned
here so the runtime checker (:mod:`repro.utils.contracts`) and the
static verifier (:mod:`repro.analysis.shapecheck`) can never disagree
on what a spec means: both parse through :func:`parse_shape_spec` and a
parsed :class:`ShapeSpec` renders back to a canonical spec string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = [
    "DTYPE_FAMILIES",
    "DimToken",
    "ShapeSpec",
    "parse_shape_spec",
]

#: Spec suffix -> accepted numpy dtype kinds.
DTYPE_FAMILIES: Dict[str, str] = {
    "float": "fiu",  # real numeric (ints promote losslessly)
    "bool": "biu",  # indicator matrices are commonly int 0/1
    "int": "iub",
}

#: One dim of a spec: a symbolic name, an exact size, or the ``"*"`` wildcard.
DimToken = Union[str, int]


@dataclass(frozen=True)
class ShapeSpec:
    """One parsed ``"m n:bool"`` style spec."""

    #: Dim tokens in axis order (``"*"`` is the literal wildcard string).
    dims: Tuple[DimToken, ...]
    #: Dtype family name (``""`` when the spec does not constrain dtype).
    family: str = ""

    @property
    def rank(self) -> int:
        """Required array rank (``ndim``)."""
        return len(self.dims)

    @property
    def kinds(self) -> str:
        """Accepted numpy dtype kinds (``""`` accepts every kind)."""
        return DTYPE_FAMILIES.get(self.family, "")

    def render(self) -> str:
        """Canonical spec string; ``parse_shape_spec`` round-trips it."""
        text = " ".join(str(dim) for dim in self.dims)
        if self.family:
            text += f":{self.family}"
        return text


def parse_shape_spec(raw: str) -> ShapeSpec:
    """Parse a spec string; raises ``ValueError`` on bad grammar."""
    spec, _, family = raw.partition(":")
    family = family.strip()
    if family and family not in DTYPE_FAMILIES:
        families = ", ".join(sorted(DTYPE_FAMILIES))
        raise ValueError(f"unknown dtype family {family!r} (known: {families})")
    tokens = spec.split()
    if not tokens:
        raise ValueError(f"empty shape spec in {raw!r}")
    dims: Tuple[DimToken, ...] = ()
    for token in tokens:
        if token == "*":
            dims += ("*",)
        elif token.lstrip("-").isdigit():
            size = int(token)
            if size < 0:
                raise ValueError(f"negative dim {token!r} in spec {raw!r}")
            dims += (size,)
        elif token.isidentifier():
            dims += (token,)
        else:
            raise ValueError(f"bad dim token {token!r} in spec {raw!r}")
    return ShapeSpec(dims=dims, family=family)
