"""Deterministic fan-out of independent numerical jobs.

ALS restarts and GA fitness evaluations are embarrassingly parallel:
each job is a pure function of arguments prepared *up front* (including
any random state, see :func:`repro.utils.rng.spawn_rngs`).  This module
provides the one primitive those call sites need — an order-preserving
``map`` over a worker pool — so the parallel path is *bit-identical* to
the serial path: the caller fixes every input before dispatch, and the
results come back in submission order regardless of completion order.

Backends:

* ``"serial"`` — a plain loop; the reference behavior.
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`.  The
  default for the library's own call sites: the hot work is NumPy/LAPACK
  which releases the GIL, and threads avoid pickling matrices.
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor` for
  pure-Python-bound work.  Requires ``fn`` and every item/result to be
  picklable (module-level functions, not closures).

``max_workers`` of ``None``, ``0`` or ``1`` short-circuits to the serial
loop — so plumbing ``max_workers=None`` through a constructor costs
nothing until a caller opts in.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

BACKENDS = ("serial", "thread", "process")

__all__ = ["BACKENDS", "available_workers", "parallel_map", "resolve_workers"]


def available_workers() -> int:
    """Usable CPU count (>= 1) for sizing worker pools."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(max_workers: Optional[int], num_items: int) -> int:
    """Effective pool size for ``num_items`` jobs.

    ``None``/``0``/``1`` mean serial; otherwise the pool is capped by the
    number of jobs (extra workers would only idle).
    """
    if max_workers is not None and max_workers < 0:
        raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
    if max_workers is None or max_workers <= 1:
        return 1
    return max(1, min(max_workers, num_items))


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    max_workers: Optional[int] = None,
    backend: str = "thread",
    span_name: str = "parallel.task",
) -> List[ResultT]:
    """``[fn(item) for item in items]``, optionally on a worker pool.

    Results are returned in the order of ``items`` (never completion
    order), so a deterministic ``fn`` makes the output independent of
    ``max_workers`` and ``backend``.  The first exception raised by any
    job propagates to the caller, as in the serial loop.

    Parameters
    ----------
    fn:
        The job.  Must be picklable (a module-level function) for the
        ``"process"`` backend; any callable works for the others.
    items:
        Job inputs, fully prepared up front.
    max_workers:
        Pool size; ``None``/``0``/``1`` run serially.
    backend:
        ``"serial"``, ``"thread"``, or ``"process"``.
    span_name:
        Span name for per-job tracing when observability is enabled
        (:mod:`repro.obs`); ignored — at zero cost — while it is off.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (choose from {BACKENDS})")
    jobs = list(items)
    workers = resolve_workers(max_workers, len(jobs))
    if backend == "serial" or workers <= 1:
        if _obs_trace.enabled():
            # Serial path still records one span per job so traces are
            # comparable across worker counts.
            task = _obs_trace.pool_task(fn, span_name)
            return [_obs_trace.absorb_remote(task(item)) for item in jobs]
        return [fn(item) for item in jobs]
    executor: Executor
    if backend == "thread":
        executor = ThreadPoolExecutor(max_workers=workers)
    else:
        executor = ProcessPoolExecutor(max_workers=workers)
    if _obs_trace.enabled():
        _obs_metrics.set_gauge("pool.workers", workers)
        _obs_metrics.inc("pool.jobs", len(jobs))
        # Wrapping captures the driver's active span at dispatch time so
        # worker spans re-parent into the driver trace (process-backend
        # spans travel back in an envelope unwrapped by absorb_remote).
        task = _obs_trace.pool_task(fn, span_name)
        with executor:
            wrapped = list(executor.map(task, jobs))
        return [_obs_trace.absorb_remote(r) for r in wrapped]
    with executor:
        # Executor.map preserves submission order and re-raises the
        # first failing job's exception on iteration.
        return list(executor.map(fn, jobs))
