"""Runtime array contracts for the numerical core.

The :func:`shapes` decorator declares, next to a function's signature,
what the linear algebra inside assumes: array ranks, symbolic dimension
bindings shared across arguments, dtype families, and finiteness.  The
checks run only when the ``REPRO_CHECK`` environment variable is truthy
(``1``/``true``/``yes``/``on``) or :func:`set_enabled` forces them on,
so production call paths pay a single dict lookup and branch.

Spec grammar (one spec string per array argument, ``None`` to skip)::

    @shapes("m n", "m n:bool")
    def complete(values, mask): ...

* tokens are symbolic dims (``m``), exact sizes (``3``), or ``*`` (any);
  symbolic dims must agree everywhere they appear in one call.
* an optional ``:float`` / ``:bool`` / ``:int`` suffix constrains the
  dtype *family* (real numeric, boolean-like indicator, integral).
* a spec may also be a ``type``, requiring ``isinstance`` instead of an
  array check (used for TCM-typed entry points).
* ``finite=("values",)`` additionally rejects NaN/inf in named args.

Arguments that are ``None`` or not array-like (e.g. a
``TrafficConditionMatrix`` passed where a raw matrix is also accepted)
are skipped — the contract constrains arrays when arrays are given.

This module also hosts the scalar/matrix validation helpers that
predate it (``check_positive``, ``check_matrix_pair``, ...), which
:mod:`repro.utils.validation` re-exports for backward compatibility.
Those helpers raise unconditionally; only the decorator is gated.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
    cast,
)

import numpy as np

from repro.utils.shapespec import DTYPE_FAMILIES, ShapeSpec, parse_shape_spec

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = frozenset(("1", "true", "yes", "on"))
#: Backward-compatible alias; the grammar lives in :mod:`repro.utils.shapespec`
#: so the static verifier parses the exact same spec language.
_DTYPE_FAMILIES: Dict[str, str] = DTYPE_FAMILIES

_forced: Optional[bool] = None


class ContractError(ValueError):
    """An array argument violated its declared contract."""


def contracts_enabled() -> bool:
    """Whether contract checks run (``REPRO_CHECK`` or :func:`set_enabled`)."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_CHECK", "").strip().lower() in _TRUTHY


def set_enabled(flag: Optional[bool]) -> None:
    """Force contracts on/off programmatically; ``None`` follows the env."""
    global _forced
    _forced = flag


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class _ArraySpec:
    """One parsed ``"m n:bool"`` style spec (grammar: :mod:`~repro.utils.shapespec`)."""

    __slots__ = ("dims", "kinds", "raw", "spec")

    def __init__(self, raw: str):
        self.raw = raw
        self.spec: ShapeSpec = parse_shape_spec(raw)
        self.dims: List[Union[str, int]] = list(self.spec.dims)
        self.kinds = self.spec.kinds

    def check(
        self, name: str, value: np.ndarray, bindings: Dict[str, int], where: str
    ) -> None:
        if value.ndim != len(self.dims):
            raise ContractError(
                f"{where}: {name} must be {len(self.dims)}-D "
                f"(spec {self.raw!r}), got shape {value.shape}"
            )
        for axis, (dim, size) in enumerate(zip(self.dims, value.shape)):
            if dim == "*":
                continue
            if isinstance(dim, int):
                if size != dim:
                    raise ContractError(
                        f"{where}: {name} axis {axis} must have size {dim}, "
                        f"got {size} (shape {value.shape})"
                    )
            else:
                bound = bindings.setdefault(dim, size)
                if bound != size:
                    raise ContractError(
                        f"{where}: dim {dim!r} is {bound} elsewhere but "
                        f"{name} has {size} on axis {axis} "
                        f"(shape {value.shape})"
                    )
        if self.kinds and value.dtype.kind not in self.kinds:
            raise ContractError(
                f"{where}: {name} dtype {value.dtype} is not in the "
                f"{self.raw.partition(':')[2]!r} family"
            )


SpecLike = Union[None, str, type]


def _as_array(value: Any) -> Optional[np.ndarray]:
    """Best-effort array view of ``value``; ``None`` when not array-like."""
    if value is None:
        return None
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (list, tuple)):
        try:
            arr = np.asarray(value)
        except (ValueError, TypeError):
            return None
        return arr if arr.dtype.kind in "biufc" else None
    return None


def shapes(
    *arg_specs: SpecLike,
    finite: Sequence[str] = (),
    **named_specs: SpecLike,
) -> Callable[[F], F]:
    """Declare shape/dtype/finiteness contracts for a callable.

    Positional specs align with the function's parameters in declaration
    order (``self``/``cls`` skipped); keyword specs address parameters
    by name.  See the module docstring for the grammar.
    """
    parsed: Dict[str, Union[_ArraySpec, type, None]] = {}

    def _parse(spec: SpecLike) -> Union[_ArraySpec, type, None]:
        if spec is None:
            return None
        if isinstance(spec, type):
            return spec
        return _ArraySpec(spec)

    def decorator(func: F) -> F:
        signature = inspect.signature(func)
        param_names = [
            p.name
            for p in signature.parameters.values()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]
        positional = [n for n in param_names if n not in ("self", "cls")]
        if len(arg_specs) > len(positional):
            raise ValueError(
                f"{func.__qualname__}: {len(arg_specs)} specs for "
                f"{len(positional)} parameters"
            )
        for name, spec in zip(positional, arg_specs):
            parsed[name] = _parse(spec)
        for name, spec in named_specs.items():
            if name not in param_names:
                raise ValueError(
                    f"{func.__qualname__}: no parameter named {name!r}"
                )
            parsed[name] = _parse(spec)
        for name in finite:
            if name not in param_names:
                raise ValueError(
                    f"{func.__qualname__}: finite names unknown parameter {name!r}"
                )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not contracts_enabled():
                return func(*args, **kwargs)
            where = func.__qualname__
            bound = signature.bind(*args, **kwargs)
            bindings: Dict[str, int] = {}
            for name, spec in parsed.items():
                if spec is None or name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if isinstance(spec, type):
                    if value is not None and not isinstance(value, spec):
                        raise ContractError(
                            f"{where}: {name} must be {spec.__name__}, "
                            f"got {type(value).__name__}"
                        )
                    continue
                arr = _as_array(value)
                if arr is not None:
                    spec.check(name, arr, bindings, where)
            for name in finite:
                if name not in bound.arguments:
                    continue
                arr = _as_array(bound.arguments[name])
                if arr is not None and arr.dtype.kind in "fc":
                    if not np.all(np.isfinite(arr)):
                        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
                        raise ContractError(
                            f"{where}: {name} contains {bad} non-finite element(s)"
                        )
            return func(*args, **kwargs)

        return cast(F, wrapper)

    return decorator


# ----------------------------------------------------------------------
# Effect contracts (statically verified by repro.analysis.effects)
# ----------------------------------------------------------------------
#: The effect taxonomy of the whole-program analysis.  Every effect a
#: function (or anything it transitively calls) can carry is one of
#: these; ``@effects`` contracts are declared against the same names.
EFFECT_NAMES: FrozenSet[str] = frozenset(
    {
        "mutates-global",
        "mutates-nonlocal",
        "rng",
        "wall-clock",
        "io",
        "env",
        "unordered-iteration",
    }
)


def effects(*declared: str, allow: Iterable[str] = ()) -> Callable[[F], F]:
    """Declare the side effects a callable is permitted to have.

    The contract is *statically* verified by ``repro lint``: the
    whole-program effect-inference pass computes everything reachable
    from the function through the call graph and reports an
    ``effect-contract`` finding for any effect outside the declared set.
    At runtime the decorator only tags the function (zero overhead) so
    registries — e.g. the planned solver-backend registry — can
    introspect purity via ``__repro_effects__``.

    Usage::

        @effects("pure")            # no effects at all
        def kernel(p, q): ...

        @effects(allow={"rng"})     # may draw randomness, nothing else
        def complete(values, mask, *, rng=None): ...

    ``"pure"`` is shorthand for the empty effect set and cannot be
    combined with effect names.  Effect names outside
    :data:`EFFECT_NAMES` are rejected at decoration time so the static
    checker and the runtime tag can never disagree on vocabulary.
    """
    pure = "pure" in declared
    names = {d for d in declared if d != "pure"}
    allowed = names | set(allow)
    if pure and allowed:
        raise ValueError("@effects('pure') cannot be combined with effect names")
    unknown = allowed - EFFECT_NAMES
    if unknown:
        known = ", ".join(sorted(EFFECT_NAMES))
        raise ValueError(
            f"unknown effect name(s) {sorted(unknown)!r} (known: {known})"
        )

    def decorator(func: F) -> F:
        func.__repro_effects__ = frozenset(allowed)  # type: ignore[attr-defined]
        return func

    return decorator


def hot_path(func: F) -> F:
    """Mark a function as a numerical hot path.

    Functions carrying this marker get the dtype-drift rule pack
    (``dtype-upcast-in-hot-path``, ``implicit-float64-literal``,
    ``dtype-dropping-op``) applied by ``repro lint``, keeping them safe
    to run under a float32 backend.  Runtime cost is zero — the
    decorator only sets ``__repro_hot_path__``.
    """
    func.__repro_hot_path__ = True  # type: ignore[attr-defined]
    return func


# ----------------------------------------------------------------------
# Unconditional validation helpers (formerly repro.utils.validation)
# ----------------------------------------------------------------------
def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with probability wording."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Require every element of ``array`` to be finite."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite element(s)")
    return array


def check_matrix_pair(
    values: np.ndarray,
    mask: np.ndarray,
    dtype: Optional[np.dtype] = np.dtype(np.float64),
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a (measurement, indicator) matrix pair.

    Returns floating ``values`` and boolean ``mask`` of identical 2-D
    shape.  The indicator matrix ``B`` of the paper (Eq. 4) is accepted
    as any array coercible to bool.  By default ``values`` is coerced
    to float64; pass ``dtype=None`` to preserve an existing floating
    dtype (integer and other non-float inputs are still promoted to
    float64 so downstream solves stay in floating point).
    """
    if dtype is not None:
        values = np.asarray(values, dtype=dtype)
    else:
        values = np.asarray(values)
        if values.dtype.kind != "f":
            values = values.astype(np.float64)
    mask = np.asarray(mask)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    if mask.shape != values.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match values shape {values.shape}"
        )
    mask = mask.astype(bool)
    observed = values[mask]
    if observed.size and not np.all(np.isfinite(observed)):
        raise ValueError("observed entries must be finite")
    return values, mask
