"""Shared utilities: RNG handling, validation, contracts, parallelism."""

from repro.utils.contracts import (
    ContractError,
    contracts_enabled,
    set_enabled,
    shapes,
)
from repro.utils.parallel import available_workers, parallel_map, resolve_workers
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_fraction,
    check_matrix_pair,
    check_positive,
    check_probability,
)

__all__ = [
    "ContractError",
    "contracts_enabled",
    "set_enabled",
    "shapes",
    "ensure_rng",
    "spawn_rngs",
    "available_workers",
    "parallel_map",
    "resolve_workers",
    "check_finite",
    "check_fraction",
    "check_matrix_pair",
    "check_positive",
    "check_probability",
]
