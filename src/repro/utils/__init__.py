"""Shared utilities: deterministic RNG handling and input validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_fraction,
    check_matrix_pair,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_finite",
    "check_fraction",
    "check_matrix_pair",
    "check_positive",
    "check_probability",
]
