"""Input validation helpers shared across the library.

These raise early with actionable messages instead of letting bad shapes
propagate into linear-algebra routines where the failure mode is a cryptic
broadcast error three stack frames later.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` with probability wording."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Require every element of ``array`` to be finite."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite element(s)")
    return array


def check_matrix_pair(
    values: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a (measurement, indicator) matrix pair.

    Returns float64 ``values`` and boolean ``mask`` of identical 2-D shape.
    The indicator matrix ``B`` of the paper (Eq. 4) is accepted as any
    array coercible to bool.
    """
    values = np.asarray(values, dtype=np.float64)
    mask = np.asarray(mask)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    if mask.shape != values.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match values shape {values.shape}"
        )
    mask = mask.astype(bool)
    observed = values[mask]
    if observed.size and not np.all(np.isfinite(observed)):
        raise ValueError("observed entries must be finite")
    return values, mask
