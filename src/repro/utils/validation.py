"""Input validation helpers shared across the library.

These raise early with actionable messages instead of letting bad shapes
propagate into linear-algebra routines where the failure mode is a
cryptic broadcast error three stack frames later.

The implementations live in :mod:`repro.utils.contracts` (which also
provides the :func:`~repro.utils.contracts.shapes` decorator layer);
this module remains the stable import path the rest of the tree uses.
"""

from __future__ import annotations

from repro.utils.contracts import (
    check_finite,
    check_fraction,
    check_matrix_pair,
    check_positive,
    check_probability,
)

__all__ = [
    "check_finite",
    "check_fraction",
    "check_matrix_pair",
    "check_positive",
    "check_probability",
]
