"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``.  Centralizing
the coercion here keeps experiment runs reproducible end to end: a single
seed at the top of an experiment deterministically derives independent
streams for the road network, the traffic dynamics, the fleet, and the
masking process.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or
        an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the child streams
    are statistically independent and reproducible from the parent seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from an existing generator."""
    return int(rng.integers(0, 2**63 - 1))
