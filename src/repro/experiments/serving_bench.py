"""Serving-load benchmark: the ``apps/`` query layer under concurrency.

The ROADMAP's north star claims a service that "serves heavy traffic";
this module turns the claim into numbers.  A synthetic request
generator drives each query application — link/route travel times
(:class:`~repro.apps.travel_time.TravelTimeService`), time-dependent
trip planning (:class:`~repro.apps.trip_planner.TripPlannerService`),
and congestion analytics
(:class:`~repro.apps.congestion.CongestionMonitor`) — against one
completed estimate at increasing thread-pool concurrency, recording
per-request p50/p95 latency and sustained throughput per level.

The serving world (network + mask + Algorithm 1 estimate) is itself a
content-addressed step: with an
:class:`~repro.experiments.store.ArtifactStore` attached it is built
once and reloaded on every later bench run, so the suite measures
*query* cost, not estimation cost.  Every request stream is derived
deterministically from the config seed, and each worker returns its own
latency measurements (no shared mutable state), so the recorded
latencies are a pure function of config and machine.

Results land in :class:`~repro.experiments.perf_bench.BenchReport`
records (schema 5: ``p50_ms``/``p95_ms``/``throughput_rps`` fields) and
are gated by ``repro bench --compare`` in CI like every other suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.congestion import CongestionMonitor
from repro.apps.travel_time import TravelTimeService
from repro.apps.trip_planner import TripPlannerService
from repro.core.completion import CompressiveSensingCompleter
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.roadnet.generators import grid_city
from repro.roadnet.network import RoadNetwork
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.parallel import parallel_map
from repro.utils.rng import ensure_rng

#: The three applications the suite drives, in record order.
SERVING_APPS = ("travel_time", "trip_planner", "congestion")


@dataclass(frozen=True)
class ServingBenchConfig:
    """Workload of one serving-bench run (fully seeds the request streams)."""

    rows: int = 6
    cols: int = 6
    days: float = 1.0
    slot_s: float = 900.0
    integrity: float = 0.3
    rank: int = 2
    lam: float = 10.0
    iterations: int = 20
    concurrency_levels: Tuple[int, ...] = (1, 4, 16)
    requests_per_level: int = 200
    seed: int = 0


def default_serving_config(smoke: bool = False, seed: int = 0) -> ServingBenchConfig:
    """The profile's workload: smaller streams under ``smoke``."""
    if smoke:
        return ServingBenchConfig(
            days=0.5,
            concurrency_levels=(1, 2, 4),
            requests_per_level=60,
            seed=seed,
        )
    return ServingBenchConfig(seed=seed)


@dataclass(frozen=True)
class ServingLevelResult:
    """Latency/throughput of one (app, concurrency) measurement."""

    app: str
    concurrency: int
    requests: int
    wall_s: float
    p50_ms: float
    p95_ms: float
    throughput_rps: float


def build_serving_world(
    config: ServingBenchConfig,
) -> Tuple[RoadNetwork, TrafficConditionMatrix]:
    """(network, completed estimate) the applications serve from.

    A grid city's synthetic ground truth is masked to the configured
    integrity and completed with Algorithm 1 — the same artifact the
    production path would cache — so queries run against an *estimate*,
    not against truth.
    """
    network = grid_city(config.rows, config.cols, seed=config.seed)
    grid = TimeGrid.over_days(config.days, config.slot_s)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=config.seed)
    mask = random_integrity_mask(
        truth.tcm.shape, config.integrity, seed=config.seed + 1
    )
    measured = np.where(mask, truth.tcm.values, 0.0)
    completer = CompressiveSensingCompleter(
        rank=config.rank,
        lam=config.lam,
        iterations=config.iterations,
        clip_min=0.0,
        clip_max=150.0,
        seed=config.seed,
    )
    estimate = completer.complete(measured, mask).estimate
    tcm = TrafficConditionMatrix(
        estimate, grid=grid, segment_ids=truth.tcm.segment_ids
    )
    return network, tcm


def _travel_time_requests(
    network: RoadNetwork, tcm: TrafficConditionMatrix, config: ServingBenchConfig
) -> List[Tuple[List[int], float]]:
    """Route-time queries: short random segment routes + depart times."""
    rng = ensure_rng(config.seed + 10)
    segment_ids = np.asarray(network.segment_ids)
    horizon_s = tcm.grid.slot_s * tcm.num_slots
    out = []
    for _ in range(config.requests_per_level):
        length = int(rng.integers(3, 9))
        route = segment_ids[rng.integers(0, len(segment_ids), length)]
        out.append(([int(s) for s in route], float(rng.uniform(0.0, horizon_s))))
    return out


def _trip_planner_requests(
    network: RoadNetwork, tcm: TrafficConditionMatrix, config: ServingBenchConfig
) -> List[Tuple[int, int, float]]:
    """Plan queries: random origin/destination intersections."""
    rng = ensure_rng(config.seed + 11)
    nodes = [node.node_id for node in network.intersections()]
    horizon_s = tcm.grid.slot_s * tcm.num_slots
    out = []
    for _ in range(config.requests_per_level):
        origin, destination = rng.choice(len(nodes), size=2, replace=False)
        out.append(
            (
                nodes[int(origin)],
                nodes[int(destination)],
                float(rng.uniform(0.0, horizon_s)),
            )
        )
    return out


def _congestion_requests(
    network: RoadNetwork, tcm: TrafficConditionMatrix, config: ServingBenchConfig
) -> List[Tuple[str, int, int]]:
    """Analytics queries: alternating rankings over ranges and hotspots."""
    rng = ensure_rng(config.seed + 12)
    num_slots = tcm.num_slots
    out: List[Tuple[str, int, int]] = []
    for i in range(config.requests_per_level):
        if i % 2 == 0:
            lo = int(rng.integers(0, max(1, num_slots - 1)))
            hi = int(rng.integers(lo + 1, num_slots + 1))
            out.append(("ranking", lo, hi))
        else:
            out.append(("hotspots", int(rng.integers(0, num_slots)), 0))
    return out


def _serving_handlers(
    network: RoadNetwork, tcm: TrafficConditionMatrix, config: ServingBenchConfig
) -> Dict[str, Tuple[Callable[[Any], object], Sequence[Any]]]:
    """Per-app (handler, requests): services built once, shared read-only.

    Every service is constructed before the pool starts and only *read*
    by the workers — the apps are thread-safe after construction — so
    concurrent levels measure contention on the query path alone.
    """
    travel = TravelTimeService(network, tcm)
    planner = TripPlannerService(network, tcm)
    monitor = CongestionMonitor(network, tcm)

    def handle_travel_time(request: Tuple[List[int], float]) -> object:
        route, depart_s = request
        return travel.route_time_s(route, depart_s)

    def handle_trip_planner(request: Tuple[int, int, float]) -> object:
        origin, destination, depart_s = request
        return planner.plan(origin, destination, depart_s)

    def handle_congestion(request: Tuple[str, int, int]) -> object:
        kind, a, b = request
        if kind == "ranking":
            return monitor.segment_ranking((a, b))
        return monitor.hotspots(a)

    return {
        "travel_time": (handle_travel_time, _travel_time_requests(network, tcm, config)),
        "trip_planner": (handle_trip_planner, _trip_planner_requests(network, tcm, config)),
        "congestion": (handle_congestion, _congestion_requests(network, tcm, config)),
    }


def _timed_request(
    item: Tuple[Callable[[Any], object], Any]
) -> float:
    """One request's latency in seconds (returned, never shared)."""
    handler, request = item
    start = time.perf_counter()
    handler(request)
    return time.perf_counter() - start


def run_serving_bench(
    config: Optional[ServingBenchConfig] = None,
    world: Optional[Tuple[RoadNetwork, TrafficConditionMatrix]] = None,
) -> List[ServingLevelResult]:
    """Drive all three apps at each concurrency level; one result each.

    ``world`` short-circuits the build — the bench harness passes a
    store-cached (network, estimate) pair so repeated runs measure only
    the query layer.
    """
    config = config or default_serving_config()
    if not config.concurrency_levels:
        raise ValueError("need at least one concurrency level")
    if min(config.concurrency_levels) < 1:
        raise ValueError(
            f"concurrency levels must be >= 1, got {config.concurrency_levels}"
        )
    network, tcm = world if world is not None else build_serving_world(config)
    handlers = _serving_handlers(network, tcm, config)
    results: List[ServingLevelResult] = []
    for app in SERVING_APPS:
        handler, requests = handlers[app]
        items = [(handler, request) for request in requests]
        # Untimed warmup pass: touch every code path once so the first
        # timed level is not paying lazy-allocation costs.
        _timed_request(items[0])
        for level in config.concurrency_levels:
            start = time.perf_counter()
            latencies = parallel_map(
                _timed_request,
                items,
                max_workers=level,
                backend="thread",
                span_name="serving.request",
            )
            wall = time.perf_counter() - start
            lat_ms = np.asarray(latencies) * 1e3
            results.append(
                ServingLevelResult(
                    app=app,
                    concurrency=level,
                    requests=len(items),
                    wall_s=wall,
                    p50_ms=float(np.percentile(lat_ms, 50)),
                    p95_ms=float(np.percentile(lat_ms, 95)),
                    throughput_rps=len(items) / wall,
                )
            )
    return results
