"""Run the whole experiment battery and render a combined report.

``run_all`` executes every table/figure driver and returns the rendered
text blocks; ``main`` prints them (``python -m repro.experiments.runner``).
The ``quick`` profile shrinks durations and the Table 1 network so the
battery finishes in a few minutes; the ``paper`` profile uses the
paper's full scales; the ``smoke`` profile shrinks everything to CI
scale (seconds) for the determinism harness.

With ``max_workers`` set, independent figure/table cells fan out over a
thread pool (the inner work is NumPy/LAPACK, which releases the GIL)
and shared simulated worlds are served from the process-wide scenario
cache, so each synthetic city is built once per run regardless of how
many figures read it.  Every driver derives its randomness from its own
config seed, so the rendered blocks are identical — byte for byte — in
serial and parallel runs, except the two studies that print *measured
wall-clock times* (``table2`` run times, streaming latencies), which
differ between any two runs by nature.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace
from repro.utils.parallel import parallel_map

from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    run_error_vs_integrity,
)
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_param_sensitivity,
)
from repro.experiments.robustness import RobustnessConfig, run_robustness
from repro.experiments.runtimes import RuntimeStudyConfig, run_runtime_study
from repro.experiments.sampling_study import SamplingStudyConfig, run_sampling_study
from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    run_streaming_study,
)
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)

PROFILES = ("smoke", "quick", "paper")


def _battery_jobs(
    profile: str, seed: int
) -> Dict[str, Callable[[], Dict[str, str]]]:
    """Independent figure/table cells by name, each returning its blocks.

    Every job builds its own config (seeded independently), so jobs can
    run in any order or concurrently without changing any output.  The
    ``smoke`` profile shrinks every study to a few seconds total — used
    by ``repro verify-determinism --smoke`` and CI, not for reading off
    paper numbers.
    """
    quick = profile == "quick"
    smoke = profile == "smoke"
    days = 0.5 if smoke else (3.0 if quick else 7.0)

    def integrity_job() -> Dict[str, str]:
        result = run_integrity_study(
            IntegrityStudyConfig(
                scale=0.05 if smoke else (0.1 if quick else 1.0),
                duration_days=0.5 if smoke else 1.0,
                seed=seed,
            )
        )
        return {
            "table1": result.render_table1(),
            "fig2": result.render_road_cdf(),
            "fig3": result.render_slot_cdf(),
        }

    def structure_job() -> Dict[str, str]:
        result = run_structure_study(StructureStudyConfig(days=days, seed=seed))
        return {
            "fig4": result.render_spectrum(),
            "fig5_to_7": result.render_reconstruction_summary(),
            "fig8": result.render_type_occurrence(),
        }

    def sweep_job(city: str, key: str) -> Callable[[], Dict[str, str]]:
        def job() -> Dict[str, str]:
            config = (
                ErrorVsIntegrityConfig(
                    city=city,
                    days=days,
                    granularities_s=(1800.0,),
                    integrities=(0.2, 0.5),
                    seed=seed,
                )
                if smoke
                else ErrorVsIntegrityConfig(city=city, days=days, seed=seed)
            )
            return {key: run_error_vs_integrity(config).render()}

        return job

    def cdf_job(city: str, key: str) -> Callable[[], Dict[str, str]]:
        def job() -> Dict[str, str]:
            config = (
                ErrorCdfConfig(
                    city=city, days=days, granularities_s=(1800.0,), seed=seed
                )
                if smoke
                else ErrorCdfConfig(city=city, days=days, seed=seed)
            )
            return {key: run_error_cdf(config).render()}

        return job

    def params_job() -> Dict[str, str]:
        config = (
            ParamSensitivityConfig(
                days=days,
                rank_sweep=(2, 4),
                lambda_sweep=(1.0, 10.0),
                lambda_sweep_rank=4,
                seed=seed,
            )
            if smoke
            else ParamSensitivityConfig(days=days, seed=seed)
        )
        params = run_param_sensitivity(config)
        return {"fig15": params.render_rank(), "fig16": params.render_lambda()}

    def selection_job(integ: float, key: str) -> Callable[[], Dict[str, str]]:
        def job() -> Dict[str, str]:
            selection = run_matrix_selection(
                MatrixSelectionConfig(days=days, integrity=integ, seed=seed)
            )
            return {key: selection.render()}

        return job

    def runtimes_job() -> Dict[str, str]:
        runtimes = run_runtime_study(RuntimeStudyConfig(days=days, seed=seed))
        return {"table2": runtimes.render()}

    def sampling_job() -> Dict[str, str]:
        sampling = run_sampling_study(
            SamplingStudyConfig(
                days=0.25 if smoke else (0.5 if quick else 1.0),
                fleet_sizes=(
                    (50,) if smoke else ((100, 250) if quick else (100, 250, 500, 1_000))
                ),
                reporting_intervals_s=(
                    (300.0,)
                    if smoke
                    else ((60.0, 300.0) if quick else (30.0, 120.0, 300.0))
                ),
                seed=seed,
            )
        )
        return {"sampling_extension": sampling.render()}

    def robustness_job() -> Dict[str, str]:
        config = (
            RobustnessConfig(
                days=days,
                noise_levels_kmh=(0.0, 2.0),
                bias_levels_kmh=(0.0,),
                seed=seed,
            )
            if smoke
            else RobustnessConfig(days=1.0 if quick else 3.0, seed=seed)
        )
        return {"robustness_extension": run_robustness(config).render()}

    def streaming_job() -> Dict[str, str]:
        streaming = run_streaming_study(
            StreamingStudyConfig(
                days=0.25 if smoke else (0.5 if quick else 1.0),
                num_vehicles=40 if smoke else (80 if quick else 150),
                seed=seed,
            )
        )
        return {"streaming_extension": streaming.render()}

    return {
        "integrity": integrity_job,
        "structure": structure_job,
        "sweep_shanghai": sweep_job("shanghai", "fig11"),
        "sweep_shenzhen": sweep_job("shenzhen", "fig12"),
        "cdf_shanghai": cdf_job("shanghai", "fig13"),
        "cdf_shenzhen": cdf_job("shenzhen", "fig14"),
        "params": params_job,
        "selection_020": selection_job(0.2, "fig17"),
        "selection_040": selection_job(0.4, "fig18"),
        "runtimes": runtimes_job,
        "sampling": sampling_job,
        "robustness": robustness_job,
        "streaming": streaming_job,
    }


def _named_job(item: Tuple[str, Callable[[], Dict[str, str]]]) -> Dict[str, str]:
    """Run one battery cell under a ``job.<name>`` span.

    The span shows up in run manifests (``jobs_from_spans``); while
    observability is off it is the shared no-op.
    """
    name, job = item
    with obs_trace.span(f"job.{name}"):
        return job()


def job_names(profile: str = "quick") -> Tuple[str, ...]:
    """The battery's job names, in submission order, for ``only=``."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    return tuple(_battery_jobs(profile, seed=0))


def run_all(
    profile: str = "quick",
    seed: int = 0,
    max_workers: Optional[int] = None,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, str]:
    """Execute every experiment; returns {section name: rendered text}.

    ``max_workers`` fans the independent cells out over a thread pool
    (``None``/``1`` = serial).  Results are identical either way; cells
    that share a simulated city deduplicate the build through the
    scenario cache.  ``only`` restricts the battery to the named jobs
    (see :func:`job_names`) without changing their outputs — used by
    ``repro verify-determinism`` to drop the wall-clock studies.
    """
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    jobs = _battery_jobs(profile, seed)
    if only is not None:
        unknown = [name for name in only if name not in jobs]
        if unknown:
            raise KeyError(f"unknown job(s) {unknown} (known: {list(jobs)})")
        wanted = set(only)
        jobs = {name: job for name, job in jobs.items() if name in wanted}
    with obs_trace.span("run_all", profile=profile, seed=seed, jobs=len(jobs)):
        results = parallel_map(
            _named_job,
            list(jobs.items()),
            max_workers=max_workers,
            backend="thread",
            span_name="runner.dispatch",
        )
    blocks: Dict[str, str] = {}
    for rendered in results:
        blocks.update(rendered)
    return blocks


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the battery and print every block."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=PROFILES, default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="thread-pool width for independent cells (default: serial)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="JOB",
        help="run only these named jobs (see repro.experiments.runner.job_names)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help=(
            "write a run manifest (JSON) here after the battery; enables "
            "observability for this run so the manifest carries spans"
        ),
    )
    args = parser.parse_args(argv)

    if args.manifest:
        obs_trace.enable()

    started = time.perf_counter()
    blocks = run_all(
        profile=args.profile,
        seed=args.seed,
        max_workers=args.max_workers,
        only=args.only,
    )
    for name, text in blocks.items():
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(text)
        print()
    print(f"total: {time.perf_counter() - started:.1f}s")

    if args.manifest:
        spans = obs_trace.collector().snapshot()
        payload = obs_manifest.build_manifest(
            "run-all",
            config={
                "profile": args.profile,
                "seed": args.seed,
                "max_workers": args.max_workers,
                "only": list(args.only) if args.only else [],
            },
            seed=args.seed,
            jobs=obs_manifest.jobs_from_spans(spans),
            spans=spans,
        )
        out = obs_manifest.write_manifest(payload, args.manifest)
        print(f"manifest: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
