"""Run the whole experiment battery and render a combined report.

``run_all`` executes every table/figure driver and returns the rendered
text blocks; ``main`` prints them (``python -m repro.experiments.runner``).
The ``quick`` profile shrinks durations and the Table 1 network so the
battery finishes in a few minutes; the ``paper`` profile uses the
paper's full scales.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    run_error_vs_integrity,
)
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_param_sensitivity,
)
from repro.experiments.robustness import RobustnessConfig, run_robustness
from repro.experiments.runtimes import RuntimeStudyConfig, run_runtime_study
from repro.experiments.sampling_study import SamplingStudyConfig, run_sampling_study
from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    run_streaming_study,
)
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)

PROFILES = ("quick", "paper")


def run_all(profile: str = "quick", seed: int = 0) -> Dict[str, str]:
    """Execute every experiment; returns {section name: rendered text}."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    quick = profile == "quick"
    days = 3.0 if quick else 7.0
    blocks: Dict[str, str] = {}

    integrity = run_integrity_study(
        IntegrityStudyConfig(
            scale=0.1 if quick else 1.0,
            duration_days=1.0,
            seed=seed,
        )
    )
    blocks["table1"] = integrity.render_table1()
    blocks["fig2"] = integrity.render_road_cdf()
    blocks["fig3"] = integrity.render_slot_cdf()

    structure = run_structure_study(StructureStudyConfig(days=days, seed=seed))
    blocks["fig4"] = structure.render_spectrum()
    blocks["fig5_to_7"] = structure.render_reconstruction_summary()
    blocks["fig8"] = structure.render_type_occurrence()

    for city, key in (("shanghai", "fig11"), ("shenzhen", "fig12")):
        sweep = run_error_vs_integrity(
            ErrorVsIntegrityConfig(city=city, days=days, seed=seed)
        )
        blocks[key] = sweep.render()

    for city, key in (("shanghai", "fig13"), ("shenzhen", "fig14")):
        cdf = run_error_cdf(ErrorCdfConfig(city=city, days=days, seed=seed))
        blocks[key] = cdf.render()

    params = run_param_sensitivity(ParamSensitivityConfig(days=days, seed=seed))
    blocks["fig15"] = params.render_rank()
    blocks["fig16"] = params.render_lambda()

    for integ, key in ((0.2, "fig17"), (0.4, "fig18")):
        selection = run_matrix_selection(
            MatrixSelectionConfig(days=days, integrity=integ, seed=seed)
        )
        blocks[key] = selection.render()

    runtimes = run_runtime_study(RuntimeStudyConfig(days=days, seed=seed))
    blocks["table2"] = runtimes.render()

    sampling = run_sampling_study(
        SamplingStudyConfig(
            days=0.5 if quick else 1.0,
            fleet_sizes=(100, 250) if quick else (100, 250, 500, 1_000),
            reporting_intervals_s=(60.0, 300.0) if quick else (30.0, 120.0, 300.0),
            seed=seed,
        )
    )
    blocks["sampling_extension"] = sampling.render()

    robustness = run_robustness(
        RobustnessConfig(days=1.0 if quick else 3.0, seed=seed)
    )
    blocks["robustness_extension"] = robustness.render()

    streaming = run_streaming_study(
        StreamingStudyConfig(
            days=0.5 if quick else 1.0,
            num_vehicles=80 if quick else 150,
            seed=seed,
        )
    )
    blocks["streaming_extension"] = streaming.render()
    return blocks


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the battery and print every block."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=PROFILES, default="quick")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    started = time.perf_counter()
    blocks = run_all(profile=args.profile, seed=args.seed)
    for name, text in blocks.items():
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(text)
        print()
    print(f"total: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
