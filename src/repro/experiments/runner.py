"""Run the whole experiment battery and render a combined report.

``run_all`` executes every table/figure driver and returns the rendered
text blocks; ``main`` prints them (``python -m repro.experiments.runner``).
The ``quick`` profile shrinks durations and the Table 1 network so the
battery finishes in a few minutes; the ``paper`` profile uses the
paper's full scales; the ``smoke`` profile shrinks everything to CI
scale (seconds) for the determinism harness.

With ``max_workers`` set, independent figure/table cells fan out over a
thread pool (the inner work is NumPy/LAPACK, which releases the GIL)
and shared simulated worlds are served from the process-wide scenario
cache, so each synthetic city is built once per run regardless of how
many figures read it.  Every driver derives its randomness from its own
config seed, so the rendered blocks are identical — byte for byte — in
serial and parallel runs, except the two studies that print *measured
wall-clock times* (``table2`` run times, streaming latencies), which
differ between any two runs by nature.

Incremental fabric: the battery is a DAG of content-addressed steps.
Each cell is a :class:`BatteryJob` that declares its *config* and the
scenario-cache keys it reads (its store inputs); with an
:class:`~repro.experiments.store.ArtifactStore` attached
(``run_all(store=...)`` / ``repro experiments --store``), a job whose key —
config hash plus input keys — is unchanged is *loaded* from disk
instead of re-run, and scenario builds persist through the store too.
The two wall-clock studies above need care: a cached copy of a
measured time is a stale number from some past run and machine, so
they are marked ``wall_clock=True`` and a store hit *annotates* their
rendered blocks with the recording timestamp — the reader always sees
whether a timing was measured by this run or served from the store
(``repro experiments --no-store`` re-measures).
A store-backed run also audits each rebuilt job against its declared
scenario inputs, so no job can read a simulated world it did not
declare (that would make its key lie about its dependencies).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace
from repro.utils.parallel import parallel_map

from repro.experiments.error_cdf import ErrorCdfConfig, run_error_cdf
from repro.experiments.error_vs_integrity import (
    ErrorVsIntegrityConfig,
    run_error_vs_integrity,
)
from repro.experiments.integrity_study import (
    IntegrityStudyConfig,
    run_integrity_study,
)
from repro.experiments.matrix_selection_study import (
    MatrixSelectionConfig,
    run_matrix_selection,
)
from repro.experiments.param_sensitivity import (
    ParamSensitivityConfig,
    run_param_sensitivity,
)
from repro.experiments.robustness import RobustnessConfig, run_robustness
from repro.experiments.runtimes import RuntimeStudyConfig, run_runtime_study
from repro.experiments.sampling_study import SamplingStudyConfig, run_sampling_study
from repro.experiments.scenario_cache import (
    GLOBAL_SCENARIO_CACHE,
    record_scenario_accesses,
    scenario_key,
)
from repro.experiments.store import ArtifactStore, default_store_root
from repro.experiments.streaming_study import (
    StreamingStudyConfig,
    run_streaming_study,
)
from repro.experiments.structure_study import (
    StructureStudyConfig,
    run_structure_study,
)

PROFILES = ("smoke", "quick", "paper")


@dataclass(frozen=True)
class BatteryJob:
    """One battery cell: a runnable plus its content-address metadata.

    ``config`` is the cell's full configuration (a dataclass; hashed
    canonically for the store key) and ``scenarios`` the scenario-cache
    field dicts the cell reads — its declared store inputs.  The
    dataclass is callable so test doubles and the pre-store call sites
    (``job()``) keep working unchanged.

    ``wall_clock=True`` marks cells whose rendered blocks embed
    *measured wall-clock time* (Table 2 runtimes, streaming latencies):
    a cached copy of such a block is a stale measurement from some past
    run and machine, so a store hit prefixes each block with an
    annotation carrying the recording timestamp (see
    :func:`_annotate_cached_timings`) instead of presenting the cached
    numbers as this run's output.
    """

    name: str
    config: Any
    run: Callable[[], Dict[str, str]]
    scenarios: Tuple[Mapping[str, Any], ...] = field(default=())
    wall_clock: bool = False

    def __call__(self) -> Dict[str, str]:
        return self.run()

    def scenario_keys(self) -> Tuple[str, ...]:
        """In-memory scenario-cache keys of the declared inputs."""
        return tuple(scenario_key(fields) for fields in self.scenarios)


def _city_truth_fields(city: str, days: float, seed: int) -> Dict[str, Any]:
    """The scenario-cache key fields of one ``build_city_truth`` world."""
    return {"kind": "city_truth", "city": city, "days": days, "seed": seed}


AnyJob = Union[BatteryJob, Callable[[], Dict[str, str]]]


def _battery_jobs(profile: str, seed: int) -> Dict[str, AnyJob]:
    """Independent figure/table cells by name, each returning its blocks.

    Every job builds its own config (seeded independently), so jobs can
    run in any order or concurrently without changing any output.  The
    ``smoke`` profile shrinks every study to a few seconds total — used
    by ``repro verify-determinism --smoke`` and CI, not for reading off
    paper numbers.
    """
    quick = profile == "quick"
    smoke = profile == "smoke"
    days = 0.5 if smoke else (3.0 if quick else 7.0)

    integrity_config = IntegrityStudyConfig(
        scale=0.05 if smoke else (0.1 if quick else 1.0),
        duration_days=0.5 if smoke else 1.0,
        seed=seed,
    )

    def integrity_job() -> Dict[str, str]:
        result = run_integrity_study(integrity_config)
        return {
            "table1": result.render_table1(),
            "fig2": result.render_road_cdf(),
            "fig3": result.render_slot_cdf(),
        }

    structure_config = StructureStudyConfig(days=days, seed=seed)

    def structure_job() -> Dict[str, str]:
        result = run_structure_study(structure_config)
        return {
            "fig4": result.render_spectrum(),
            "fig5_to_7": result.render_reconstruction_summary(),
            "fig8": result.render_type_occurrence(),
        }

    def sweep_job(city: str, key: str) -> BatteryJob:
        config = (
            ErrorVsIntegrityConfig(
                city=city,
                days=days,
                granularities_s=(1800.0,),
                integrities=(0.2, 0.5),
                seed=seed,
            )
            if smoke
            else ErrorVsIntegrityConfig(city=city, days=days, seed=seed)
        )

        def job() -> Dict[str, str]:
            return {key: run_error_vs_integrity(config).render()}

        return BatteryJob(
            name=f"sweep_{city}",
            config=config,
            run=job,
            scenarios=(_city_truth_fields(city, config.days, config.seed),),
        )

    def cdf_job(city: str, key: str) -> BatteryJob:
        config = (
            ErrorCdfConfig(city=city, days=days, granularities_s=(1800.0,), seed=seed)
            if smoke
            else ErrorCdfConfig(city=city, days=days, seed=seed)
        )

        def job() -> Dict[str, str]:
            return {key: run_error_cdf(config).render()}

        return BatteryJob(
            name=f"cdf_{city}",
            config=config,
            run=job,
            scenarios=(_city_truth_fields(city, config.days, config.seed),),
        )

    params_config = (
        ParamSensitivityConfig(
            days=days,
            rank_sweep=(2, 4),
            lambda_sweep=(1.0, 10.0),
            lambda_sweep_rank=4,
            seed=seed,
        )
        if smoke
        else ParamSensitivityConfig(days=days, seed=seed)
    )

    def params_job() -> Dict[str, str]:
        params = run_param_sensitivity(params_config)
        return {"fig15": params.render_rank(), "fig16": params.render_lambda()}

    def selection_job(integ: float, key: str, suffix: str) -> BatteryJob:
        config = MatrixSelectionConfig(days=days, integrity=integ, seed=seed)

        def job() -> Dict[str, str]:
            return {key: run_matrix_selection(config).render()}

        return BatteryJob(
            name=f"selection_{suffix}",
            config=config,
            run=job,
            scenarios=(
                _city_truth_fields(config.city, config.days, config.seed),
            ),
        )

    runtimes_config = RuntimeStudyConfig(days=days, seed=seed)

    def runtimes_job() -> Dict[str, str]:
        runtimes = run_runtime_study(runtimes_config)
        return {"table2": runtimes.render()}

    sampling_config = SamplingStudyConfig(
        days=0.25 if smoke else (0.5 if quick else 1.0),
        fleet_sizes=(
            (50,) if smoke else ((100, 250) if quick else (100, 250, 500, 1_000))
        ),
        reporting_intervals_s=(
            (300.0,) if smoke else ((60.0, 300.0) if quick else (30.0, 120.0, 300.0))
        ),
        seed=seed,
    )

    def sampling_job() -> Dict[str, str]:
        sampling = run_sampling_study(sampling_config)
        return {"sampling_extension": sampling.render()}

    robustness_config = (
        RobustnessConfig(
            days=days,
            noise_levels_kmh=(0.0, 2.0),
            bias_levels_kmh=(0.0,),
            seed=seed,
        )
        if smoke
        else RobustnessConfig(days=1.0 if quick else 3.0, seed=seed)
    )

    def robustness_job() -> Dict[str, str]:
        return {"robustness_extension": run_robustness(robustness_config).render()}

    streaming_config = StreamingStudyConfig(
        days=0.25 if smoke else (0.5 if quick else 1.0),
        num_vehicles=40 if smoke else (80 if quick else 150),
        seed=seed,
    )

    def streaming_job() -> Dict[str, str]:
        streaming = run_streaming_study(streaming_config)
        return {"streaming_extension": streaming.render()}

    return {
        "integrity": BatteryJob("integrity", integrity_config, integrity_job),
        "structure": BatteryJob("structure", structure_config, structure_job),
        "sweep_shanghai": sweep_job("shanghai", "fig11"),
        "sweep_shenzhen": sweep_job("shenzhen", "fig12"),
        "cdf_shanghai": cdf_job("shanghai", "fig13"),
        "cdf_shenzhen": cdf_job("shenzhen", "fig14"),
        "params": BatteryJob(
            "params",
            params_config,
            params_job,
            scenarios=(
                _city_truth_fields(
                    params_config.city, params_config.days, params_config.seed
                ),
            ),
        ),
        "selection_020": selection_job(0.2, "fig17", "020"),
        "selection_040": selection_job(0.4, "fig18", "040"),
        "runtimes": BatteryJob(
            "runtimes",
            runtimes_config,
            runtimes_job,
            scenarios=(
                _city_truth_fields(
                    runtimes_config.city,
                    runtimes_config.days,
                    runtimes_config.seed,
                ),
            ),
            # Table 2 is measured wall-clock time; a store hit must be
            # visibly annotated as a cached measurement.
            wall_clock=True,
        ),
        "sampling": BatteryJob("sampling", sampling_config, sampling_job),
        "robustness": BatteryJob(
            "robustness",
            robustness_config,
            robustness_job,
            scenarios=(
                _city_truth_fields(
                    robustness_config.city,
                    robustness_config.days,
                    robustness_config.seed,
                ),
            ),
        ),
        # Streaming latencies are measured wall-clock time too (see
        # ``wall_clock`` on BatteryJob).
        "streaming": BatteryJob(
            "streaming", streaming_config, streaming_job, wall_clock=True
        ),
    }


#: First line of every wall-clock block served from the store (see
#: :func:`_annotate_cached_timings`); downstream checks key off it.
CACHED_TIMING_MARKER = "[artifact store]"


def _annotate_cached_timings(
    blocks: Dict[str, str], recorded_utc: str
) -> Dict[str, str]:
    """Prefix cached wall-clock blocks with a staleness annotation.

    Timing numbers loaded from the store were measured by some past run
    on some past machine; presenting them bare would pass them off as
    this run's output.  The annotation makes the provenance explicit in
    the rendered report and tells the reader how to re-measure.
    """
    note = (
        f"{CACHED_TIMING_MARKER} cached measurement"
        f"{f' recorded {recorded_utc}' if recorded_utc else ''}; "
        "wall-clock numbers below are not from this run "
        "(repro experiments --no-store re-measures)"
    )
    return {block: f"{note}\n{text}" for block, text in blocks.items()}


def _run_store_job(
    name: str, job: BatteryJob, store: ArtifactStore
) -> Dict[str, str]:
    """Load the cell from the store, or rebuild, audit, and persist it.

    The job key covers the cell's config *and* the store keys of its
    declared scenario inputs, so a changed scenario invalidates every
    cell that reads it.  On a rebuild the scenario accesses the job
    actually makes are recorded and checked against the declaration —
    an undeclared read is a hard error, because it means the key does
    not cover everything the output depends on.
    """
    scenario_store_keys = [
        store.step_key("scenario", fields) for fields in job.scenarios
    ]
    key = store.step_key(
        "job",
        {"name": name, "config": job.config},
        inputs=scenario_store_keys,
    )
    with obs_trace.span(f"job.{name}", key=key[:12]) as span:
        hit, value = store.get(key)
        if hit:
            span.set(store="hit")
            if job.wall_clock:
                meta = store.meta(key) or {}
                value = _annotate_cached_timings(
                    value, str(meta.get("created_utc", ""))
                )
            return value  # type: ignore[no-any-return]
        span.set(store="miss")
        declared = set(job.scenario_keys())
        with record_scenario_accesses() as accesses:
            value = job.run()
        undeclared = sorted(
            {
                repr(access["fields"])
                for access in accesses
                if access["key"] not in declared
            }
        )
        if undeclared:
            raise RuntimeError(
                f"battery job {name!r} read scenario(s) it does not declare "
                f"as store inputs: {', '.join(undeclared)}; add them to the "
                f"job's BatteryJob.scenarios so its store key covers them"
            )
        # repro-lint: disable-next-line=param-mutation
        store.put(key, value, step=f"job.{name}")  # persists, not np.put
    return value


def _named_job(
    item: Tuple[str, AnyJob, Optional[ArtifactStore]]
) -> Dict[str, str]:
    """Run one battery cell under a ``job.<name>`` span.

    The span shows up in run manifests (``jobs_from_spans``), carrying
    a ``store=hit|miss`` attribute on store-backed runs; while
    observability is off it is the shared no-op.  Plain callables (test
    doubles) run directly; the store path needs a :class:`BatteryJob`.
    """
    name, job, store = item
    if store is not None and isinstance(job, BatteryJob):
        return _run_store_job(name, job, store)
    with obs_trace.span(f"job.{name}"):
        return job()


def job_names(profile: str = "quick") -> Tuple[str, ...]:
    """The battery's job names, in submission order, for ``only=``."""
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    return tuple(_battery_jobs(profile, seed=0))


def run_all(
    profile: str = "quick",
    seed: int = 0,
    max_workers: Optional[int] = None,
    only: Optional[Sequence[str]] = None,
    store: Optional[ArtifactStore] = None,
) -> Dict[str, str]:
    """Execute every experiment; returns {section name: rendered text}.

    ``max_workers`` fans the independent cells out over a thread pool
    (``None``/``1`` = serial).  Results are identical either way; cells
    that share a simulated city deduplicate the build through the
    scenario cache.  ``only`` restricts the battery to the named jobs
    (see :func:`job_names`) without changing their outputs — used by
    ``repro verify-determinism`` to drop the wall-clock studies.

    ``store`` turns the run incremental: each cell's rendered blocks
    are persisted in the artifact store under a content key (config +
    scenario inputs), unchanged cells are loaded instead of re-run, and
    scenario builds persist through the store too.  The scenario cache
    is attached to the store for the duration of the call.
    """
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    jobs = _battery_jobs(profile, seed)
    if only is not None:
        unknown = [name for name in only if name not in jobs]
        if unknown:
            raise KeyError(f"unknown job(s) {unknown} (known: {list(jobs)})")
        wanted = set(only)
        jobs = {name: job for name, job in jobs.items() if name in wanted}
    if store is not None:
        GLOBAL_SCENARIO_CACHE.set_persistent_store(store)
    try:
        with obs_trace.span(
            "run_all",
            profile=profile,
            seed=seed,
            jobs=len(jobs),
            store=store is not None,
        ):
            # The access recorder is threading.local state: each pool
            # worker mutates only its own per-thread recorder stack, so
            # there is no cross-worker race to flag here.
            # repro-lint: disable-next-line=worker-shared-state
            results = parallel_map(
                _named_job,
                [(name, job, store) for name, job in jobs.items()],
                max_workers=max_workers,
                backend="thread",
                span_name="runner.dispatch",
            )
    finally:
        if store is not None:
            GLOBAL_SCENARIO_CACHE.set_persistent_store(None)
    blocks: Dict[str, str] = {}
    for rendered in results:
        blocks.update(rendered)
    return blocks


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the battery and print every block."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=PROFILES, default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="thread-pool width for independent cells (default: serial)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="JOB",
        help="run only these named jobs (see repro.experiments.runner.job_names)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help=(
            "write a run manifest (JSON) here after the battery; enables "
            "observability for this run so the manifest carries spans"
        ),
    )
    parser.add_argument(
        "--store",
        action="store_true",
        default=False,
        help=(
            "persist and reuse step outputs through the on-disk artifact "
            "store (see repro.experiments.store); unchanged cells are "
            "loaded instead of re-run"
        ),
    )
    parser.add_argument(
        "--no-store",
        dest="store",
        action="store_false",
        help="force a from-scratch run even when a store directory exists",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="artifact store directory (default: $REPRO_STORE_DIR or .repro-store)",
    )
    args = parser.parse_args(argv)

    if args.manifest:
        obs_trace.enable()

    store: Optional[ArtifactStore] = None
    if args.store:
        store = ArtifactStore(root=args.store_dir or default_store_root())

    started = time.perf_counter()
    blocks = run_all(
        profile=args.profile,
        seed=args.seed,
        max_workers=args.max_workers,
        only=args.only,
        store=store,
    )
    for name, text in blocks.items():
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(text)
        print()
    print(f"total: {time.perf_counter() - started:.1f}s")
    if store is not None:
        stats = store.stats
        print(store.render_stats())
        print(
            f"rebuilt {stats['misses']} of "
            f"{stats['hits'] + stats['misses']} step(s)"
        )

    if args.manifest:
        spans = obs_trace.collector().snapshot()
        payload = obs_manifest.build_manifest(
            "run-all",
            config={
                "profile": args.profile,
                "seed": args.seed,
                "max_workers": args.max_workers,
                "only": list(args.only) if args.only else [],
                "store": bool(store),
            },
            seed=args.seed,
            jobs=obs_manifest.jobs_from_spans(spans),
            spans=spans,
        )
        out = obs_manifest.write_manifest(payload, args.manifest)
        print(f"manifest: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
