"""Streaming-vs-batch study (the paper's online future-work item).

Quantifies what the sliding-window online extension gives up relative
to the offline algorithm, and what the warm start buys:

* **accuracy** — per-slot NMAE of the live estimates (published the
  moment each slot closes, using only past data) vs the offline
  completion of the full matrix (which sees the future too);
* **cost** — ALS sweeps per update with and without warm starting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.streaming import StreamingEstimator
from repro.core.tcm import TimeGrid
from repro.experiments.config import make_completer
from repro.experiments.reporting import format_table
from repro.metrics.errors import nmae
from repro.mobility.fleet import FleetConfig, FleetSimulator
from repro.probes.aggregation import aggregate_reports
from repro.roadnet.generators import grid_city
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.rng import spawn_rngs


@dataclass
class StreamingStudyConfig:
    """Configuration of the streaming extension study."""

    days: float = 1.0
    slot_s: float = 900.0
    num_vehicles: int = 150
    grid_rows: int = 6
    grid_cols: int = 6
    window_slots: int = 24
    warm_iterations: int = 8
    seed: int = 0


@dataclass
class StreamingStudyResult:
    """Accuracy and cost comparison.

    Attributes
    ----------
    streaming_nmae:
        Median per-slot NMAE of live estimates vs ground truth.
    batch_nmae:
        NMAE of the offline completion over the same cells.
    warm_seconds, cold_seconds:
        Wall-clock totals for the streaming pass with warm starts vs
        cold restarts each slot.
    num_slots:
        Slots processed.
    """

    streaming_nmae: float
    batch_nmae: float
    warm_seconds: float
    cold_seconds: float
    num_slots: int
    config: StreamingStudyConfig

    @property
    def speedup(self) -> float:
        if self.warm_seconds == 0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def render(self) -> str:
        rows = [
            ["streaming (live, warm-started)", f"{self.streaming_nmae:.4f}",
             f"{self.warm_seconds:.2f}s"],
            ["streaming (live, cold restarts)", "same estimates",
             f"{self.cold_seconds:.2f}s"],
            ["offline batch (sees full window)", f"{self.batch_nmae:.4f}", "-"],
        ]
        return format_table(
            ["estimator", "median slot NMAE", "stream time"],
            rows,
            title=(
                f"Streaming extension study ({self.num_slots} slots, "
                f"warm-start speedup {self.speedup:.1f}x)"
            ),
        )


def _run_stream(
    reports, segment_ids, config: StreamingStudyConfig, warm: bool
) -> List:
    streamer = StreamingEstimator(
        segment_ids=segment_ids,
        slot_s=config.slot_s,
        window_slots=config.window_slots,
        warm_iterations=config.warm_iterations if warm else 60,
        cold_iterations=60,
        lam=10.0,
        seed=config.seed,
    )
    if not warm:
        # Disable warm starting; every solve then pays the cold
        # iteration budget.
        streamer._window.warm_start = False
    streamer.ingest_many(list(reports))
    streamer.flush()
    return streamer.estimates


def run_streaming_study(
    config: Optional[StreamingStudyConfig] = None,
) -> StreamingStudyResult:
    """Run the live-vs-batch comparison on one simulated day."""
    config = config or StreamingStudyConfig()
    net_rng, traffic_rng, fleet_rng = spawn_rngs(config.seed, 3)
    network = grid_city(config.grid_rows, config.grid_cols, seed=net_rng)
    grid = TimeGrid.over_days(config.days, config.slot_s)
    truth = GroundTruthTraffic.synthesize(network, grid, seed=traffic_rng)
    reports = FleetSimulator(
        truth, FleetConfig(num_vehicles=config.num_vehicles), seed=fleet_rng
    ).run()

    started = time.perf_counter()
    warm_estimates = _run_stream(reports, network.segment_ids, config, warm=True)
    warm_seconds = time.perf_counter() - started

    started = time.perf_counter()
    _run_stream(reports, network.segment_ids, config, warm=False)
    cold_seconds = time.perf_counter() - started

    x = truth.tcm.values
    slot_errors = [
        nmae(x[i][None], est.speeds_kmh[None])
        for i, est in enumerate(warm_estimates)
        if i < x.shape[0]
    ]
    streaming_nmae = float(np.median(slot_errors))

    measured = aggregate_reports(reports, grid, network.segment_ids)
    batch = make_completer(seed=config.seed).complete(
        measured.values, measured.mask
    )
    batch_nmae = nmae(x, batch.estimate)

    return StreamingStudyResult(
        streaming_nmae=streaming_nmae,
        batch_nmae=batch_nmae,
        warm_seconds=warm_seconds,
        cold_seconds=cold_seconds,
        num_slots=len(warm_estimates),
        config=config,
    )
