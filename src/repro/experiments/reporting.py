"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _fmt(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render figure-style series (one x column, one column per series)."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_values)} x values"
            )
    rows = [
        [x] + [series[name][i] for name in names]
        for i, x in enumerate(x_values)
    ]
    return format_table([x_label] + names, rows, precision=precision, title=title)
