"""Performance benchmark harness (``repro bench``).

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this module is the measuring stick.  It times the hot paths —
Algorithm 1 under each inner solver and each registered solver backend
(float64 and float32), Algorithm 2 tuning, the probe ingestion pipeline
(map-matching + aggregation), and the baselines — across matrix sizes
and integrities, verifies that every vectorized path agrees with its
scalar reference to :data:`EQUIVALENCE_TOL` (float32 backends to
:data:`repro.core.backends.FLOAT32_RTOL` relative), and emits a
machine-readable ``BENCH_*.json`` so speedups are *recorded*, not
anecdotal.

Two profiles:

* ``smoke=False`` (default) — the paper-scale workload: the Shanghai
  one-week 15-minute matrix shape (672 x 221) at 20% and 40% integrity
  plus a half-scale case, and a 120k-report ingestion case.  The
  headline numbers are the batched-vs-loop solver speedup at
  672 x 221 / 20% and the vectorized-vs-scalar ingestion speedup.
* ``smoke=True`` — a seconds-fast configuration for CI: small matrices,
  few sweeps, a small ingestion case, same record schema and the same
  equivalence assertions.

The ``sharded`` suite (schema 4) benchmarks the metropolitan path: a
monolithic Algorithm 1 solve of the full shanghai-inner-like matrix
(672 x 5,812 at 20% integrity) against
:class:`repro.scale.ShardedCompleter`'s multilevel tiled solve, plus a
million-report columnar ingestion run through
:class:`repro.scale.ShardedStreamingEstimator`.  Its headline numbers —
sharded-vs-monolithic speedup and NMAE delta — are recorded under the
payload's top-level ``sharded`` key and gated by
``benchmarks/perf/test_bench_sharded.py`` against the committed
baseline.

A committed baseline can gate regressions: :func:`compare_payloads`
diffs two reports record by record and flags any tracked case whose
wall time regressed beyond :data:`REGRESSION_THRESHOLD`; the CLI's
``repro bench --compare BENCH_<date>.json`` exits non-zero on any flag
(wired into the CI perf-smoke job).

Usage::

    repro bench                 # full profile, writes BENCH_<date>.json
    repro bench --smoke         # CI profile
    repro bench --output x.json # explicit output path
    repro bench --smoke --compare BENCH_smoke.json  # regression gate

or programmatically::

    from repro.experiments.perf_bench import run_perf_bench
    report = run_perf_bench(smoke=True)
    print(report.render())
    report.write_json("BENCH_smoke.json")
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from datetime import date
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import MSSA, CorrelationKNN, NaiveKNN
from repro.core.backends import (
    FLOAT32_RTOL,
    BackendUnavailable,
    available_backend_names,
    get_backend,
)
from repro.core.completion import SOLVERS, CompressiveSensingCompleter
from repro.core.tcm import TimeGrid
from repro.core.tuning import GeneticTuner
from repro.datasets.masks import random_integrity_mask
from repro.experiments.reporting import format_table
from repro.metrics.errors import nmae
from repro.probes.aggregation import aggregate_reports
from repro.probes.mapmatch import MapMatcher
from repro.probes.report import ReportBatch
from repro.roadnet.generators import grid_city
from repro.utils.parallel import available_workers
from repro.utils.rng import ensure_rng

# Every vectorized path must match its scalar reference at least this
# tightly (max abs difference over every cell of the final output).
EQUIVALENCE_TOL = 1e-8

# Shanghai one-week TCM at 15-minute granularity: 672 slots x 221
# segments — the paper's (and the ROADMAP's) headline shape.
HEADLINE_SHAPE = (672, 221)
HEADLINE_INTEGRITY = 0.2

# A tracked case regresses when its wall time grows beyond this factor
# over the committed baseline (``repro bench --compare``).
REGRESSION_THRESHOLD = 1.5

# Records faster than this in BOTH runs are ignored by the comparison:
# sub-50ms timings are scheduler noise, not signal.
MIN_COMPARE_WALL_S = 0.05

# p95 latencies below this in BOTH runs are not gated: a couple of
# milliseconds of tail is thread-scheduler jitter on a shared runner.
MIN_COMPARE_P95_MS = 2.0


@dataclass(frozen=True)
class BenchCase:
    """One (matrix shape, integrity) workload."""

    m: int
    n: int
    integrity: float

    @property
    def name(self) -> str:
        return f"{self.m}x{self.n}@{self.integrity:.2f}"


@dataclass(frozen=True)
class BenchRecord:
    """One timed run.

    ``wall_s`` is the best (minimum) of ``repeats`` timings — the
    standard way to suppress scheduler noise when the quantity of
    interest is the cost of the computation itself.
    """

    case: str
    algorithm: str
    wall_s: float
    repeats: int
    sweeps: Optional[int] = None
    objective: Optional[float] = None
    nmae_missing: Optional[float] = None
    backend: str = "numpy"
    # Serving-suite fields (schema 5); None on compute records.
    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    throughput_rps: Optional[float] = None


@dataclass
class BenchReport:
    """All records of one harness run plus derived summaries."""

    records: List[BenchRecord] = field(default_factory=list)
    speedups: Dict[str, float] = field(default_factory=dict)
    equivalence_max_abs_diff: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Union[str, int, float, bool]] = field(default_factory=dict)
    sharded: Dict[str, object] = field(default_factory=dict)
    serving: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form (schema version included).

        Schema 2 added the ingestion suite and the scalar-reference
        baseline records.  Schema 3 adds the ``backend`` field to every
        record (absent means ``"numpy"``), so comparisons accept
        schema-2 baselines unchanged.  Schema 4 adds the top-level
        ``sharded`` summary (metropolitan sharded-vs-monolithic speedup,
        accuracy delta, and streaming ingestion throughput) alongside
        the suite's ``cs-monolithic`` / ``cs-sharded`` records; older
        baselines simply lack the key.  Schema 5 adds the serving-load
        suite: per-record ``p50_ms``/``p95_ms``/``throughput_rps``
        (``None`` on compute records) and the top-level ``serving``
        summary; the p95 columns join the ``--compare`` gate.
        """
        return {
            "schema": 5,
            "meta": self.meta,
            "records": [asdict(r) for r in self.records],
            "speedups": self.speedups,
            "equivalence_max_abs_diff": self.equivalence_max_abs_diff,
            "equivalence_tol": EQUIVALENCE_TOL,
            "sharded": self.sharded,
            "serving": self.serving,
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        out = Path(path)
        out.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n")
        return out

    def render_sharded(self) -> List[str]:
        """Human-readable lines for the ``sharded`` summary (if run)."""
        if not self.sharded:
            return []
        lines = [
            f"sharded: {self.sharded['case']} over "
            f"{self.sharded['shards']} shards (halo "
            f"{self.sharded['halo']}): {self.sharded['speedup']:.2f}x vs "
            f"monolithic, NMAE delta {self.sharded['nmae_delta']:.4f}"
        ]
        ingest = self.sharded.get("ingestion")
        if isinstance(ingest, dict):
            lines.append(
                f"sharded ingestion: {ingest['reports']:,} reports in "
                f"{ingest['wall_s']:.2f}s "
                f"({ingest['reports_per_s']:,.0f}/s), "
                f"{ingest['recompletions']} re-completions, "
                f"{ingest['recompletions_skipped']} skipped"
            )
        return lines

    def render_serving(self) -> List[str]:
        """Human-readable lines for the serving-suite records (if run)."""
        lines = []
        for r in self.records:
            if r.p95_ms is None or r.throughput_rps is None:
                continue
            lines.append(
                f"serving {r.case}/{r.algorithm}: "
                f"p50 {r.p50_ms:.3f} ms, p95 {r.p95_ms:.3f} ms, "
                f"{r.throughput_rps:,.0f} req/s"
            )
        return lines

    def render(self) -> str:
        headers = [
            "Case",
            "Algorithm",
            "Backend",
            "Wall (s)",
            "Sweeps",
            "NMAE (missing)",
        ]
        rows = []
        for r in self.records:
            rows.append(
                [
                    r.case,
                    r.algorithm,
                    r.backend,
                    f"{r.wall_s:.4f}",
                    "-" if r.sweeps is None else str(r.sweeps),
                    "-" if r.nmae_missing is None else f"{r.nmae_missing:.4f}",
                ]
            )
        table = format_table(headers, rows, title="Performance benchmark")
        lines = [table, ""]
        for key, speedup in self.speedups.items():
            if key.startswith("sharded-"):
                continue  # render_sharded() owns these lines
            diff = self.equivalence_max_abs_diff.get(key)
            suffix = "" if diff is None else f" (max abs output diff {diff:.2e})"
            lines.append(
                f"{key}: vectorized vs reference speedup {speedup:.1f}x{suffix}"
            )
        lines.extend(self.render_sharded())
        lines.extend(self.render_serving())
        return "\n".join(lines)


def default_cases(smoke: bool = False) -> List[BenchCase]:
    """The benchmark workload grid for a profile."""
    if smoke:
        return [BenchCase(96, 40, 0.3)]
    hm, hn = HEADLINE_SHAPE
    return [
        BenchCase(hm, hn, HEADLINE_INTEGRITY),
        BenchCase(hm, hn, 0.4),
        BenchCase(hm // 2, hn // 2, HEADLINE_INTEGRITY),
    ]


def _make_truth(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """A speed-like low-rank-plus-noise matrix (km/h scale).

    Rank-4 structure mimics the few dominant eigenflows of a real TCM
    (Section 3.2); the noise floor keeps the completion non-trivial.
    """
    base = rng.standard_normal((m, 4)) @ rng.standard_normal((4, n))
    noise = rng.standard_normal((m, n))
    return 35.0 + 4.0 * base + 0.5 * noise


def _time_best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs and the last result."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def default_ingestion_reports(smoke: bool = False) -> int:
    """Report count of the ingestion case (paper scale unless smoke)."""
    return 5_000 if smoke else 120_000


def _make_probe_workload(
    num_reports: int, rng: np.random.Generator
) -> Tuple[MapMatcher, ReportBatch, TimeGrid]:
    """A synthetic day of probe reports over a mid-size grid city.

    Positions are uniform over the (padded) network extent, so some
    reports fall outside every candidate ring; speeds span idle to
    highway so the aggregation's stationary filter has work to do;
    half the reports carry a GPS heading, half do not.
    """
    network = grid_city(8, 8, block_m=250.0, seed=0)
    x0, y0, x1, y1 = network.bounding_box()
    pad = 120.0
    xs = rng.uniform(x0 - pad, x1 + pad, num_reports)
    ys = rng.uniform(y0 - pad, y1 + pad, num_reports)
    times = rng.uniform(0.0, 86_400.0, num_reports)
    speeds = rng.uniform(0.0, 70.0, num_reports)
    headings = rng.uniform(0.0, 360.0, num_reports)
    headings[rng.random(num_reports) < 0.5] = np.nan
    vehicles = rng.integers(0, max(1, num_reports // 40), num_reports)
    batch = ReportBatch.from_columns(
        vehicles, times, xs, ys, speeds, headings_deg=headings
    )
    grid = TimeGrid.over_days(1.0, 900.0)
    return MapMatcher(network), batch, grid


def _run_ingestion_suite(
    report: BenchReport,
    num_reports: int,
    repeats: int,
    rng: np.random.Generator,
    strict: bool,
) -> None:
    """Time vectorized vs scalar map-match + aggregation, check equality.

    The scalar references are timed once (they are the slow side by an
    order of magnitude; best-of repetition buys nothing there).
    """
    case = f"ingest-{num_reports // 1000}k"
    matcher, batch, grid = _make_probe_workload(num_reports, rng)
    segment_ids = matcher.network.segment_ids

    mm_wall, matched = _time_best(
        lambda: matcher.match_batch(batch), repeats
    )
    mm_wall_ref, matched_ref = _time_best(
        lambda: matcher.match_batch(batch, method="scalar"), 1
    )
    assert isinstance(matched, ReportBatch)
    assert isinstance(matched_ref, ReportBatch)
    mm_diff = float(
        np.abs(matched.segment_ids - matched_ref.segment_ids).max(initial=0)
    )
    match_rate = float(np.mean(matched.segment_ids >= 0))
    report.records.append(
        BenchRecord(case, "mapmatch-vectorized", mm_wall, repeats)
    )
    report.records.append(BenchRecord(case, "mapmatch-scalar", mm_wall_ref, 1))

    agg_wall, tcm = _time_best(
        lambda: aggregate_reports(matched, grid, segment_ids), repeats
    )
    agg_wall_ref, tcm_ref = _time_best(
        lambda: aggregate_reports(matched, grid, segment_ids, method="scalar"),
        1,
    )
    agg_diff = float(np.abs(tcm.values - tcm_ref.values).max())  # type: ignore[union-attr]
    if not np.array_equal(tcm.mask, tcm_ref.mask):  # type: ignore[union-attr]
        agg_diff = float("inf")
    report.records.append(
        BenchRecord(case, "aggregate-bincount", agg_wall, repeats)
    )
    report.records.append(BenchRecord(case, "aggregate-scalar", agg_wall_ref, 1))

    report.speedups[f"{case}-mapmatch"] = mm_wall_ref / mm_wall
    report.speedups[f"{case}-aggregate"] = agg_wall_ref / agg_wall
    report.speedups[f"{case}-pipeline"] = (mm_wall_ref + agg_wall_ref) / (
        mm_wall + agg_wall
    )
    report.equivalence_max_abs_diff[f"{case}-mapmatch"] = mm_diff
    report.equivalence_max_abs_diff[f"{case}-aggregate"] = agg_diff
    report.meta[f"{case}-match-rate"] = round(match_rate, 4)
    if strict and (mm_diff > 0 or agg_diff > EQUIVALENCE_TOL):
        raise RuntimeError(
            f"ingestion vectorized/scalar mismatch on {case}: "
            f"map-match diff {mm_diff:g}, aggregation diff {agg_diff:.3e}"
        )


def default_sharded_reports(smoke: bool = False) -> int:
    """Report count of the sharded streaming-ingestion case."""
    return 20_000 if smoke else 1_000_000


def _run_sharded_suite(
    report: BenchReport,
    smoke: bool,
    seed: int,
    max_workers: Optional[int],
    num_reports: int,
    rng: np.random.Generator,
) -> None:
    """Benchmark the metropolitan sharded path against the monolith.

    Full profile: the shanghai-inner-like network (5,812 segments), a
    one-week 15-minute truth matrix at 20% integrity, a 16-tile grid
    partition with a 1-hop halo, and a million-report columnar stream.
    Smoke swaps in the 221-segment downtown network with the same
    record/summary schema.  Each side is timed once — the monolithic
    metro solve is far too slow to repeat, and at these wall times
    scheduler noise is negligible.

    The monolithic reference runs the paper's full
    :data:`~repro.core.completion.PAPER_ITERATIONS` sweep budget —
    exactly what ``TrafficEstimator`` / ``repro estimate`` spend on this
    matrix by default — while the sharded side spends its multilevel
    budget (5 city-wide seed sweeps + 8 warm per-shard sweeps).  The
    speedup is therefore the end-to-end estimator replacement ratio,
    not a per-sweep kernel comparison; the accuracy cost of the smaller
    budget is exactly what ``nmae_delta`` records.

    No equivalence assertion here: the multilevel regime trades a
    bounded accuracy delta for wall clock by design.  The delta is
    *recorded* (``sharded.nmae_delta``) and gated from the committed
    baseline by ``benchmarks/perf/test_bench_sharded.py``.
    """
    from repro.core.completion import PAPER_ITERATIONS
    from repro.core.tcm import TrafficConditionMatrix
    from repro.roadnet.generators import shanghai_downtown_like, shanghai_inner_like
    from repro.scale import GridPartitioner, ShardedCompleter, ShardedStreamingEstimator

    network = shanghai_downtown_like() if smoke else shanghai_inner_like()
    slots = 96 if smoke else 672
    num_shards = 4 if smoke else 16
    halo = 1
    sweeps = 20 if smoke else PAPER_ITERATIONS
    n = network.num_segments
    case = f"sharded-{slots}x{n}@{HEADLINE_INTEGRITY:.2f}"

    truth = _make_truth(slots, n, rng)
    mask = random_integrity_mask((slots, n), HEADLINE_INTEGRITY, seed=rng)
    measured = np.where(mask, truth, 0.0)
    missing = ~mask
    tcm = TrafficConditionMatrix(
        measured,
        mask,
        grid=TimeGrid(0.0, 900.0, slots),
        segment_ids=network.segment_ids,
    )

    mono = CompressiveSensingCompleter(
        rank=2,
        lam=10.0,
        iterations=sweeps,
        center=True,
        clip_min=0.0,
        clip_max=150.0,
        max_workers=max_workers,
        seed=seed,
    )
    mono_wall, mono_result = _time_best(
        lambda: mono.complete(measured, mask), 1
    )
    mono_nmae = nmae(truth, mono_result.estimate, missing)  # type: ignore[union-attr]
    report.records.append(
        BenchRecord(
            case=case,
            algorithm="cs-monolithic",
            wall_s=mono_wall,
            repeats=1,
            sweeps=mono_result.iterations_run,  # type: ignore[union-attr]
            objective=float(mono_result.objective),  # type: ignore[union-attr]
            nmae_missing=mono_nmae,
        )
    )

    shards = GridPartitioner(num_shards, halo=halo).partition(network)
    completer = ShardedCompleter(
        rank=2,
        lam=10.0,
        iterations=sweeps,
        seed_iterations=5,
        warm_iterations=8,
        center=True,
        clip_min=0.0,
        clip_max=150.0,
        max_workers=max_workers,
        seed=seed,
    )
    sharded_wall, sharded_result = _time_best(
        lambda: completer.complete(tcm, shards), 1
    )
    sharded_nmae = nmae(truth, sharded_result.estimate, missing)  # type: ignore[union-attr]
    report.records.append(
        BenchRecord(
            case=case,
            algorithm="cs-sharded",
            wall_s=sharded_wall,
            repeats=1,
            sweeps=5 + 8,  # multilevel budget: seed + warm sweeps
            nmae_missing=sharded_nmae,
        )
    )

    speedup = mono_wall / sharded_wall
    report.speedups[case] = speedup
    report.sharded = {
        "case": case,
        "segments": n,
        "slots": slots,
        "integrity": HEADLINE_INTEGRITY,
        "shards": len(shards),
        "halo": halo,
        "mode": sharded_result.mode,  # type: ignore[union-attr]
        "wall_monolithic_s": mono_wall,
        "wall_sharded_s": sharded_wall,
        "stitch_s": sharded_result.stitch_s,  # type: ignore[union-attr]
        "speedup": speedup,
        "nmae_monolithic": mono_nmae,
        "nmae_sharded": sharded_nmae,
        "nmae_delta": abs(sharded_nmae - mono_nmae),
    }

    # ------------------------------------------------------------------
    # Columnar streaming ingestion: num_reports probe reports, already
    # map-matched (segment ids attached), pushed through the sharded
    # sliding-window estimator in one batch.
    day_s = 86_400.0
    times = np.sort(rng.uniform(0.0, day_s, num_reports))
    segs = np.asarray(network.segment_ids, dtype=np.int64)[
        rng.integers(0, n, num_reports)
    ]
    batch = ReportBatch.from_columns(
        rng.integers(0, max(1, num_reports // 50), num_reports),
        times,
        np.zeros(num_reports),
        np.zeros(num_reports),
        rng.uniform(5.0, 70.0, num_reports),
        segment_ids=segs,
        assume_sorted=True,
    )
    streamer = ShardedStreamingEstimator(
        network,
        shards=num_shards,
        halo=0,
        slot_s=900.0,
        window_slots=24,
        warm_iterations=4,
        cold_iterations=8,
        seed=seed,
    )
    start = time.perf_counter()
    streamer.ingest_batch(batch)
    streamer.flush()
    ingest_wall = time.perf_counter() - start
    ingest_case = f"sharded-ingest-{num_reports // 1000}k"
    report.records.append(
        BenchRecord(
            case=ingest_case,
            algorithm="sharded-stream-ingest",
            wall_s=ingest_wall,
            repeats=1,
        )
    )
    report.sharded["ingestion"] = {
        "reports": num_reports,
        "wall_s": ingest_wall,
        "reports_per_s": num_reports / ingest_wall,
        "slots_closed": len(streamer.estimates),
        "recompletions": streamer.recompletions,
        "recompletions_skipped": streamer.recompletions_skipped,
        "shards": streamer.num_shards,
    }


def _run_serving_suite(
    report: BenchReport,
    smoke: bool,
    seed: int,
    store: Optional[object] = None,
) -> None:
    """Benchmark the ``apps/`` query layer under concurrency (schema 5).

    Each (app, concurrency) level becomes one record —
    ``serving-<app>`` / ``c<NN>`` — carrying p50/p95 latency and
    sustained throughput.  The serving world (network + completed
    estimate) is a content-addressed store step when ``store`` is an
    :class:`~repro.experiments.store.ArtifactStore`, so warm bench runs
    measure queries against a cached estimate rather than rebuilding it.
    """
    from repro.experiments.serving_bench import (
        build_serving_world,
        default_serving_config,
        run_serving_bench,
    )

    config = default_serving_config(smoke=smoke, seed=seed)
    world = None
    world_hit: Optional[bool] = None
    if store is not None:
        step = store.get_or_build(  # type: ignore[attr-defined]
            "serving_world", config, lambda: build_serving_world(config)
        )
        world = step.value
        world_hit = step.hit
    results = run_serving_bench(config, world=world)
    for res in results:
        report.records.append(
            BenchRecord(
                case=f"serving-{res.app}",
                algorithm=f"c{res.concurrency:02d}",
                wall_s=res.wall_s,
                repeats=1,
                p50_ms=res.p50_ms,
                p95_ms=res.p95_ms,
                throughput_rps=res.throughput_rps,
            )
        )
    report.serving = {
        "apps": sorted({res.app for res in results}),
        "concurrency_levels": list(config.concurrency_levels),
        "requests_per_level": config.requests_per_level,
        "world": {
            "rows": config.rows,
            "cols": config.cols,
            "days": config.days,
            "integrity": config.integrity,
            "store_hit": world_hit,
        },
        "peak_throughput_rps": {
            app: max(
                res.throughput_rps for res in results if res.app == app
            )
            for app in sorted({res.app for res in results})
        },
    }


def _run_backend_suite(
    report: BenchReport,
    case: BenchCase,
    truth: np.ndarray,
    measured: np.ndarray,
    mask: np.ndarray,
    backend_list: Sequence[str],
    reference: np.ndarray,
    reference_wall: Optional[float],
    sweeps: int,
    n_repeats: int,
    max_workers: Optional[int],
    seed: int,
    strict: bool,
) -> None:
    """Time each solver backend at float64 and float32 on one case.

    Every (backend, dtype) run is checked against the default batched
    float64 estimate: float64 must agree to :data:`EQUIVALENCE_TOL`
    absolute, float32 to :data:`FLOAT32_RTOL` relative to the reference
    magnitude.  Speedups are recorded against the batched float64 wall
    time under keys ``<case>/<backend>-f32`` etc.  JIT/GPU backends get
    one untimed warmup call so compilation and upload costs never
    pollute the timings.
    """
    missing = ~mask
    ref_scale = float(np.abs(reference).max())
    for backend_name in backend_list:
        backend = get_backend(backend_name)
        for dtype in (np.float64, np.float32):
            if np.dtype(dtype) not in backend.supported_dtypes:
                continue
            tag = "f32" if dtype is np.float32 else "f64"
            completer = CompressiveSensingCompleter(
                rank=2,
                lam=10.0,
                iterations=sweeps,
                backend=backend_name,
                dtype=dtype,
                max_workers=max_workers,
                seed=seed,
            )
            if backend.requires_module is not None:
                completer.complete(measured, mask)  # warmup: JIT / upload
            wall, result = _time_best(
                lambda: completer.complete(measured, mask), n_repeats
            )
            estimate = np.asarray(result.estimate, dtype=np.float64)  # type: ignore[union-attr]
            diff = float(np.abs(estimate - reference).max())
            key = f"{case.name}/{backend_name}-{tag}"
            report.equivalence_max_abs_diff[key] = diff
            if reference_wall is not None:
                report.speedups[key] = reference_wall / wall
            report.records.append(
                BenchRecord(
                    case=case.name,
                    algorithm=f"cs-{tag}",
                    wall_s=wall,
                    repeats=n_repeats,
                    sweeps=result.iterations_run,  # type: ignore[union-attr]
                    objective=float(result.objective),  # type: ignore[union-attr]
                    nmae_missing=nmae(truth, estimate, missing),
                    backend=backend_name,
                )
            )
            tol = EQUIVALENCE_TOL if tag == "f64" else FLOAT32_RTOL * ref_scale
            if strict and diff > tol:
                raise RuntimeError(
                    f"backend {backend_name!r} ({tag}) deviates from the "
                    f"batched float64 reference by {diff:.3e} (> {tol:.3e}) "
                    f"on {case.name}"
                )


def resolve_bench_backends(
    backends: Optional[Sequence[str]],
) -> Tuple[str, ...]:
    """Backends the bench should time beyond the default solver suite.

    ``None`` selects every *available* registered backend except
    ``"numpy"`` (already covered by the per-solver records), so a fresh
    install without extras benches cleanly.  Explicitly requested
    backends are validated: unknown names raise ``ValueError``,
    known-but-missing ones raise :class:`BackendUnavailable`.
    """
    if backends is None:
        return tuple(
            name for name in available_backend_names() if name != "numpy"
        )
    resolved = []
    for name in backends:
        backend = get_backend(name)
        if not backend.is_available():
            raise BackendUnavailable(
                f"backend {name!r} {backend.availability_hint()}"
            )
        if name != "numpy":
            resolved.append(name)
    return tuple(resolved)


def run_perf_bench(
    cases: Optional[Sequence[BenchCase]] = None,
    smoke: bool = False,
    seed: int = 0,
    repeats: Optional[int] = None,
    iterations: Optional[int] = None,
    solvers: Sequence[str] = SOLVERS,
    backends: Optional[Sequence[str]] = None,
    include_tune: bool = True,
    include_baselines: bool = True,
    include_ingestion: bool = True,
    ingestion_reports: Optional[int] = None,
    include_sharded: bool = True,
    sharded_reports: Optional[int] = None,
    include_serving: bool = True,
    serving_store: Optional[object] = None,
    max_workers: Optional[int] = None,
    strict: bool = True,
) -> BenchReport:
    """Time the hot paths and check solver equivalence.

    Parameters
    ----------
    cases:
        Workloads to run (default :func:`default_cases` for the profile).
    smoke:
        CI profile: small matrices and few sweeps, same schema.
    seed:
        Master seed; every case derives deterministic data/mask streams.
    repeats:
        Timed repetitions per measurement (best-of); defaults to 1 for
        smoke and 3 otherwise.
    iterations:
        ALS sweeps per completion (defaults 20 smoke / 60 full).
    solvers:
        Inner solvers to time; must include ``"loop"`` and ``"batched"``
        for the speedup/equivalence summaries to be computed.
    backends:
        Solver backends to time at float64 and float32 against the
        batched float64 reference (see :func:`resolve_bench_backends`;
        default: every available non-default backend).
    include_tune, include_baselines:
        Also time a small Algorithm 2 run and the baselines (the KNNs
        plus MSSA and the scalar references of the vectorized ones).
    include_ingestion, ingestion_reports:
        Also time the probe ingestion pipeline (vectorized vs scalar
        map-matching and aggregation) on ``ingestion_reports`` reports
        (default :func:`default_ingestion_reports` for the profile).
    include_sharded, sharded_reports:
        Also run the metropolitan sharded suite: monolithic vs tiled
        completion of the metro-scale matrix plus a ``sharded_reports``
        columnar stream through the sharded sliding-window estimator
        (default :func:`default_sharded_reports` for the profile).
    include_serving, serving_store:
        Also run the serving-load suite: the ``apps/`` query layer
        driven at increasing concurrency, p50/p95 latency + throughput
        per level (:mod:`repro.experiments.serving_bench`).  With
        ``serving_store`` set to an
        :class:`~repro.experiments.store.ArtifactStore`, the serving
        world is loaded from / persisted into the store.
    max_workers:
        Forwarded to the completer/tuner (restart + fitness pools).
    strict:
        Raise ``RuntimeError`` when a vectorized solver's estimate
        departs from the loop reference by more than
        :data:`EQUIVALENCE_TOL` (the harness's core guarantee).

    Returns
    -------
    BenchReport
        Records, per-case batched-vs-loop speedups, and per-case
        max-abs-difference between batched and loop estimates.
    """
    for solver in solvers:
        if solver not in SOLVERS:
            raise ValueError(f"unknown solver {solver!r} (choose from {SOLVERS})")
    backend_list = resolve_bench_backends(backends)
    case_list = list(cases) if cases is not None else default_cases(smoke)
    n_repeats = repeats if repeats is not None else (1 if smoke else 3)
    if n_repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {n_repeats}")
    sweeps = iterations if iterations is not None else (20 if smoke else 60)

    report = BenchReport(
        meta={
            "date": date.today().isoformat(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": available_workers(),
            "smoke": smoke,
            "seed": seed,
            "repeats": n_repeats,
            "iterations": sweeps,
            "backends": ",".join(("numpy",) + backend_list),
        }
    )

    rng = ensure_rng(seed)
    for case in case_list:
        truth = _make_truth(case.m, case.n, rng)
        mask = random_integrity_mask((case.m, case.n), case.integrity, seed=rng)
        measured = np.where(mask, truth, 0.0)
        missing = ~mask

        estimates: Dict[str, np.ndarray] = {}
        walls: Dict[str, float] = {}
        for solver in solvers:
            completer = CompressiveSensingCompleter(
                rank=2,
                lam=10.0,
                iterations=sweeps,
                solver=solver,
                max_workers=max_workers,
                seed=seed,
            )
            wall, result = _time_best(
                lambda: completer.complete(measured, mask), n_repeats
            )
            estimates[solver] = result.estimate  # type: ignore[union-attr]
            walls[solver] = wall
            report.records.append(
                BenchRecord(
                    case=case.name,
                    algorithm=f"cs-{solver}",
                    wall_s=wall,
                    repeats=n_repeats,
                    sweeps=result.iterations_run,  # type: ignore[union-attr]
                    objective=result.objective,  # type: ignore[union-attr]
                    nmae_missing=nmae(truth, result.estimate, missing),  # type: ignore[union-attr]
                )
            )

        if "loop" in estimates:
            for solver, estimate in estimates.items():
                if solver == "loop":
                    continue
                diff = float(np.abs(estimate - estimates["loop"]).max())
                if solver == "batched":
                    report.equivalence_max_abs_diff[case.name] = diff
                if strict and diff > EQUIVALENCE_TOL:
                    raise RuntimeError(
                        f"solver {solver!r} deviates from the loop reference "
                        f"by {diff:.3e} (> {EQUIVALENCE_TOL:.0e}) on {case.name}"
                    )
            if "batched" in walls:
                report.speedups[case.name] = walls["loop"] / walls["batched"]

        if backend_list and estimates:
            ref_solver = "batched" if "batched" in estimates else next(iter(estimates))
            _run_backend_suite(
                report,
                case,
                truth,
                measured,
                mask,
                backend_list,
                reference=estimates[ref_solver],
                reference_wall=walls.get("batched"),
                sweeps=sweeps,
                n_repeats=n_repeats,
                max_workers=max_workers,
                seed=seed,
                strict=strict,
            )

        if include_baselines:
            baseline_estimates: Dict[str, np.ndarray] = {}
            baseline_walls: Dict[str, float] = {}
            for name, baseline in (
                ("naive-knn", NaiveKNN(k=4)),
                ("correlation-knn", CorrelationKNN(k=4)),
                ("correlation-knn-scalar", CorrelationKNN(k=4, method="scalar")),
                ("mssa", MSSA(solver="truncated", max_iterations=5)),
                (
                    "mssa-scalar",
                    MSSA(solver="truncated", max_iterations=5, method="scalar"),
                ),
            ):
                wall, estimate = _time_best(
                    lambda: baseline.complete(measured, mask), n_repeats
                )
                baseline_estimates[name] = np.asarray(estimate)
                baseline_walls[name] = wall
                report.records.append(
                    BenchRecord(
                        case=case.name,
                        algorithm=name,
                        wall_s=wall,
                        repeats=n_repeats,
                        nmae_missing=nmae(truth, np.asarray(estimate), missing),
                    )
                )
            for name in ("correlation-knn", "mssa"):
                diff = float(
                    np.abs(
                        baseline_estimates[name]
                        - baseline_estimates[f"{name}-scalar"]
                    ).max()
                )
                key = f"{case.name}-{name}"
                report.equivalence_max_abs_diff[key] = diff
                report.speedups[key] = (
                    baseline_walls[f"{name}-scalar"] / baseline_walls[name]
                )
                if strict and diff > EQUIVALENCE_TOL:
                    raise RuntimeError(
                        f"baseline {name!r} vectorized path deviates from its "
                        f"scalar reference by {diff:.3e} "
                        f"(> {EQUIVALENCE_TOL:.0e}) on {case.name}"
                    )

        if include_tune:
            tuner = GeneticTuner(
                rank_bounds=(1, 6),
                population_size=5 if smoke else 8,
                generations=2,
                completer_iterations=max(5, sweeps // 3),
                stall_generations=None,
                max_workers=max_workers,
                seed=seed,
            )
            wall, tuned = _time_best(lambda: tuner.tune(measured, mask), 1)
            report.records.append(
                BenchRecord(
                    case=case.name,
                    algorithm="ga-tune",
                    wall_s=wall,
                    repeats=1,
                    sweeps=tuned.generations_run,  # type: ignore[union-attr]
                    objective=tuned.fitness,  # type: ignore[union-attr]
                )
            )

    if include_ingestion:
        num_reports = (
            ingestion_reports
            if ingestion_reports is not None
            else default_ingestion_reports(smoke)
        )
        _run_ingestion_suite(report, num_reports, n_repeats, rng, strict)

    if include_sharded:
        _run_sharded_suite(
            report,
            smoke=smoke,
            seed=seed,
            max_workers=max_workers,
            num_reports=(
                sharded_reports
                if sharded_reports is not None
                else default_sharded_reports(smoke)
            ),
            rng=rng,
        )

    if include_serving:
        _run_serving_suite(report, smoke=smoke, seed=seed, store=serving_store)

    return report


def default_output_name(today: Optional[date] = None) -> str:
    """The conventional committed artifact name, ``BENCH_<date>.json``."""
    stamp = (today or date.today()).isoformat()
    return f"BENCH_{stamp}.json"


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of diffing a bench run against a committed baseline.

    ``regressions`` lists the tracked (case, algorithm) pairs whose
    wall time grew beyond the threshold; ``lines`` carries one rendered
    row per compared record.  ``ok`` gates CI.
    """

    regressions: List[str]
    lines: List[str]
    threshold: float
    compared: int
    skipped: int

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        header = (
            f"bench comparison: {self.compared} record(s) compared, "
            f"{self.skipped} below the {MIN_COMPARE_WALL_S:.2f}s noise floor "
            f"skipped, threshold {self.threshold:.2f}x"
        )
        body = list(self.lines)
        if self.regressions:
            body.append("REGRESSIONS:")
            body.extend(f"  {r}" for r in self.regressions)
        else:
            body.append("no regressions")
        return "\n".join([header, *body])


def _records_by_key(
    payload: Dict[str, object],
) -> Dict[Tuple[str, str, str], Dict[str, Optional[float]]]:
    """Index records by (case, algorithm, backend).

    Schema-2 payloads predate the ``backend`` field; their records all
    ran the default backend, so the missing key reads as ``"numpy"``
    and old committed baselines keep comparing cleanly.  Each value
    carries ``wall_s`` plus the schema-5 serving columns (``p95_ms``,
    ``None`` on compute records and pre-5 baselines).
    """
    records = payload.get("records")
    if not isinstance(records, list):
        raise ValueError("bench payload has no 'records' list")
    out: Dict[Tuple[str, str, str], Dict[str, Optional[float]]] = {}
    for rec in records:
        key = (
            str(rec["case"]),
            str(rec["algorithm"]),
            str(rec.get("backend", "numpy")),
        )
        p95 = rec.get("p95_ms")
        out[key] = {
            "wall_s": float(rec["wall_s"]),
            "p95_ms": None if p95 is None else float(p95),
        }
    return out


def compare_payloads(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> BenchComparison:
    """Diff two bench payloads; flag wall-clock regressions.

    Records are matched on (case, algorithm, backend) — schema-2
    baselines without the backend field match as ``"numpy"``; records
    present in only one payload are ignored (suites grow over time).  A
    match where both wall times sit below :data:`MIN_COMPARE_WALL_S` is
    skipped — at that scale the timer measures the scheduler, not the
    code.  Serving records (those carrying ``p95_ms`` on both sides)
    gate their p95 tail latency instead of their wall clock, with the
    same threshold, when either side reports at least
    :data:`MIN_COMPARE_P95_MS` (a sub-2ms tail is scheduler jitter);
    their wall ratio is rendered for context only.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    cur = _records_by_key(current)
    base = _records_by_key(baseline)
    lines: List[str] = []
    regressions: List[str] = []
    skipped = 0
    compared = 0
    for key in cur:
        if key not in base:
            continue
        cur_wall = cur[key]["wall_s"]
        base_wall = base[key]["wall_s"]
        assert cur_wall is not None and base_wall is not None
        label = f"{key[0]}/{key[1]}"
        if key[2] != "numpy":
            label += f"[{key[2]}]"
        cur_p95, base_p95 = cur[key]["p95_ms"], base[key]["p95_ms"]
        ratio = cur_wall / max(base_wall, 1e-12)
        line = f"{label}: {cur_wall:.4f}s vs baseline {base_wall:.4f}s ({ratio:.2f}x)"
        if cur_p95 is not None and base_p95 is not None:
            # A serving record: gate on tail latency only.  Its wall
            # clock is a few dozen requests of scheduler-dependent
            # queueing — far too jittery to diff — while p95 is the
            # claim the suite exists to hold.  The wall ratio stays in
            # the rendered line for context.
            if max(cur_p95, base_p95) < MIN_COMPARE_P95_MS:
                skipped += 1
                continue
            compared += 1
            p95_ratio = cur_p95 / max(base_p95, 1e-12)
            line += f", p95 {cur_p95:.2f}ms vs {base_p95:.2f}ms ({p95_ratio:.2f}x)"
            lines.append(line)
            if p95_ratio > threshold:
                regressions.append(line)
            continue
        if cur_wall < MIN_COMPARE_WALL_S and base_wall < MIN_COMPARE_WALL_S:
            skipped += 1
            continue
        compared += 1
        lines.append(line)
        if ratio > threshold:
            regressions.append(line)
    return BenchComparison(
        regressions=regressions,
        lines=lines,
        threshold=threshold,
        compared=compared,
        skipped=skipped,
    )


def compare_with_baseline(
    report: BenchReport,
    baseline_path: Union[str, Path],
    threshold: float = REGRESSION_THRESHOLD,
) -> BenchComparison:
    """Diff a fresh report against a committed ``BENCH_*.json``."""
    payload = json.loads(Path(baseline_path).read_text())
    return compare_payloads(report.to_payload(), payload, threshold=threshold)
