"""Performance benchmark harness (``repro bench``).

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this module is the measuring stick.  It times the hot paths —
Algorithm 1 under each inner solver, Algorithm 2 tuning, and the KNN
baselines — across matrix sizes and integrities, verifies that the
vectorized solvers agree with the per-column loop reference to
:data:`EQUIVALENCE_TOL`, and emits a machine-readable ``BENCH_*.json``
so speedups are *recorded*, not anecdotal.

Two profiles:

* ``smoke=False`` (default) — the paper-scale workload: the Shanghai
  one-week 15-minute matrix shape (672 x 221) at 20% and 40% integrity
  plus a half-scale case.  The headline number is the batched-vs-loop
  solver speedup at 672 x 221 / 20%.
* ``smoke=True`` — a seconds-fast configuration for CI: small matrices,
  few sweeps, same record schema and the same equivalence assertion.

Usage::

    repro bench                 # full profile, writes BENCH_<date>.json
    repro bench --smoke         # CI profile
    repro bench --output x.json # explicit output path

or programmatically::

    from repro.experiments.perf_bench import run_perf_bench
    report = run_perf_bench(smoke=True)
    print(report.render())
    report.write_json("BENCH_smoke.json")
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from datetime import date
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import CorrelationKNN, NaiveKNN
from repro.core.completion import SOLVERS, CompressiveSensingCompleter
from repro.core.tuning import GeneticTuner
from repro.datasets.masks import random_integrity_mask
from repro.experiments.reporting import format_table
from repro.metrics.errors import nmae
from repro.utils.parallel import available_workers
from repro.utils.rng import ensure_rng

# The vectorized solvers must match the loop reference at least this
# tightly (max abs difference over every cell of the final estimate).
EQUIVALENCE_TOL = 1e-8

# Shanghai one-week TCM at 15-minute granularity: 672 slots x 221
# segments — the paper's (and the ROADMAP's) headline shape.
HEADLINE_SHAPE = (672, 221)
HEADLINE_INTEGRITY = 0.2


@dataclass(frozen=True)
class BenchCase:
    """One (matrix shape, integrity) workload."""

    m: int
    n: int
    integrity: float

    @property
    def name(self) -> str:
        return f"{self.m}x{self.n}@{self.integrity:.2f}"


@dataclass(frozen=True)
class BenchRecord:
    """One timed run.

    ``wall_s`` is the best (minimum) of ``repeats`` timings — the
    standard way to suppress scheduler noise when the quantity of
    interest is the cost of the computation itself.
    """

    case: str
    algorithm: str
    wall_s: float
    repeats: int
    sweeps: Optional[int] = None
    objective: Optional[float] = None
    nmae_missing: Optional[float] = None


@dataclass
class BenchReport:
    """All records of one harness run plus derived summaries."""

    records: List[BenchRecord] = field(default_factory=list)
    speedups: Dict[str, float] = field(default_factory=dict)
    equivalence_max_abs_diff: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Union[str, int, float, bool]] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form (schema version included)."""
        return {
            "schema": 1,
            "meta": self.meta,
            "records": [asdict(r) for r in self.records],
            "speedups": self.speedups,
            "equivalence_max_abs_diff": self.equivalence_max_abs_diff,
            "equivalence_tol": EQUIVALENCE_TOL,
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        out = Path(path)
        out.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n")
        return out

    def render(self) -> str:
        headers = ["Case", "Algorithm", "Wall (s)", "Sweeps", "NMAE (missing)"]
        rows = []
        for r in self.records:
            rows.append(
                [
                    r.case,
                    r.algorithm,
                    f"{r.wall_s:.4f}",
                    "-" if r.sweeps is None else str(r.sweeps),
                    "-" if r.nmae_missing is None else f"{r.nmae_missing:.4f}",
                ]
            )
        table = format_table(headers, rows, title="Performance benchmark")
        lines = [table, ""]
        for case, speedup in self.speedups.items():
            diff = self.equivalence_max_abs_diff.get(case, float("nan"))
            lines.append(
                f"{case}: batched vs loop speedup {speedup:.1f}x "
                f"(max abs estimate diff {diff:.2e})"
            )
        return "\n".join(lines)


def default_cases(smoke: bool = False) -> List[BenchCase]:
    """The benchmark workload grid for a profile."""
    if smoke:
        return [BenchCase(96, 40, 0.3)]
    hm, hn = HEADLINE_SHAPE
    return [
        BenchCase(hm, hn, HEADLINE_INTEGRITY),
        BenchCase(hm, hn, 0.4),
        BenchCase(hm // 2, hn // 2, HEADLINE_INTEGRITY),
    ]


def _make_truth(m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """A speed-like low-rank-plus-noise matrix (km/h scale).

    Rank-4 structure mimics the few dominant eigenflows of a real TCM
    (Section 3.2); the noise floor keeps the completion non-trivial.
    """
    base = rng.standard_normal((m, 4)) @ rng.standard_normal((4, n))
    noise = rng.standard_normal((m, n))
    return 35.0 + 4.0 * base + 0.5 * noise


def _time_best(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs and the last result."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_perf_bench(
    cases: Optional[Sequence[BenchCase]] = None,
    smoke: bool = False,
    seed: int = 0,
    repeats: Optional[int] = None,
    iterations: Optional[int] = None,
    solvers: Sequence[str] = SOLVERS,
    include_tune: bool = True,
    include_baselines: bool = True,
    max_workers: Optional[int] = None,
    strict: bool = True,
) -> BenchReport:
    """Time the hot paths and check solver equivalence.

    Parameters
    ----------
    cases:
        Workloads to run (default :func:`default_cases` for the profile).
    smoke:
        CI profile: small matrices and few sweeps, same schema.
    seed:
        Master seed; every case derives deterministic data/mask streams.
    repeats:
        Timed repetitions per measurement (best-of); defaults to 1 for
        smoke and 3 otherwise.
    iterations:
        ALS sweeps per completion (defaults 20 smoke / 60 full).
    solvers:
        Inner solvers to time; must include ``"loop"`` and ``"batched"``
        for the speedup/equivalence summaries to be computed.
    include_tune, include_baselines:
        Also time a small Algorithm 2 run and the KNN baselines.
    max_workers:
        Forwarded to the completer/tuner (restart + fitness pools).
    strict:
        Raise ``RuntimeError`` when a vectorized solver's estimate
        departs from the loop reference by more than
        :data:`EQUIVALENCE_TOL` (the harness's core guarantee).

    Returns
    -------
    BenchReport
        Records, per-case batched-vs-loop speedups, and per-case
        max-abs-difference between batched and loop estimates.
    """
    for solver in solvers:
        if solver not in SOLVERS:
            raise ValueError(f"unknown solver {solver!r} (choose from {SOLVERS})")
    case_list = list(cases) if cases is not None else default_cases(smoke)
    n_repeats = repeats if repeats is not None else (1 if smoke else 3)
    if n_repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {n_repeats}")
    sweeps = iterations if iterations is not None else (20 if smoke else 60)

    report = BenchReport(
        meta={
            "date": date.today().isoformat(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": available_workers(),
            "smoke": smoke,
            "seed": seed,
            "repeats": n_repeats,
            "iterations": sweeps,
        }
    )

    rng = ensure_rng(seed)
    for case in case_list:
        truth = _make_truth(case.m, case.n, rng)
        mask = random_integrity_mask((case.m, case.n), case.integrity, seed=rng)
        measured = np.where(mask, truth, 0.0)
        missing = ~mask

        estimates: Dict[str, np.ndarray] = {}
        walls: Dict[str, float] = {}
        for solver in solvers:
            completer = CompressiveSensingCompleter(
                rank=2,
                lam=10.0,
                iterations=sweeps,
                solver=solver,
                max_workers=max_workers,
                seed=seed,
            )
            wall, result = _time_best(
                lambda: completer.complete(measured, mask), n_repeats
            )
            estimates[solver] = result.estimate  # type: ignore[union-attr]
            walls[solver] = wall
            report.records.append(
                BenchRecord(
                    case=case.name,
                    algorithm=f"cs-{solver}",
                    wall_s=wall,
                    repeats=n_repeats,
                    sweeps=result.iterations_run,  # type: ignore[union-attr]
                    objective=result.objective,  # type: ignore[union-attr]
                    nmae_missing=nmae(truth, result.estimate, missing),  # type: ignore[union-attr]
                )
            )

        if "loop" in estimates:
            for solver, estimate in estimates.items():
                if solver == "loop":
                    continue
                diff = float(np.abs(estimate - estimates["loop"]).max())
                if solver == "batched":
                    report.equivalence_max_abs_diff[case.name] = diff
                if strict and diff > EQUIVALENCE_TOL:
                    raise RuntimeError(
                        f"solver {solver!r} deviates from the loop reference "
                        f"by {diff:.3e} (> {EQUIVALENCE_TOL:.0e}) on {case.name}"
                    )
            if "batched" in walls:
                report.speedups[case.name] = walls["loop"] / walls["batched"]

        if include_baselines:
            for name, baseline in (
                ("naive-knn", NaiveKNN(k=4)),
                ("correlation-knn", CorrelationKNN(k=4)),
            ):
                wall, estimate = _time_best(
                    lambda: baseline.complete(measured, mask), n_repeats
                )
                report.records.append(
                    BenchRecord(
                        case=case.name,
                        algorithm=name,
                        wall_s=wall,
                        repeats=n_repeats,
                        nmae_missing=nmae(truth, np.asarray(estimate), missing),
                    )
                )

        if include_tune:
            tuner = GeneticTuner(
                rank_bounds=(1, 6),
                population_size=5 if smoke else 8,
                generations=2,
                completer_iterations=max(5, sweeps // 3),
                stall_generations=None,
                max_workers=max_workers,
                seed=seed,
            )
            wall, tuned = _time_best(lambda: tuner.tune(measured, mask), 1)
            report.records.append(
                BenchRecord(
                    case=case.name,
                    algorithm="ga-tune",
                    wall_s=wall,
                    repeats=1,
                    sweeps=tuned.generations_run,  # type: ignore[union-attr]
                    objective=tuned.fitness,  # type: ignore[union-attr]
                )
            )

    return report


def default_output_name(today: Optional[date] = None) -> str:
    """The conventional committed artifact name, ``BENCH_<date>.json``."""
    stamp = (today or date.today()).isoformat()
    return f"BENCH_{stamp}.json"
