"""Content-addressed cache of simulated scenarios.

The experiment battery evaluates many (figure, granularity, integrity,
algorithm) cells, and most of them start from the *same* simulated
world: seven drivers call ``build_city_truth("shanghai", days, seed)``
with identical arguments.  Synthesizing a city (network generation,
ground-truth traffic, fleet simulation, map-matching) is the expensive
part, so each distinct scenario should be built exactly once per
process — not once per figure.

The cache is content-addressed: the key is the SHA-256 of the canonical
JSON encoding of the scenario's *configuration* (every config field plus
the seed), so two requests share an entry iff every field agrees.  A
changed granularity, duration, seed, or any other knob produces a
different key and a fresh build.

Concurrency: :meth:`ScenarioCache.get_or_build` takes a per-key lock
around the builder, so when the experiment runner fans cells out over a
thread pool the first thread to request a scenario builds it and the
rest wait for the finished object instead of duplicating the
simulation.

Cached objects are shared, not copied — treat them as read-only.  Every
builder in this repository derives its output deterministically from
the keyed configuration, which makes a cache hit bit-identical to a
cold build by construction (and tested in
``tests/test_scenario_cache.py``).

Persistence: the experiment runner can attach a
:class:`repro.experiments.store.ArtifactStore` via
:func:`set_persistent_store`; the cache then checks memory first, the
on-disk store second, and only builds on a double miss (persisting the
fresh build for the next process).  :func:`record_scenario_accesses`
lets the runner audit which scenario keys a battery job actually read,
enforcing that every job declares its store inputs.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import threading
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple, TypeVar

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.contracts import effects

T = TypeVar("T")


@effects("pure")
def canonical_fields(obj: Any) -> Any:
    """Normalize a config-ish value into a canonical JSON-able form.

    Dataclasses become sorted dicts, tuples become lists, NumPy scalars
    become Python scalars.  Raises ``TypeError`` for values with no
    stable canonical form (arrays, open files, ...) rather than hashing
    something unstable.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonical_fields(dataclasses.asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): canonical_fields(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical_fields(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} into a scenario key"
    )


@effects("pure")
def scenario_key(fields: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of the key fields."""
    payload = json.dumps(
        canonical_fields(fields), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Thread-local stack of scenario-access recorders.  The experiment
# runner pushes a recorder around each store-backed battery job so it
# can verify the job's declared store inputs cover every scenario the
# job actually read (see ``record_scenario_accesses``).
_ACCESS_RECORDERS = threading.local()


@contextlib.contextmanager
@effects(allow={"mutates-nonlocal", "mutates-global"})
def record_scenario_accesses() -> Iterator[List[Dict[str, Any]]]:
    """Record every scenario access on this thread inside the block.

    Yields a list that accumulates one ``{"key", "fields"}`` dict per
    :meth:`ScenarioCache.get_or_build` call (hit or miss alike) made by
    the current thread while the context is active.  Recorders nest:
    an inner context does not hide accesses from an outer one.
    """
    stack = getattr(_ACCESS_RECORDERS, "stack", None)
    if stack is None:
        stack = []
        _ACCESS_RECORDERS.stack = stack
    accesses: List[Dict[str, Any]] = []
    stack.append(accesses)
    try:
        yield accesses
    finally:
        # Remove by identity, not ``stack.remove`` (equality): nested
        # recorder lists can compare equal (e.g. an outer recorder with
        # no pre-inner accesses), and removing the wrong one would leave
        # the exited recorder live and drop the outer one.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is accesses:
                del stack[i]
                break


def _record_access(key: str, fields: Mapping[str, Any]) -> None:
    stack = getattr(_ACCESS_RECORDERS, "stack", None)
    if not stack:
        return
    entry = {"key": key, "fields": canonical_fields(fields)}
    for accesses in stack:
        accesses.append(entry)


class ScenarioCache:
    """Thread-safe content-addressed memoization of built scenarios.

    Optionally backed by a persistent
    :class:`repro.experiments.store.ArtifactStore` (see
    :meth:`set_persistent_store`): on a memory miss the cache consults
    the store before building, and persists fresh builds so the *next
    process* hits too.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._entries: Dict[str, Any] = {}
        self._hits = 0
        self._misses = 0
        self._store: Optional[Any] = None

    @effects(allow={"mutates-nonlocal"})
    def set_persistent_store(self, store: Optional[Any]) -> None:
        """Attach (or with ``None`` detach) a persistent artifact store."""
        with self._lock:
            self._store = store

    @property
    def persistent_store(self) -> Optional[Any]:
        with self._lock:
            return self._store

    @effects(allow={"mutates-nonlocal", "mutates-global", "io"})
    def get_or_build(
        self, fields: Mapping[str, Any], builder: Callable[[], T]
    ) -> T:
        """The scenario for ``fields``, building it at most once.

        Concurrent requests for the same key serialize on a per-key
        lock: one thread runs ``builder``, the others receive the
        finished object.  Requests for different keys never block each
        other on the build.  With a persistent store attached, the miss
        path tries the store before building and persists fresh builds.
        """
        key = scenario_key(fields)
        _record_access(key, fields)
        with self._lock:
            store = self._store
            if key in self._entries:
                self._hits += 1
                obs_metrics.inc("scenario_cache.hits")
                return self._entries[key]  # type: ignore[no-any-return]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self._hits += 1
                    obs_metrics.inc("scenario_cache.hits")
                    return self._entries[key]  # type: ignore[no-any-return]
            if store is not None:
                store_key = store.step_key("scenario", fields)
                hit, value = store.get(store_key)
                if hit:
                    with self._lock:
                        self._entries[key] = value
                    obs_metrics.inc("scenario_cache.store_hits")
                    return value  # type: ignore[no-any-return]
            with obs_trace.span("scenario.build", key=key[:12]):
                value = builder()
            if store is not None:
                store.put(store_key, value, step="scenario")
            with self._lock:
                self._entries[key] = value
                self._misses += 1
            obs_metrics.inc("scenario_cache.misses")
        return value

    def clear(self) -> None:
        """Drop every entry (tests; long-lived processes reclaiming memory)."""
        with self._lock:
            self._entries.clear()
            self._key_locks.clear()
            self._hits = 0
            self._misses = 0

    @property
    def stats(self) -> Tuple[int, int]:
        """(hits, misses) since construction or the last :meth:`clear`."""
        with self._lock:
            return self._hits, self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# Process-wide cache shared by the experiment drivers.  Scoped to the
# process on purpose: a fresh ``repro experiments`` run always
# re-simulates, so stale-on-disk artifacts cannot exist.
GLOBAL_SCENARIO_CACHE = ScenarioCache()
