"""Content-addressed cache of simulated scenarios.

The experiment battery evaluates many (figure, granularity, integrity,
algorithm) cells, and most of them start from the *same* simulated
world: seven drivers call ``build_city_truth("shanghai", days, seed)``
with identical arguments.  Synthesizing a city (network generation,
ground-truth traffic, fleet simulation, map-matching) is the expensive
part, so each distinct scenario should be built exactly once per
process — not once per figure.

The cache is content-addressed: the key is the SHA-256 of the canonical
JSON encoding of the scenario's *configuration* (every config field plus
the seed), so two requests share an entry iff every field agrees.  A
changed granularity, duration, seed, or any other knob produces a
different key and a fresh build.

Concurrency: :meth:`ScenarioCache.get_or_build` takes a per-key lock
around the builder, so when the experiment runner fans cells out over a
thread pool the first thread to request a scenario builds it and the
rest wait for the finished object instead of duplicating the
simulation.

Cached objects are shared, not copied — treat them as read-only.  Every
builder in this repository derives its output deterministically from
the keyed configuration, which makes a cache hit bit-identical to a
cold build by construction (and tested in
``tests/test_scenario_cache.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import Any, Callable, Dict, Mapping, Tuple, TypeVar

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.contracts import effects

T = TypeVar("T")


@effects("pure")
def canonical_fields(obj: Any) -> Any:
    """Normalize a config-ish value into a canonical JSON-able form.

    Dataclasses become sorted dicts, tuples become lists, NumPy scalars
    become Python scalars.  Raises ``TypeError`` for values with no
    stable canonical form (arrays, open files, ...) rather than hashing
    something unstable.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonical_fields(dataclasses.asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): canonical_fields(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical_fields(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} into a scenario key"
    )


@effects("pure")
def scenario_key(fields: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of the key fields."""
    payload = json.dumps(
        canonical_fields(fields), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ScenarioCache:
    """Thread-safe content-addressed memoization of built scenarios."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._entries: Dict[str, Any] = {}
        self._hits = 0
        self._misses = 0

    @effects(allow={"mutates-nonlocal"})
    def get_or_build(
        self, fields: Mapping[str, Any], builder: Callable[[], T]
    ) -> T:
        """The scenario for ``fields``, building it at most once.

        Concurrent requests for the same key serialize on a per-key
        lock: one thread runs ``builder``, the others receive the
        finished object.  Requests for different keys never block each
        other on the build.
        """
        key = scenario_key(fields)
        with self._lock:
            if key in self._entries:
                self._hits += 1
                obs_metrics.inc("scenario_cache.hits")
                return self._entries[key]  # type: ignore[no-any-return]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._entries:
                    self._hits += 1
                    obs_metrics.inc("scenario_cache.hits")
                    return self._entries[key]  # type: ignore[no-any-return]
            with obs_trace.span("scenario.build", key=key[:12]):
                value = builder()
            with self._lock:
                self._entries[key] = value
                self._misses += 1
            obs_metrics.inc("scenario_cache.misses")
        return value

    def clear(self) -> None:
        """Drop every entry (tests; long-lived processes reclaiming memory)."""
        with self._lock:
            self._entries.clear()
            self._key_locks.clear()
            self._hits = 0
            self._misses = 0

    @property
    def stats(self) -> Tuple[int, int]:
        """(hits, misses) since construction or the last :meth:`clear`."""
        with self._lock:
            return self._hits, self._misses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# Process-wide cache shared by the experiment drivers.  Scoped to the
# process on purpose: a fresh ``repro experiments`` run always
# re-simulates, so stale-on-disk artifacts cannot exist.
GLOBAL_SCENARIO_CACHE = ScenarioCache()
