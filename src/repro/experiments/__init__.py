"""Experiment harness: one driver per paper table/figure.

Every driver is a pure function from an experiment config to a result
dataclass, plus a ``render`` helper that prints the same rows/series the
paper reports.  The benchmark suite under ``benchmarks/`` wraps these
drivers with ``pytest-benchmark``; ``runner.run_all`` executes the full
battery and produces the EXPERIMENTS.md evidence.

| Paper item | Driver |
|---|---|
| Table 1, Fig. 2, Fig. 3 | :mod:`repro.experiments.integrity_study` |
| Fig. 4-8 | :mod:`repro.experiments.structure_study` |
| Fig. 11, Fig. 12 | :mod:`repro.experiments.error_vs_integrity` |
| Fig. 13, Fig. 14 | :mod:`repro.experiments.error_cdf` |
| Fig. 15, Fig. 16 | :mod:`repro.experiments.param_sensitivity` |
| Fig. 17, Fig. 18 | :mod:`repro.experiments.matrix_selection_study` |
| Table 2 | :mod:`repro.experiments.runtimes` |
| sampling extension | :mod:`repro.experiments.sampling_study` |
| robustness extension | :mod:`repro.experiments.robustness` |
| streaming extension | :mod:`repro.experiments.streaming_study` |
| seed-sensitivity extension | :mod:`repro.experiments.seed_sensitivity` |

Rendering helpers: :mod:`repro.experiments.reporting` (tables/series),
:mod:`repro.experiments.charts` (ASCII line/bar charts), and
:mod:`repro.experiments.report_writer` (Markdown reproduction report).
"""

from repro.experiments.config import (
    GRANULARITIES_S,
    AlgorithmSpec,
    default_algorithms,
    make_completer,
)
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "GRANULARITIES_S",
    "AlgorithmSpec",
    "default_algorithms",
    "make_completer",
    "format_series",
    "format_table",
]
