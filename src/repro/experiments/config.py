"""Shared experiment configuration.

Pin the algorithm roster and parameters used throughout Section 4:

* Compressive sensing — rank r=2 as in the paper; our Algorithm 2 run on
  the synthetic Shanghai dataset selects lambda ~= 10 (the paper's taxi
  data selected 100 — the optimum depends on data scale and integrity;
  our own GA-tuned value is the faithful analogue of "according to the
  result of Algorithm 2").
* Naive KNN — K=4.
* Correlation KNN — K=4 (rows at offsets +/-1, +/-2).
* MSSA — window M=24 as suggested by SEER; the ``truncated`` solver is
  used in accuracy experiments (identical estimates, tractable run
  time), the faithful ``covariance`` solver in the Table 2 timing study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines import CorrelationKNN, MSSA, NaiveKNN
from repro.core.completion import CompressiveSensingCompleter

GRANULARITIES_S = (900.0, 1800.0, 3600.0)

# Our Algorithm 2 result on the synthetic Shanghai dataset (see
# EXPERIMENTS.md): rank matches the paper's r=2; lambda lands near 10.
TUNED_RANK = 2
TUNED_LAMBDA = 10.0
CS_ITERATIONS = 60


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named completion algorithm for comparative studies.

    ``factory`` builds a fresh algorithm instance per run (some
    algorithms are stateful across ``complete`` calls only through their
    RNG, but fresh instances keep runs independent).
    """

    name: str
    factory: Callable[[], object]

    def complete(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Run the algorithm; normalizes the CS result to a plain array."""
        algo = self.factory()
        result = algo.complete(values, mask)
        return result.estimate if hasattr(result, "estimate") else result


def make_completer(
    seed: int = 0,
    solver: str = "batched",
    backend: str = "numpy",
    dtype: object = None,
    max_workers: Optional[int] = None,
    **overrides,
) -> CompressiveSensingCompleter:
    """The experiments' CS configuration with optional overrides.

    ``solver`` selects the Algorithm 1 inner solver, ``backend``/
    ``dtype`` the solve kernels and working precision, and
    ``max_workers`` sizes the restart worker pool (all forwarded
    verbatim; see :class:`CompressiveSensingCompleter`).
    """
    params = dict(
        rank=TUNED_RANK,
        lam=TUNED_LAMBDA,
        iterations=CS_ITERATIONS,
        clip_min=0.0,
        solver=solver,
        backend=backend,
        dtype=dtype,
        max_workers=max_workers,
        seed=seed,
    )
    params.update(overrides)
    return CompressiveSensingCompleter(**params)


def default_algorithms(
    seed: int = 0,
    include_mssa: bool = True,
    mssa_solver: str = "truncated",
) -> List[AlgorithmSpec]:
    """The paper's four-algorithm roster (Section 4.2/4.3).

    ``include_mssa=False`` reproduces the Shenzhen experiments, where
    the paper drops MSSA "since MSSA runs very slowly".
    """
    roster = [
        AlgorithmSpec("compressive", lambda: make_completer(seed=seed)),
        AlgorithmSpec("naive-knn", lambda: NaiveKNN(k=4)),
        AlgorithmSpec("correlation-knn", lambda: CorrelationKNN(k=4)),
    ]
    if include_mssa:
        roster.append(
            AlgorithmSpec(
                "mssa",
                lambda: MSSA(
                    window=24, components=5, max_iterations=8, solver=mssa_solver
                ),
            )
        )
    return roster
