"""Persistent content-addressed artifact store for the experiment fabric.

The experiment battery is a DAG of deterministic steps — scenario
builds, aggregations, completions, whole studies, rendered report
fragments — and every invocation used to rebuild all of them from
scratch.  This module gives each step a durable home: outputs are
persisted on disk under a key derived from the step's configuration and
the keys of its inputs, so an unchanged step is *loaded*, not re-run —
locally across invocations and, via ``actions/cache`` in CI, across
workflow runs.

Keying
------
A step key is the SHA-256 of the canonical JSON encoding of::

    {"step": <name>, "config": <canonical config>,
     "inputs": [<upstream step keys>], "store_schema": N}

``config`` goes through :func:`repro.experiments.scenario_cache.canonical_fields`
(the same machinery the in-memory scenario cache and
``repro.obs.manifest`` already use), so dataclass configs, tuples, and
NumPy scalars all hash stably across processes and platforms.  Putting
the *input keys* into the key makes the store a DAG: when an upstream
step's config changes, every downstream key changes with it and the
whole affected subgraph rebuilds.

Durability and integrity
------------------------
Entries are written atomically (temp file in the same directory, then
``os.replace``), each with a JSON sidecar carrying the SHA-256 checksum
of the payload bytes.  A read validates the checksum before unpickling;
a corrupted, truncated, or half-written entry is deleted and reported
as a miss, so the worst case of any on-disk damage is a transparent
rebuild, never a crash or a wrong result.  The on-disk layout is
versioned (``<root>/v<N>/``): bumping :data:`STORE_SCHEMA_VERSION`
orphans every old entry at once.

What the key does NOT cover
---------------------------
The key hashes configuration, not code.  A code change that alters a
step's output without touching any config field will serve stale
artifacts until the store is cleared (``repro store clear``) or the
schema version is bumped.  CI therefore scopes its cache key by the
store schema version, the dependency manifest, *and* a hash of the
``src/`` tree — any source change starts a fresh cache lineage, so a
PR never loads artifacts built by different code — and run manifests
record per-step hit/miss so provenance stays auditable (see
EXPERIMENTS.md).

Steps whose output embeds a *measurement* rather than a pure function
of the config (wall-clock runtimes, latencies) are a special case: a
cached measurement is a stale number from some past run and machine.
The battery marks those cells ``wall_clock=True`` (see
``repro.experiments.runner.BatteryJob``) and a store hit annotates
their rendered blocks with the recording timestamp, so a cached timing
is never presented as the current run's output.

Trust boundary
--------------
Payloads are pickles, and ``get`` unpickles them: loading an entry is
code execution, so the store directory must be trusted exactly like
the repository's own code.  The sidecar checksum defends against
*corruption* (torn writes, bit rot), not *tampering* — whoever can
write the payload can write a matching checksum.  Never point
``REPRO_STORE_DIR`` at a world-writable or shared location, and in CI
keep the ``actions/cache`` lineage branch-scoped (the GitHub default:
a PR can read base-branch caches but cannot poison them).

Concurrency
-----------
Thread-safe via the same double-checked per-key locking as the
in-memory scenario cache; cross-process safe because writes are atomic
renames of deterministic content — two racing writers produce the same
bytes and the last rename wins.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

from repro.experiments.scenario_cache import canonical_fields, scenario_key

T = TypeVar("T")

#: On-disk layout version.  Entries live under ``<root>/v<N>/``; bump
#: this whenever the payload encoding or keying scheme changes so every
#: stale entry is orphaned at once (CI cache keys include it too).
STORE_SCHEMA_VERSION = 1

#: Default store location (repo-relative so ``actions/cache`` can
#: persist it); override with the ``REPRO_STORE_DIR`` environment
#: variable or an explicit ``ArtifactStore(root=...)``.
DEFAULT_STORE_DIR = ".repro-store"

#: Pickle protocol pinned so the same value produces the same bytes on
#: every supported interpreter (protocol 4 covers Python >= 3.4).
_PICKLE_PROTOCOL = 4


def default_store_root() -> Path:
    """The store root: ``$REPRO_STORE_DIR`` or :data:`DEFAULT_STORE_DIR`."""
    return Path(os.environ.get("REPRO_STORE_DIR", DEFAULT_STORE_DIR))


@dataclass(frozen=True)
class StoreEntry:
    """One persisted step output (metadata only; the value stays on disk)."""

    key: str
    step: str
    size_bytes: int
    created_utc: str
    path: Path


@dataclass(frozen=True)
class StepResult:
    """Outcome of :meth:`ArtifactStore.get_or_build`."""

    value: Any
    key: str
    hit: bool


class ArtifactStore:
    """Persistent content-addressed store of experiment step outputs.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).  Defaults to
        ``$REPRO_STORE_DIR`` or ``.repro-store``.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self._lock = threading.Lock()
        self._key_locks: Dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._bytes_read = 0
        self._bytes_written = 0

    # -- keying --------------------------------------------------------
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{STORE_SCHEMA_VERSION}"

    def step_key(
        self,
        step: str,
        config: Any,
        inputs: Sequence[str] = (),
    ) -> str:
        """Content key of a step: config plus upstream step keys.

        ``inputs`` are the keys of the steps this one consumes, in a
        stable order chosen by the caller — part of the key, so a
        changed upstream invalidates the downstream transitively.
        """
        if not step:
            raise ValueError("step name must be non-empty")
        return scenario_key(
            {
                "step": step,
                "config": canonical_fields(config),
                "inputs": list(inputs),
                "store_schema": STORE_SCHEMA_VERSION,
            }
        )

    def _payload_path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.json"

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; any damaged entry is evicted and misses.

        Counts one hit or one miss; a checksum/unpickle failure also
        counts a corruption (``store.corrupt`` metric) and removes both
        files so the next build rewrites the entry cleanly.
        """
        payload_path = self._payload_path(key)
        meta_path = self._meta_path(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            raw = payload_path.read_bytes()
        except (OSError, ValueError):
            # Meta or payload absent/unreadable: a plain miss unless one
            # half exists (a torn write) — then evict the remains.
            if payload_path.exists() or meta_path.exists():
                self._evict_corrupt(key)
            self._count_miss()
            return False, None
        digest = hashlib.sha256(raw).hexdigest()
        if meta.get("checksum") != digest:
            self._evict_corrupt(key)
            self._count_miss()
            return False, None
        try:
            value = pickle.loads(raw)
        except Exception:  # noqa: BLE001 - any unpickle failure means "rebuild"
            self._evict_corrupt(key)
            self._count_miss()
            return False, None
        with self._lock:
            self._hits += 1
            self._bytes_read += len(raw)
        obs_metrics.inc("store.hits")
        try:
            # Refresh mtime so gc's LRU eviction tracks actual use.
            os.utime(payload_path)
        except OSError:
            pass
        return True, value

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry's sidecar metadata, or ``None`` if absent/unreadable.

        Counts nothing — pair with :meth:`get` when provenance (e.g.
        ``created_utc`` of a cached measurement) matters.
        """
        try:
            loaded = json.loads(self._meta_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def _count_miss(self) -> None:
        with self._lock:
            self._misses += 1
        obs_metrics.inc("store.misses")

    def _evict_corrupt(self, key: str) -> None:
        with self._lock:
            self._corrupt += 1
        obs_metrics.inc("store.corrupt")
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- writes --------------------------------------------------------
    def put(self, key: str, value: Any, step: str = "") -> Path:
        """Persist one step output atomically; returns the payload path.

        Payload first, sidecar second — a crash between the two leaves
        a payload without metadata, which :meth:`get` treats as a torn
        write and evicts.
        """
        raw = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        payload_path = self._payload_path(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "checksum": hashlib.sha256(raw).hexdigest(),
            "size_bytes": len(raw),
            "step": step,
            "created_utc": datetime.now(timezone.utc).isoformat(),
            "store_schema": STORE_SCHEMA_VERSION,
        }
        self._atomic_write(payload_path, raw)
        self._atomic_write(
            self._meta_path(key),
            (json.dumps(meta, sort_keys=True) + "\n").encode("utf-8"),
        )
        with self._lock:
            self._bytes_written += len(raw)
        return payload_path

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- build-through -------------------------------------------------
    def get_or_build(
        self,
        step: str,
        config: Any,
        builder: Callable[[], T],
        inputs: Sequence[str] = (),
    ) -> StepResult:
        """Load the step's output, or build and persist it exactly once.

        Concurrent requests for the same key serialize on a per-key
        lock (same discipline as the in-memory scenario cache), so a
        thread-pooled battery never builds a shared step twice.
        """
        key = self.step_key(step, config, inputs)
        with self._lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            hit, value = self.get(key)
            if hit:
                return StepResult(value=value, key=key, hit=True)
            with obs_trace.span("store.build", step=step, key=key[:12]):
                value = builder()
            self.put(key, value, step=step)
        return StepResult(value=value, key=key, hit=False)

    # -- inventory -----------------------------------------------------
    def entries(self) -> List[StoreEntry]:
        """Every intact entry, oldest payload first (gc's eviction order)."""
        out: List[StoreEntry] = []
        if not self.version_dir.is_dir():
            return out
        mtimes: Dict[str, float] = {}
        for meta_path in sorted(self.version_dir.glob("*/*.json")):
            key = meta_path.stem
            payload_path = meta_path.with_suffix(".pkl")
            try:
                # One stat serves both the existence check and the sort
                # key; a concurrent gc/clear deleting the payload between
                # listing and stat just skips the entry.
                mtime = payload_path.stat().st_mtime
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            mtimes[key] = mtime
            out.append(
                StoreEntry(
                    key=key,
                    step=str(meta.get("step", "")),
                    size_bytes=int(meta.get("size_bytes", 0)),
                    created_utc=str(meta.get("created_utc", "")),
                    path=payload_path,
                )
            )
        out.sort(key=lambda e: (mtimes[e.key], e.key))
        return out

    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self.entries())

    def gc(self, max_bytes: int) -> List[StoreEntry]:
        """Evict least-recently-used entries until the store fits.

        Returns the evicted entries.  ``max_bytes=0`` empties the
        store (but keeps the directory; see :meth:`clear`).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        total = sum(e.size_bytes for e in entries)
        evicted: List[StoreEntry] = []
        for entry in entries:  # oldest first
            if total <= max_bytes:
                break
            for path in (entry.path, entry.path.with_suffix(".json")):
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= entry.size_bytes
            evicted.append(entry)
        return evicted

    def clear(self) -> int:
        """Remove every entry of the current schema; returns the count.

        Only touches ``<root>/v<N>`` — other schema versions and any
        foreign files in the root are left alone.
        """
        removed = 0
        if not self.version_dir.is_dir():
            return removed
        for shard in sorted(self.version_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        try:
            self.version_dir.rmdir()
        except OSError:
            pass
        return removed

    # -- accounting ----------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Process-local counters since construction."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "corrupt": self._corrupt,
                "bytes_read": self._bytes_read,
                "bytes_written": self._bytes_written,
            }

    def render_stats(self) -> str:
        """One-line summary, ``store: H hits, M misses, ...``."""
        s = self.stats
        return (
            f"store: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['corrupt']} corrupt, "
            f"{s['bytes_read']:,} B read, {s['bytes_written']:,} B written "
            f"({self.root})"
        )


def format_size(num_bytes: int) -> str:
    """Human-readable size (``repro store ls``)."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{size:.1f} GB"


def render_entries(entries: Sequence[StoreEntry]) -> str:
    """Plain-text inventory table plus a totals line."""
    lines = [f"{'step':<24} {'key':<12} {'size':>10}  created"]
    total = 0
    for entry in entries:
        total += entry.size_bytes
        lines.append(
            f"{entry.step or '-':<24} {entry.key[:12]:<12} "
            f"{format_size(entry.size_bytes):>10}  {entry.created_utc}"
        )
    lines.append(
        f"total: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
        f"{format_size(total)}"
    )
    return "\n".join(lines)
