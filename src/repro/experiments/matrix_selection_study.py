"""Section 4.5 matrix-selection study: Figures 17 and 18.

Estimation quality of a target segment ``r0`` when the TCM is built from
the paper's five segment sets (directly connected / two blocks / random
remote / small subsamples), at 20 % and 40 % integrity, across the four
algorithms.  Expected shape: with small fixed-size sets the segment
choice barely matters and the CS advantage is modest; as the set grows
(Set 2, Set 3) the CS advantage widens.

Errors here are scored on the *anchor column only* — the paper studies
"the estimation quality of a given road segment".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix_selection import SegmentSet, build_paper_sets
from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import AlgorithmSpec, default_algorithms
from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.reporting import format_table
from repro.metrics.errors import nmae
from repro.utils.rng import ensure_rng


@dataclass
class MatrixSelectionConfig:
    """Configuration of the Figures 17/18 reproduction."""

    city: str = "shanghai"
    days: float = 7.0
    slot_s: float = 1800.0  # the paper's 30-minute granularity
    integrity: float = 0.2  # Figure 17; Figure 18 uses 0.4
    anchor: Optional[int] = None  # None = a central segment
    include_mssa: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.integrity < 1:
            raise ValueError(f"integrity must be in (0, 1), got {self.integrity}")


@dataclass
class MatrixSelectionResult:
    """Anchor-segment NMAE per (set, algorithm)."""

    errors: Dict[str, Dict[str, float]]
    sets: List[SegmentSet]
    anchor: int
    config: MatrixSelectionConfig

    def render(self) -> str:
        figure = "Figure 17" if self.config.integrity <= 0.3 else "Figure 18"
        algo_names = list(next(iter(self.errors.values())))
        rows = []
        for seg_set in self.sets:
            row: List[object] = [f"{seg_set.name} (n={seg_set.size})"]
            row.extend(self.errors[seg_set.name][a] for a in algo_names)
            rows.append(row)
        return format_table(
            ["segment set"] + algo_names,
            rows,
            title=(
                f"{figure}: anchor-segment error by matrix construction "
                f"(integrity={self.config.integrity:.0%}, 30 min)"
            ),
        )


def run_matrix_selection(
    config: Optional[MatrixSelectionConfig] = None,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> MatrixSelectionResult:
    """Evaluate the five constructions around one anchor segment."""
    config = config or MatrixSelectionConfig()
    if algorithms is None:
        algorithms = default_algorithms(
            seed=config.seed, include_mssa=config.include_mssa
        )
    fine = build_city_truth(config.city, config.days, seed=config.seed)
    truth = fine.resample(config.slot_s).tcm
    network = fine.network

    anchor = config.anchor
    if anchor is None:
        # The generators order segments centre-outward, so id 0 is the
        # most central segment — a natural well-connected anchor.
        anchor = network.segment_ids[0]
    sets = build_paper_sets(network, anchor, seed=config.seed)

    mask_rng = ensure_rng(config.seed + 1)
    errors: Dict[str, Dict[str, float]] = {}
    for seg_set in sets:
        sub = truth.select_segments(seg_set.segment_ids)
        x = sub.values
        mask = random_integrity_mask(sub.shape, config.integrity, seed=mask_rng)
        measured = np.where(mask, x, 0.0)
        anchor_col = sub.column_of(anchor)
        eval_mask = np.zeros_like(mask)
        eval_mask[:, anchor_col] = ~mask[:, anchor_col]
        cell: Dict[str, float] = {}
        for spec in algorithms:
            estimate = spec.complete(measured, mask)
            cell[spec.name] = nmae(x, estimate, eval_mask)
        errors[seg_set.name] = cell
    return MatrixSelectionResult(
        errors=errors, sets=sets, anchor=anchor, config=config
    )
