"""Robustness studies beyond the paper's random-discard protocol.

The paper thins matrices by *uniform* random discarding (Section 4.1),
but real probe missingness is structured: whole segments go dark, quiet
hours vanish together, and GPS adds bias as well as noise.  This study
stresses the algorithms along three axes:

* **masking structure** — uniform random vs the realistic structured
  mask (heavy-tailed per-segment coverage);
* **speed noise** — additive Gaussian noise on observed cells
  (GPS measurement error surviving aggregation);
* **speed bias** — systematic under-reporting (e.g. probes decelerating
  near report times), which the NMAE cannot average away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.masks import random_integrity_mask, structured_missing_mask
from repro.experiments.config import AlgorithmSpec, default_algorithms
from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.reporting import format_table
from repro.metrics.errors import estimate_error
from repro.utils.rng import ensure_rng


@dataclass
class RobustnessConfig:
    """Configuration of the robustness extension study."""

    city: str = "shanghai"
    days: float = 3.0
    slot_s: float = 1800.0
    integrity: float = 0.2
    noise_levels_kmh: Tuple[float, ...] = (0.0, 2.0, 5.0)
    bias_levels_kmh: Tuple[float, ...] = (0.0, -3.0)
    include_mssa: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.integrity < 1:
            raise ValueError(f"integrity must be in (0, 1), got {self.integrity}")
        if any(n < 0 for n in self.noise_levels_kmh):
            raise ValueError("noise levels must be >= 0")


@dataclass
class RobustnessResult:
    """NMAE per (condition label, algorithm)."""

    errors: Dict[str, Dict[str, float]]
    config: RobustnessConfig

    def render(self) -> str:
        algo_names = list(next(iter(self.errors.values())))
        rows = [
            [label] + [cell[a] for a in algo_names]
            for label, cell in self.errors.items()
        ]
        return format_table(
            ["condition"] + algo_names,
            rows,
            title=(
                f"Robustness study ({self.config.city}, "
                f"integrity={self.config.integrity:.0%})"
            ),
        )


def run_robustness(
    config: Optional[RobustnessConfig] = None,
    algorithms: Optional[List[AlgorithmSpec]] = None,
) -> RobustnessResult:
    """Run the masking/noise/bias stress battery."""
    config = config or RobustnessConfig()
    if algorithms is None:
        algorithms = default_algorithms(
            seed=config.seed, include_mssa=config.include_mssa
        )
    truth = (
        build_city_truth(config.city, config.days, seed=config.seed)
        .resample(config.slot_s)
        .tcm
    )
    x = truth.values
    rng = ensure_rng(config.seed + 1)

    conditions: List[Tuple[str, np.ndarray, np.ndarray]] = []

    # Masking structure.
    uniform = random_integrity_mask(truth.shape, config.integrity, seed=rng)
    structured = structured_missing_mask(truth.shape, config.integrity, seed=rng)
    conditions.append(("uniform mask", np.where(uniform, x, 0.0), uniform))
    conditions.append(("structured mask", np.where(structured, x, 0.0), structured))

    # Observation noise / bias (on the uniform mask).
    for noise in config.noise_levels_kmh:
        # 0.0 is a literal sentinel in the config level lists, never computed.
        # repro-lint: disable-next-line=float-equality
        if noise == 0.0:
            continue
        noisy = x + rng.normal(0.0, noise, size=x.shape)
        noisy = np.clip(noisy, 0.0, None)
        conditions.append(
            (f"noise {noise:g} km/h", np.where(uniform, noisy, 0.0), uniform)
        )
    for bias in config.bias_levels_kmh:
        # Same literal-sentinel justification as the noise loop above.
        # repro-lint: disable-next-line=float-equality
        if bias == 0.0:
            continue
        biased = np.clip(x + bias, 0.0, None)
        conditions.append(
            (f"bias {bias:+g} km/h", np.where(uniform, biased, 0.0), uniform)
        )

    errors: Dict[str, Dict[str, float]] = {}
    for label, measured, mask in conditions:
        cell: Dict[str, float] = {}
        for spec in algorithms:
            estimate = spec.complete(measured, mask)
            cell[spec.name] = estimate_error(x, estimate, mask)
        errors[label] = cell
    return RobustnessResult(errors=errors, config=config)
