"""Write the experiment battery to a Markdown report.

``write_report`` runs (or accepts) the full battery of rendered blocks
and lays them out as a self-contained Markdown document with the
experiment index, one fenced block per table/figure, and a generation
footer — the artifact a reproduction run hands to a reviewer.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.experiments.runner import PROFILES, run_all

SECTION_TITLES = {
    "table1": "Table 1 — integrity vs granularity vs fleet size",
    "fig2": "Figure 2 — CDF of per-road integrity",
    "fig3": "Figure 3 — CDF of per-slot integrity",
    "fig4": "Figure 4 — singular value magnitudes",
    "fig5_to_7": "Figures 5-7 — eigenflow reconstructions",
    "fig8": "Figure 8 — eigenflow types by singular-value order",
    "fig11": "Figure 11 — error vs integrity (Shanghai)",
    "fig12": "Figure 12 — error vs integrity (Shenzhen)",
    "fig13": "Figure 13 — relative-error CDFs (Shanghai)",
    "fig14": "Figure 14 — relative-error CDFs (Shenzhen)",
    "fig15": "Figure 15 — error vs rank bound",
    "fig16": "Figure 16 — error vs tradeoff coefficient",
    "fig17": "Figure 17 — matrix construction at 20% integrity",
    "fig18": "Figure 18 — matrix construction at 40% integrity",
    "table2": "Table 2 — run times",
    "sampling_extension": "Extension — sampling-process impact",
    "robustness_extension": "Extension — robustness (masking / noise / bias)",
    "streaming_extension": "Extension — streaming vs batch",
}


def render_bench_section(bench_path: Union[str, Path]) -> str:
    """Markdown summary of a committed ``BENCH_*.json`` artifact.

    Pulls the headline speedups and equivalence bounds out of the
    benchmark payload so the reproduction report records how fast the
    pipeline is *and* that the fast paths match their references.
    """
    payload = json.loads(Path(bench_path).read_text())
    lines: List[str] = [
        f"Benchmark artifact: `{Path(bench_path).name}` "
        f"(schema {payload.get('schema', '?')}).",
        "",
        "| measurement | vectorized vs reference speedup | max abs diff |",
        "|---|---|---|",
    ]
    speedups = payload.get("speedups", {})
    equivalence = payload.get("equivalence_max_abs_diff", {})
    for key in sorted(speedups):
        diff = equivalence.get(key)
        diff_text = f"{diff:.2e}" if diff is not None else "—"
        lines.append(f"| {key} | {speedups[key]:.1f}x | {diff_text} |")
    return "\n".join(lines)


def render_manifest_section(manifest_path: Union[str, Path]) -> str:
    """Markdown per-phase timing rollup of a committed ``MANIFEST_*.json``.

    Reads the run manifest's span trace (:mod:`repro.obs`) and renders
    where the battery's wall time went, so the reproduction report
    records the cost profile of the run alongside its results.
    """
    from repro.obs.manifest import load_manifest
    from repro.obs.summarize import per_phase_rollup, spans_from_manifest

    payload = load_manifest(manifest_path)
    spans = spans_from_manifest(payload)
    kind = payload.get("kind", "?")
    sha = str(payload.get("git_sha") or "-")[:12]
    lines: List[str] = [
        f"Run manifest: `{Path(manifest_path).name}` "
        f"(kind `{kind}`, git `{sha}`, {len(spans)} spans; "
        "regenerate with `repro experiments --manifest <path>` and "
        "inspect with `repro trace summarize <path>`).",
    ]
    if not spans:
        lines.append("")
        lines.append("No spans recorded (observability was off for this run).")
        return "\n".join(lines)
    phases = per_phase_rollup(spans)
    traced_total = sum(total for _, _, total in phases)
    lines += [
        "",
        "| phase | spans | total (s) | share |",
        "|---|---|---|---|",
    ]
    for name, count, total in phases:
        share = f"{100.0 * total / traced_total:.1f}%" if traced_total > 0 else "—"
        lines.append(f"| {name} | {count} | {total:.3f} | {share} |")
    return "\n".join(lines)


def render_report(
    blocks: Mapping[str, str],
    profile: str = "quick",
    seed: int = 0,
    bench_path: Optional[Union[str, Path]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> str:
    """Lay rendered blocks out as one Markdown document.

    ``bench_path`` (a committed ``BENCH_*.json``) appends a performance
    section summarizing the benchmark artifact; ``manifest_path`` (a
    committed ``MANIFEST_*.json``) appends the per-phase timing rollup.
    """
    if not blocks:
        raise ValueError("no blocks to render")
    lines = [
        "# Reproduction report",
        "",
        "Compressive Sensing Approach to Urban Traffic Sensing "
        "(ICDCS 2011 / TMC 2013) — regenerated tables and figures.",
        "",
        f"Profile: `{profile}` · seed: `{seed}` · "
        "see EXPERIMENTS.md for paper-vs-measured analysis.",
        "",
    ]
    for key, text in blocks.items():
        title = SECTION_TITLES.get(key, key)
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(text.rstrip())
        lines.append("```")
        lines.append("")
    if bench_path is not None:
        lines.append("## Performance benchmark")
        lines.append("")
        lines.append(render_bench_section(bench_path))
        lines.append("")
    if manifest_path is not None:
        lines.append("## Run timing (per-phase rollup)")
        lines.append("")
        lines.append(render_manifest_section(manifest_path))
        lines.append("")
    lines.append("---")
    lines.append(
        "Generated by `repro.experiments.report_writer` "
        "(`python -m repro.cli report`)."
    )
    lines.append("")
    return "\n".join(lines)


def default_bench_path() -> Optional[Path]:
    """The newest committed ``BENCH_*.json`` in the working tree, if any."""
    candidates = sorted(Path.cwd().glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def default_manifest_path() -> Optional[Path]:
    """The newest committed ``MANIFEST_*.json`` in the working tree, if any.

    "Newest" means the latest embedded ``_<YYYY-MM-DD>`` date stamp, so
    a freshly regenerated manifest wins regardless of how its kind
    prefix sorts; undated names rank oldest.  Ties break on the full
    name for determinism.
    """
    candidates = sorted(
        Path.cwd().glob("MANIFEST_*.json"),
        key=lambda p: (
            (m.group(1) if (m := re.search(r"_(\d{4}-\d{2}-\d{2})\.json$", p.name)) else ""),
            p.name,
        ),
    )
    return candidates[-1] if candidates else None


def write_report(
    path: Union[str, Path],
    profile: str = "quick",
    seed: int = 0,
    blocks: Optional[Dict[str, str]] = None,
    bench_path: Optional[Union[str, Path]] = None,
    manifest_path: Optional[Union[str, Path]] = None,
) -> Path:
    """Run the battery (unless ``blocks`` given) and write the report.

    ``bench_path`` / ``manifest_path`` default to the newest
    ``BENCH_*.json`` / ``MANIFEST_*.json`` in the current directory
    (pass a falsy non-None value to disable either).  Returns the
    written path.
    """
    if profile not in PROFILES:
        raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
    if blocks is None:
        blocks = run_all(profile=profile, seed=seed)
    if bench_path is None:
        bench_path = default_bench_path()
    if manifest_path is None:
        manifest_path = default_manifest_path()
    path = Path(path)
    path.write_text(
        render_report(
            blocks,
            profile=profile,
            seed=seed,
            bench_path=bench_path or None,
            manifest_path=manifest_path or None,
        )
    )
    return path
