"""Section 3.1 hidden-structure study: Figures 4-8.

Runs PCA/SVD over a (near-complete) downtown traffic condition matrix
and produces:

* Figure 4 — singular value magnitudes (ratio to the maximum);
* Figure 5 — an example eigenflow time series of each type;
* Figure 6 — one segment's series reconstructed from the first five
  principal components, with the reconstruction RMSE (the paper reports
  ~9.67 at 30-minute granularity);
* Figure 7 — the segment's series reconstructed from each eigenflow
  type separately;
* Figure 8 — eigenflow-type occurrences in singular-value order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.eigenflows import (
    EigenflowAnalysis,
    EigenflowType,
    analyze_eigenflows,
    reconstruct_from_types,
)
from repro.core.svd_analysis import (
    SpectrumSummary,
    rank_r_approximation,
    singular_value_spectrum,
)
from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.experiments.reporting import format_series, format_table
from repro.metrics.errors import rmse
from repro.roadnet.generators import shanghai_downtown_like
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.rng import spawn_rngs


@dataclass
class StructureStudyConfig:
    """Configuration of the Figures 4-8 reproduction."""

    days: float = 7.0
    slot_s: float = 1800.0  # Figure 6's granularity is 30 minutes
    segment_index: int = 0  # which column the single-segment figures use
    reconstruction_rank: int = 5
    seed: int = 0


@dataclass
class StructureStudyResult:
    """All structure artifacts.

    Attributes
    ----------
    spectrum:
        Figure 4's singular values.
    analysis:
        Eigenflow decomposition + classification (Figures 5, 7, 8).
    segment_series:
        The studied segment's true series.
    rank_r_series:
        Its rank-``reconstruction_rank`` reconstruction (Figure 6).
    reconstruction_rmse:
        RMSE between the two (paper: ~9.67).
    type_series:
        Per-eigenflow-type reconstructions of the segment (Figure 7).
    """

    spectrum: SpectrumSummary
    analysis: EigenflowAnalysis
    segment_series: np.ndarray
    rank_r_series: np.ndarray
    reconstruction_rmse: float
    type_series: Dict[EigenflowType, np.ndarray]
    config: StructureStudyConfig

    def render_spectrum(self, head: int = 12) -> str:
        """Figure 4: top singular value magnitudes."""
        mags = self.spectrum.magnitudes[:head]
        return format_series(
            "index",
            list(range(1, len(mags) + 1)),
            {"sigma_i / sigma_1": list(mags)},
            title="Figure 4: singular value magnitudes",
        )

    def render_type_occurrence(self, head: int = 20) -> str:
        """Figure 8: eigenflow type per singular-value position."""
        rows = [
            [i + 1, self.analysis.types[i].name.lower()]
            for i in range(min(head, self.analysis.num_flows))
        ]
        return format_table(
            ["order", "type"],
            rows,
            title="Figure 8: eigenflow types in singular-value order",
        )

    def render_reconstruction_summary(self) -> str:
        """Figure 6/7 summary: RMSE per reconstruction flavour."""
        truth = self.segment_series
        rows: List[List[object]] = [
            ["rank-%d" % self.config.reconstruction_rank, self.reconstruction_rmse]
        ]
        for flow_type, series in self.type_series.items():
            rows.append([f"type-{int(flow_type)} only", rmse(truth[None], series[None])])
        return format_table(
            ["reconstruction", "rmse (km/h)"],
            rows,
            title="Figures 6-7: single-segment reconstruction error",
        )


def run_structure_study(
    config: Optional[StructureStudyConfig] = None,
    tcm: Optional[TrafficConditionMatrix] = None,
) -> StructureStudyResult:
    """PCA the downtown TCM and classify its eigenflows.

    Pass ``tcm`` to analyze an externally built matrix; otherwise the
    default synthetic downtown-Shanghai week is generated.
    """
    config = config or StructureStudyConfig()
    if tcm is None:
        traffic_rng, = spawn_rngs(config.seed, 1)
        network = shanghai_downtown_like(seed=0)
        grid = TimeGrid.over_days(config.days, config.slot_s)
        tcm = GroundTruthTraffic.synthesize(network, grid, seed=traffic_rng).tcm
    if not 0 <= config.segment_index < tcm.num_segments:
        raise ValueError(
            f"segment_index {config.segment_index} outside 0..{tcm.num_segments - 1}"
        )

    values = tcm.values
    spectrum = singular_value_spectrum(values)
    analysis = analyze_eigenflows(values)

    j = config.segment_index
    truth_series = values[:, j]
    rank_r = rank_r_approximation(values, config.reconstruction_rank)[:, j]
    type_series = {
        flow_type: reconstruct_from_types(analysis, flow_type)[:, j]
        for flow_type in EigenflowType
    }
    return StructureStudyResult(
        spectrum=spectrum,
        analysis=analysis,
        segment_series=truth_series,
        rank_r_series=rank_r,
        reconstruction_rmse=rmse(truth_series[None], rank_r[None]),
        type_series=type_series,
        config=config,
    )
