"""Section 4.4 parameter sensitivity: Figures 15 and 16.

* Figure 15 — estimate error against the rank bound ``r`` with
  ``lambda = 1`` at 30-minute granularity: the paper finds the error
  lowest at r=2 and growing as larger ranks chase measurement noise.
* Figure 16 — estimate error against the tradeoff coefficient
  ``lambda`` with ``r = 32``: a U-shape across 0.001..2000 with the
  optimum near 100, balancing rank minimization against measurement
  fitness.

Also hosts the Algorithm 2 driver that derives tuned parameters for the
synthetic datasets (the analogue of the paper's "according to the result
of Algorithm 2, we set r and lambda to 2 and 100").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.completion import CompressiveSensingCompleter
from repro.core.tuning import GeneticTuner, TuningResult
from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import CS_ITERATIONS
from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.reporting import format_series
from repro.metrics.errors import estimate_error
from repro.utils.rng import ensure_rng

PAPER_RANK_SWEEP = (1, 2, 4, 8, 16, 32, 64)
PAPER_LAMBDA_SWEEP = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 500.0, 2000.0)


@dataclass
class ParamSensitivityConfig:
    """Configuration of the Figures 15/16 reproduction."""

    city: str = "shanghai"
    days: float = 7.0
    slot_s: float = 1800.0  # both figures use 30-minute granularity
    integrity: float = 0.2
    rank_sweep: Tuple[int, ...] = PAPER_RANK_SWEEP
    rank_sweep_lambda: float = 1.0
    lambda_sweep: Tuple[float, ...] = PAPER_LAMBDA_SWEEP
    lambda_sweep_rank: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.integrity < 1:
            raise ValueError(f"integrity must be in (0, 1), got {self.integrity}")
        if any(r < 1 for r in self.rank_sweep):
            raise ValueError("ranks must be >= 1")
        if any(l <= 0 for l in self.lambda_sweep):
            raise ValueError("lambdas must be positive")


@dataclass
class ParamSensitivityResult:
    """Error curves over the two parameter sweeps."""

    rank_errors: Dict[int, float]
    lambda_errors: Dict[float, float]
    config: ParamSensitivityConfig

    @property
    def best_rank(self) -> int:
        return min(self.rank_errors, key=self.rank_errors.get)

    @property
    def best_lambda(self) -> float:
        return min(self.lambda_errors, key=self.lambda_errors.get)

    def render_rank(self) -> str:
        from repro.experiments.charts import ascii_line_chart

        ranks = list(self.config.rank_sweep)
        errors = [self.rank_errors[r] for r in ranks]
        table = format_series(
            "rank r",
            ranks,
            {"estimate error": errors},
            title=(
                f"Figure 15: error vs rank bound "
                f"(lambda={self.config.rank_sweep_lambda}, 30 min)"
            ),
        )
        chart = ascii_line_chart(
            ranks, {"error": errors}, y_label="NMAE", height=8
        )
        return f"{table}\n{chart}"

    def render_lambda(self) -> str:
        from repro.experiments.charts import ascii_line_chart

        lams = list(self.config.lambda_sweep)
        errors = [self.lambda_errors[l] for l in lams]
        table = format_series(
            "lambda",
            lams,
            {"estimate error": errors},
            title=(
                f"Figure 16: error vs tradeoff coefficient "
                f"(r={self.config.lambda_sweep_rank}, 30 min)"
            ),
        )
        chart = ascii_line_chart(
            lams, {"error": errors}, y_label="NMAE", height=8
        )
        return f"{table}\n{chart}"


def run_param_sensitivity(
    config: Optional[ParamSensitivityConfig] = None,
) -> ParamSensitivityResult:
    """Run both parameter sweeps on the same masked matrix."""
    config = config or ParamSensitivityConfig()
    truth = (
        build_city_truth(config.city, config.days, seed=config.seed)
        .resample(config.slot_s)
        .tcm
    )
    x = truth.values
    mask = random_integrity_mask(truth.shape, config.integrity, seed=config.seed + 1)
    measured = np.where(mask, x, 0.0)

    rank_errors: Dict[int, float] = {}
    for r in config.rank_sweep:
        completer = CompressiveSensingCompleter(
            rank=r,
            lam=config.rank_sweep_lambda,
            iterations=CS_ITERATIONS,
            clip_min=0.0,
            seed=config.seed,
        )
        estimate = completer.complete(measured, mask).estimate
        rank_errors[r] = estimate_error(x, estimate, mask)

    lambda_errors: Dict[float, float] = {}
    for lam in config.lambda_sweep:
        completer = CompressiveSensingCompleter(
            rank=config.lambda_sweep_rank,
            lam=lam,
            iterations=CS_ITERATIONS,
            clip_min=0.0,
            seed=config.seed,
        )
        estimate = completer.complete(measured, mask).estimate
        lambda_errors[lam] = estimate_error(x, estimate, mask)

    return ParamSensitivityResult(
        rank_errors=rank_errors, lambda_errors=lambda_errors, config=config
    )


def run_algorithm2(
    city: str = "shanghai",
    days: float = 7.0,
    slot_s: float = 1800.0,
    integrity: float = 0.2,
    seed: int = 0,
    tuner: Optional[GeneticTuner] = None,
) -> TuningResult:
    """Tune (r, lambda) on a masked synthetic city matrix via Algorithm 2."""
    truth = build_city_truth(city, days, seed=seed).resample(slot_s).tcm
    mask = random_integrity_mask(truth.shape, integrity, seed=seed + 1)
    measured = np.where(mask, truth.values, 0.0)
    tuner = tuner or GeneticTuner(seed=seed)
    return tuner.tune(measured, mask)
