"""Section 2.3 integrity study: Table 1, Figure 2, Figure 3.

Methodology mirrors the paper: one 24-hour simulation of the full probe
fleet over the inner-city network, then *subsets* of vehicles are
extracted from the complete report set (the paper analyzes 500 / 1,000 /
2,000 of the 4,000 Shanghai taxis the same way) and the measurement
matrix integrity is computed per fleet size and time granularity.

The paper's inner region has 5,812 road segments; the faithful run uses
:func:`repro.roadnet.shanghai_inner_like` at that exact size.  Because a
metropolitan 24-hour simulation takes minutes, drivers accept a
``scale`` knob that shrinks the network and fleet proportionally for
quick runs; the benchmark suite records which scale produced its
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tcm import TimeGrid
from repro.experiments.reporting import format_series, format_table
from repro.mobility.fleet import FleetConfig, FleetSimulator
from repro.probes.aggregation import aggregate_reports
from repro.probes.integrity import IntegrityReport, integrity_summary
from repro.probes.report import ReportBatch
from repro.roadnet.generators import grid_city, shanghai_inner_like
from repro.roadnet.network import RoadNetwork
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.rng import SeedLike, spawn_rngs

PAPER_FLEET_SIZES = (500, 1_000, 2_000)
BASE_SLOT_S = 900.0


@dataclass
class IntegrityStudyConfig:
    """Configuration of the Table 1 / Fig 2 / Fig 3 reproduction.

    Attributes
    ----------
    fleet_sizes:
        Vehicle subset sizes to analyze (paper: 500, 1,000, 2,000).
    granularities_s:
        Slot lengths (paper: 15, 30, 60 minutes).
    duration_days:
        Simulated span (paper: 24 hours on Feb 18, 2007).
    scale:
        1.0 = the paper's 5,812-segment inner network; smaller values
        shrink the network (and proportionally the fleet) for fast runs.
    """

    fleet_sizes: Tuple[int, ...] = PAPER_FLEET_SIZES
    granularities_s: Tuple[float, ...] = (900.0, 1800.0, 3600.0)
    duration_days: float = 1.0
    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.fleet_sizes:
            raise ValueError("fleet_sizes must be non-empty")
        if any(s < 1 for s in self.fleet_sizes):
            raise ValueError("fleet sizes must be >= 1")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")

    @property
    def scaled_fleet_sizes(self) -> List[int]:
        return [max(5, int(round(s * self.scale))) for s in self.fleet_sizes]


@dataclass
class IntegrityStudyResult:
    """All integrity artifacts of one study run.

    Attributes
    ----------
    table1:
        ``{(granularity_s, nominal_fleet_size): overall integrity}``.
    road_reports, slot_reports:
        Per (granularity, fleet) :class:`IntegrityReport` for the CDFs
        of Figures 2 and 3 (at the 15-minute granularity the paper's
        figures use).
    num_segments:
        Segments in the analyzed network.
    """

    table1: Dict[Tuple[float, int], float]
    reports: Dict[Tuple[float, int], IntegrityReport]
    num_segments: int
    config: IntegrityStudyConfig

    def render_table1(self) -> str:
        """Table 1's rows: integrity per granularity x fleet size."""
        sizes = list(self.config.fleet_sizes)
        headers = ["Time gran."] + [f"N={s:,}" for s in sizes]
        rows = []
        for gran in self.config.granularities_s:
            row: List[object] = [f"{int(gran / 60)} min"]
            for size in sizes:
                row.append(f"{self.table1[(gran, size)] * 100:.2f}%")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=f"Table 1: integrity summary ({self.num_segments} segments)",
        )

    def render_road_cdf(self, thresholds: Sequence[float] = (0.2, 0.4, 0.6, 0.8)) -> str:
        """Figure 2's series: fraction of roads at or below each integrity."""
        gran = min(self.config.granularities_s)
        series = {
            f"N={size:,}": [
                self.reports[(gran, size)].roads_below(t) for t in thresholds
            ]
            for size in self.config.fleet_sizes
        }
        return format_series(
            "integrity<=",
            list(thresholds),
            series,
            title="Figure 2: CDF of integrity of roads",
        )

    def render_slot_cdf(self, thresholds: Sequence[float] = (0.1, 0.18, 0.3, 0.5)) -> str:
        """Figure 3's series: fraction of slots at or below each integrity."""
        gran = min(self.config.granularities_s)
        series = {
            f"N={size:,}": [
                self.reports[(gran, size)].slots_below(t) for t in thresholds
            ]
            for size in self.config.fleet_sizes
        }
        return format_series(
            "integrity<=",
            list(thresholds),
            series,
            title="Figure 3: CDF of integrity of time slots",
        )


def build_inner_network(scale: float, seed: SeedLike = 0) -> RoadNetwork:
    """Inner-city network at the requested scale.

    ``scale=1.0`` is the paper's 5,812-segment region; smaller scales use
    a proportionally smaller grid.
    """
    if scale >= 1.0:
        return shanghai_inner_like(seed=seed)
    target_rows = max(4, int(round(39 * np.sqrt(scale))))
    return grid_city(
        target_rows, target_rows, block_m=300.0, seed=seed, name="inner-scaled"
    )


def run_integrity_study(
    config: Optional[IntegrityStudyConfig] = None,
) -> IntegrityStudyResult:
    """Simulate once at the largest fleet, subset down, tabulate integrity."""
    config = config or IntegrityStudyConfig()
    net_rng, traffic_rng, fleet_rng = spawn_rngs(config.seed, 3)
    network = build_inner_network(config.scale, seed=net_rng)

    fine_grid = TimeGrid.over_days(config.duration_days, BASE_SLOT_S)
    truth = GroundTruthTraffic.synthesize(network, fine_grid, seed=traffic_rng)

    sizes = config.scaled_fleet_sizes
    full_size = max(sizes)
    simulator = FleetSimulator(
        truth, config=FleetConfig(num_vehicles=full_size), seed=fleet_rng
    )
    full_reports = simulator.run()

    table1: Dict[Tuple[float, int], float] = {}
    reports: Dict[Tuple[float, int], IntegrityReport] = {}
    for nominal, actual in zip(config.fleet_sizes, sizes):
        batch = full_reports.subsample_vehicles(range(actual))
        for gran in config.granularities_s:
            grid = _grid_at(fine_grid, gran)
            tcm = aggregate_reports(batch, grid, network.segment_ids)
            summary = integrity_summary(tcm)
            table1[(gran, nominal)] = summary.overall
            reports[(gran, nominal)] = summary
    return IntegrityStudyResult(
        table1=table1,
        reports=reports,
        num_segments=network.num_segments,
        config=config,
    )


def _grid_at(fine_grid: TimeGrid, slot_s: float) -> TimeGrid:
    """Coarser grid covering the same span as ``fine_grid``."""
    ratio = int(round(slot_s / fine_grid.slot_s))
    if ratio < 1 or abs(slot_s - ratio * fine_grid.slot_s) > 1e-9:
        raise ValueError(f"slot_s {slot_s} incompatible with base grid")
    return TimeGrid(
        start_s=fine_grid.start_s,
        slot_s=slot_s,
        num_slots=fine_grid.num_slots // ratio,
    )
