"""Sampling-process impact study (the paper's third future-work item).

The paper's Definition 1 approximates the mean flow speed by the average
of probe speeds and explicitly defers "the impact of the number of probe
samples" to future work.  This study quantifies it on the full pipeline:
for a fixed downtown network and ground truth, sweep the fleet size and
the reporting interval, and measure

* the measurement matrix integrity each configuration yields,
* the *measurement error* — how far observed cell averages deviate from
  the true mean flow speed (sampling noise of the probe average), and
* the end-to-end estimate error of the CS completion against ground
  truth over the cells that were missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.tcm import TimeGrid
from repro.experiments.config import make_completer
from repro.experiments.reporting import format_table
from repro.metrics.errors import estimate_error, nmae
from repro.mobility.fleet import FleetConfig, FleetSimulator
from repro.mobility.reporting import ReportingConfig
from repro.probes.aggregation import aggregate_reports
from repro.roadnet.generators import grid_city
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.rng import spawn_rngs


@dataclass
class SamplingStudyConfig:
    """Configuration of the sampling-impact extension study."""

    days: float = 1.0
    slot_s: float = 1800.0
    fleet_sizes: Tuple[int, ...] = (100, 250, 500, 1_000)
    reporting_intervals_s: Tuple[float, ...] = (30.0, 120.0, 300.0)
    grid_rows: int = 8
    grid_cols: int = 9
    seed: int = 0


@dataclass
class SamplingPoint:
    """One (fleet size, reporting interval) configuration's outcome."""

    fleet_size: int
    interval_s: float
    integrity: float
    measurement_nmae: float
    estimate_nmae: float


@dataclass
class SamplingStudyResult:
    """All sampled configurations."""

    points: List[SamplingPoint]
    config: SamplingStudyConfig

    def render(self) -> str:
        rows = [
            [
                p.fleet_size,
                f"{p.interval_s:.0f}",
                f"{p.integrity:.3f}",
                f"{p.measurement_nmae:.4f}",
                f"{p.estimate_nmae:.4f}",
            ]
            for p in self.points
        ]
        return format_table(
            ["fleet", "interval (s)", "integrity", "measurement NMAE", "estimate NMAE"],
            rows,
            title="Sampling-process impact (extension study)",
        )


def run_sampling_study(
    config: Optional[SamplingStudyConfig] = None,
) -> SamplingStudyResult:
    """Sweep fleet size x reporting interval on the full pipeline."""
    config = config or SamplingStudyConfig()
    net_rng, traffic_rng, fleet_seed_rng = spawn_rngs(config.seed, 3)
    network = grid_city(
        config.grid_rows, config.grid_cols, seed=net_rng, name="sampling-study"
    )
    fine_grid = TimeGrid.over_days(config.days, 900.0)
    fine_truth = GroundTruthTraffic.synthesize(network, fine_grid, seed=traffic_rng)
    truth = fine_truth.resample(config.slot_s)
    x = truth.tcm.values

    points: List[SamplingPoint] = []
    for interval in config.reporting_intervals_s:
        for fleet_size in config.fleet_sizes:
            reporting = ReportingConfig(interval_range_s=(interval, interval))
            fleet = FleetConfig(num_vehicles=fleet_size, reporting=reporting)
            simulator = FleetSimulator(
                fine_truth,
                config=fleet,
                seed=int(fleet_seed_rng.integers(0, 2**63 - 1)),
            )
            reports = simulator.run()
            measured = aggregate_reports(
                reports, truth.grid, network.segment_ids
            )
            mask = measured.mask
            meas_err = nmae(x, measured.values, mask) if mask.any() else float("nan")
            if mask.any() and not mask.all():
                completer = make_completer(seed=config.seed)
                estimate = completer.complete(measured.values, mask).estimate
                est_err = estimate_error(x, estimate, mask)
            else:
                est_err = float("nan")
            points.append(
                SamplingPoint(
                    fleet_size=fleet_size,
                    interval_s=interval,
                    integrity=measured.integrity,
                    measurement_nmae=meas_err,
                    estimate_nmae=est_err,
                )
            )
    return SamplingStudyResult(points=points, config=config)
