"""Section 4.3 comparative study: Figures 11 and 12.

For each time granularity (15/30/60 min) and each integrity level, the
ground-truth downtown matrix is randomly thinned to a measurement matrix
(the paper "randomly discard[s] some elements"), every algorithm
completes it, and the estimate error (Definition 2, over the discarded
cells) is recorded.

Figure 11 uses the Shanghai configuration (221 segments, MSSA included);
Figure 12 the Shenzhen configuration (198 segments, MSSA excluded
because "MSSA runs very slowly").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tcm import TimeGrid, TrafficConditionMatrix
from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import AlgorithmSpec, default_algorithms
from repro.experiments.reporting import format_series
from repro.experiments.scenario_cache import GLOBAL_SCENARIO_CACHE
from repro.metrics.errors import estimate_error
from repro.roadnet.generators import shanghai_downtown_like, shenzhen_downtown_like
from repro.traffic.groundtruth import GroundTruthTraffic
from repro.utils.rng import ensure_rng, spawn_rngs

PAPER_INTEGRITIES = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95)


@dataclass
class ErrorVsIntegrityConfig:
    """Configuration of the Figure 11/12 reproduction."""

    city: str = "shanghai"
    days: float = 7.0
    granularities_s: Tuple[float, ...] = (900.0, 1800.0, 3600.0)
    integrities: Tuple[float, ...] = PAPER_INTEGRITIES
    include_mssa: Optional[bool] = None  # None = paper's per-city choice
    seed: int = 0

    def __post_init__(self) -> None:
        if self.city not in ("shanghai", "shenzhen"):
            raise ValueError(f"city must be 'shanghai' or 'shenzhen', got {self.city!r}")
        if not self.integrities:
            raise ValueError("integrities must be non-empty")
        for v in self.integrities:
            if not 0 < v < 1:
                raise ValueError(f"integrity {v} must be in (0, 1)")

    @property
    def mssa_included(self) -> bool:
        if self.include_mssa is not None:
            return self.include_mssa
        return self.city == "shanghai"


@dataclass
class ErrorVsIntegrityResult:
    """NMAE per (granularity, integrity, algorithm).

    ``errors[(gran_s, integrity)][algorithm] = nmae``.
    """

    errors: Dict[Tuple[float, float], Dict[str, float]]
    config: ErrorVsIntegrityConfig

    def series_for(self, gran_s: float) -> Dict[str, List[float]]:
        """One granularity's error-vs-integrity curves, per algorithm."""
        names = self.algorithm_names()
        return {
            name: [
                self.errors[(gran_s, integ)][name]
                for integ in self.config.integrities
            ]
            for name in names
        }

    def algorithm_names(self) -> List[str]:
        first = self.errors[next(iter(self.errors))]
        return list(first)

    def render(self) -> str:
        """All granularities' series, figure-style (table + chart)."""
        from repro.experiments.charts import ascii_line_chart

        figure = "Figure 11" if self.config.city == "shanghai" else "Figure 12"
        blocks = []
        for gran in self.config.granularities_s:
            series = self.series_for(gran)
            table = format_series(
                "integrity",
                list(self.config.integrities),
                series,
                title=(
                    f"{figure}: estimate error vs integrity "
                    f"({self.config.city}, {int(gran / 60)} min)"
                ),
            )
            chart = ascii_line_chart(
                list(self.config.integrities), series, y_label="NMAE", height=10
            )
            blocks.append(f"{table}\n{chart}")
        return "\n\n".join(blocks)


def build_city_truth(
    city: str, days: float, seed: int = 0, use_cache: bool = True
) -> GroundTruthTraffic:
    """The city's downtown ground truth at the base 15-min granularity.

    Seven experiment drivers request the same (city, days, seed) truth;
    the result is served from the process-wide scenario cache so each
    city is synthesized once per run.  The cached object is shared —
    treat it as read-only.  ``use_cache=False`` forces a cold build
    (tests compare it bit-for-bit against the cached copy).
    """
    if city not in ("shanghai", "shenzhen"):
        raise ValueError(f"unknown city {city!r}")
    if not use_cache:
        return _build_city_truth_uncached(city, days, seed)
    return GLOBAL_SCENARIO_CACHE.get_or_build(
        {"kind": "city_truth", "city": city, "days": days, "seed": seed},
        lambda: _build_city_truth_uncached(city, days, seed),
    )


def _build_city_truth_uncached(
    city: str, days: float, seed: int
) -> GroundTruthTraffic:
    traffic_rng, = spawn_rngs(seed, 1)
    if city == "shanghai":
        network = shanghai_downtown_like(seed=0)
    else:
        network = shenzhen_downtown_like(seed=1)
    grid = TimeGrid.over_days(days, 900.0)
    return GroundTruthTraffic.synthesize(network, grid, seed=traffic_rng)


def run_error_vs_integrity(
    config: Optional[ErrorVsIntegrityConfig] = None,
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
) -> ErrorVsIntegrityResult:
    """Run the full comparative sweep."""
    config = config or ErrorVsIntegrityConfig()
    if algorithms is None:
        algorithms = default_algorithms(
            seed=config.seed, include_mssa=config.mssa_included
        )
    fine_truth = build_city_truth(config.city, config.days, seed=config.seed)
    mask_rng = ensure_rng(config.seed + 1)

    errors: Dict[Tuple[float, float], Dict[str, float]] = {}
    for gran in config.granularities_s:
        truth = fine_truth.resample(gran).tcm
        x = truth.values
        for integ in config.integrities:
            mask = random_integrity_mask(truth.shape, integ, seed=mask_rng)
            measured = np.where(mask, x, 0.0)
            cell: Dict[str, float] = {}
            for spec in algorithms:
                estimate = spec.complete(measured, mask)
                cell[spec.name] = estimate_error(x, estimate, mask)
            errors[(gran, integ)] = cell
    return ErrorVsIntegrityResult(errors=errors, config=config)
