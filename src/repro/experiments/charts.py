"""Plain-text charts for figure-style experiment output.

The benchmark harness prints tables; for the figures it also helps to
*see* the shape (the Figure 16 U-curve, the Figure 4 knee).  These
renderers draw small ASCII line/bar charts with no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

_SERIES_MARKS = "ox+*#@%&"


def ascii_line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render one or more series as an ASCII scatter-line chart.

    X positions are spread evenly over the value order (category-style),
    which suits the log-ish sweeps the paper plots.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    names = list(series)
    if not names:
        raise ValueError("no series to plot")
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    if not x_values:
        raise ValueError("no points to plot")

    all_values = np.concatenate([np.asarray(series[n], dtype=float) for n in names])
    finite = all_values[np.isfinite(all_values)]
    if finite.size == 0:
        raise ValueError("no finite values to plot")
    y_min, y_max = float(finite.min()), float(finite.max())
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    n_points = len(x_values)
    for s_idx, name in enumerate(names):
        mark = _SERIES_MARKS[s_idx % len(_SERIES_MARKS)]
        for i, value in enumerate(series[name]):
            if not np.isfinite(value):
                continue
            col = int(round(i * (width - 1) / max(1, n_points - 1)))
            frac = (value - y_min) / (y_max - y_min)
            row = (height - 1) - int(round(frac * (height - 1)))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = top_label
        elif row_idx == height - 1:
            label = bottom_label
        elif row_idx == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = "-" * width
    lines.append(f"{'':>{label_width}} +{axis}")
    x_left = f"{x_values[0]:.3g}"
    x_right = f"{x_values[-1]:.3g}"
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(f"{'':>{label_width}}  {x_left}{' ' * gap}{x_right}")
    legend = "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not labels:
        raise ValueError("nothing to plot")
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("no finite values to plot")
    peak = float(finite.max())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if np.isfinite(value):
            bar = "#" * max(0, int(round(value / peak * width)))
            lines.append(f"{label:>{label_width}} | {bar} {value:.4g}")
        else:
            lines.append(f"{label:>{label_width}} | (n/a)")
    return "\n".join(lines)
