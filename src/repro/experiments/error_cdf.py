"""Section 4.3 relative-error distribution study: Figures 13 and 14.

At 20 % integrity, the per-element relative errors
``|x_hat - x| / x`` of the compressive-sensing estimates are collected
for each granularity and summarized as empirical CDFs.  The paper's
checkpoints: at 60-minute granularity ~80 % of estimated elements have
relative error below 0.25; even at 15 minutes ~80 % stay below ~0.38
(Shanghai).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.masks import random_integrity_mask
from repro.experiments.config import make_completer
from repro.experiments.error_vs_integrity import build_city_truth
from repro.experiments.reporting import format_series
from repro.metrics.errors import relative_errors
from repro.metrics.stats import cdf_points, quantiles
from repro.utils.rng import ensure_rng


@dataclass
class ErrorCdfConfig:
    """Configuration of the Figure 13/14 reproduction."""

    city: str = "shanghai"
    days: float = 7.0
    granularities_s: Tuple[float, ...] = (900.0, 1800.0, 3600.0)
    integrity: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.city not in ("shanghai", "shenzhen"):
            raise ValueError(f"city must be 'shanghai' or 'shenzhen', got {self.city!r}")
        if not 0 < self.integrity < 1:
            raise ValueError(f"integrity must be in (0, 1), got {self.integrity}")


@dataclass
class ErrorCdfResult:
    """Relative-error samples per granularity."""

    samples: Dict[float, np.ndarray]
    config: ErrorCdfConfig

    def cdf_at(self, gran_s: float, thresholds: Sequence[float]) -> np.ndarray:
        """CDF values of one granularity's relative errors."""
        return cdf_points(self.samples[gran_s], thresholds)

    def quantile(self, gran_s: float, q: float) -> float:
        """A single relative-error quantile (e.g. the paper's 80th)."""
        return quantiles(self.samples[gran_s], (q,))[q]

    def render(
        self, thresholds: Sequence[float] = (0.1, 0.2, 0.25, 0.38, 0.5, 0.75, 1.0)
    ) -> str:
        figure = "Figure 13" if self.config.city == "shanghai" else "Figure 14"
        series = {
            f"{int(g / 60)} min": list(self.cdf_at(g, thresholds))
            for g in self.config.granularities_s
        }
        return format_series(
            "rel.err<=",
            list(thresholds),
            series,
            title=(
                f"{figure}: CDFs of relative errors "
                f"({self.config.city}, integrity={self.config.integrity:.0%})"
            ),
        )


def run_error_cdf(config: Optional[ErrorCdfConfig] = None) -> ErrorCdfResult:
    """Collect relative errors of the CS estimate at fixed integrity."""
    config = config or ErrorCdfConfig()
    fine_truth = build_city_truth(config.city, config.days, seed=config.seed)
    mask_rng = ensure_rng(config.seed + 1)

    samples: Dict[float, np.ndarray] = {}
    for gran in config.granularities_s:
        truth = fine_truth.resample(gran).tcm
        x = truth.values
        mask = random_integrity_mask(truth.shape, config.integrity, seed=mask_rng)
        measured = np.where(mask, x, 0.0)
        completer = make_completer(seed=config.seed)
        estimate = completer.complete(measured, mask).estimate
        samples[gran] = relative_errors(x, estimate, ~mask)
    return ErrorCdfResult(samples=samples, config=config)
